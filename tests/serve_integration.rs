//! End-to-end tests of `ziggy serve`: a real server on an ephemeral
//! port, real TCP clients, and ≥8 concurrent characterizations whose
//! responses must match the in-process engine byte for byte (modulo
//! wall-clock stage timings, which are zeroed before comparison).

use std::sync::Arc;

use ziggy::core::{CharacterizationReport, StageTimings, Ziggy, ZiggyConfig};
use ziggy::serve::http::{request_once, Client};
use ziggy::serve::{serve, ServeOptions};
use ziggy::store::csv::{read_csv_str, write_csv_string, CsvOptions};

const CONCURRENT_CLIENTS: usize = 8;

/// The box-office synthetic twin (900×12) rendered to CSV, exactly as a
/// client would upload it.
fn twin_csv_and_query() -> (String, String) {
    let twin = ziggy::synth::box_office(7);
    (write_csv_string(&twin.table, ','), twin.predicate)
}

/// Builds a JSON object body from string fields via the same serializer
/// the server uses — no hand-rolled (and inevitably incomplete)
/// escaping.
fn json_body(fields: &[(&str, &str)]) -> String {
    serde_json::to_string(&serde_json::Value::Object(
        fields
            .iter()
            .map(|(k, v)| {
                (
                    (*k).to_string(),
                    serde_json::Value::String((*v).to_string()),
                )
            })
            .collect(),
    ))
    .unwrap()
}

/// Serializes a report with timings zeroed, the canonical form for
/// byte-identity comparisons.
fn canonical(report_json: &str) -> String {
    let mut report: CharacterizationReport =
        serde_json::from_str(report_json).expect("response must parse as a report");
    report.timings = StageTimings::default();
    serde_json::to_string(&report).unwrap()
}

#[test]
fn concurrent_clients_get_identical_reports_and_stats_compute_once() {
    let (csv, query) = twin_csv_and_query();

    // In-process reference: an engine over the table as the server will
    // parse it (same CSV bytes through the same reader).
    let table = read_csv_str(&csv, &CsvOptions::default()).unwrap();
    let reference_engine = Ziggy::new(&table, ZiggyConfig::default());
    let reference = {
        let mut r = reference_engine.characterize(&query).unwrap();
        r.timings = StageTimings::default();
        serde_json::to_string(&r).unwrap()
    };
    let reference_misses = reference_engine.cache().counters().misses;

    let server = serve("127.0.0.1:0", ServeOptions::default()).unwrap();
    let addr = server.local_addr();

    // Ingest.
    let body = json_body(&[("name", "boxoffice"), ("csv", &csv)]);
    let (status, resp) = request_once(addr, "POST", "/tables", Some(&body)).unwrap();
    assert_eq!(status, 201, "{resp}");
    assert!(resp.contains("\"n_rows\":900"), "{resp}");

    // ≥8 concurrent clients characterize the same selection.
    let query_body = json_body(&[("query", &query)]);
    let responses: Vec<(u16, String)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CONCURRENT_CLIENTS)
            .map(|_| {
                let query_body = query_body.clone();
                s.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    client
                        .request("POST", "/tables/boxoffice/characterize", Some(&query_body))
                        .unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (status, body) in &responses {
        assert_eq!(*status, 200, "{body}");
        assert_eq!(
            canonical(body),
            reference,
            "server report must be byte-identical to the in-process engine"
        );
        // Stronger: the report cache collapses the concurrent burst to
        // one build, so the raw responses are byte-identical with *no*
        // canonicalization — stage timings included.
        assert_eq!(
            *body, responses[0].1,
            "cache hits must serve the build's exact bytes"
        );
    }

    // The shared engine computed whole-table statistics once per table:
    // the server's miss count equals a single in-process engine's, no
    // matter how many clients asked.
    let (status, metrics) = request_once(addr, "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    let m = serde_json::from_str::<serde_json::Value>(&metrics).unwrap();
    let tables = m.get("tables").unwrap().as_array().unwrap();
    assert_eq!(tables.len(), 1);
    let cache = tables[0].get("cache").unwrap();
    let misses = cache.get("misses").unwrap().as_u64().unwrap();
    assert_eq!(
        misses, reference_misses,
        "whole-table stats must be computed once per table, not per request"
    );
    // Repeat clients are absorbed at the *top* level: the report cache
    // serves every client after the first, so the prepared cache sees
    // exactly one lookup and the whole-table cache one engine's worth
    // of traffic.
    let prepared = tables[0].get("prepared").unwrap();
    assert_eq!(prepared.get("misses").unwrap().as_u64(), Some(1));
    assert_eq!(prepared.get("hits").unwrap().as_u64(), Some(0));
    let reports = tables[0].get("reports").unwrap();
    assert_eq!(reports.get("misses").unwrap().as_u64(), Some(1));
    assert_eq!(
        reports.get("hits").unwrap().as_u64(),
        Some(CONCURRENT_CLIENTS as u64 - 1)
    );
    let characterizations = m
        .get("requests")
        .unwrap()
        .get("characterizations")
        .unwrap()
        .as_u64()
        .unwrap();
    assert_eq!(characterizations, CONCURRENT_CLIENTS as u64);

    // Nothing is poisoned or blocked: the server still answers promptly.
    let (status, body) = request_once(addr, "GET", "/healthz", None).unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains(r#""status":"ok""#), "{body}");
    let (status, _) = request_once(
        addr,
        "POST",
        "/tables/boxoffice/characterize",
        Some(&query_body),
    )
    .unwrap();
    assert_eq!(status, 200);

    server.shutdown();
}

#[test]
fn concurrent_ingest_and_sessions() {
    let server = serve("127.0.0.1:0", ServeOptions::default()).unwrap();
    let addr = server.local_addr();

    // 8 clients each ingest their own table concurrently.
    std::thread::scope(|s| {
        for i in 0..CONCURRENT_CLIENTS {
            s.spawn(move || {
                let mut csv = String::from("key,val\n");
                for r in 0..120 {
                    csv.push_str(&format!("{r},{}\n", (r * (i + 3)) % 17));
                }
                let body = json_body(&[("name", &format!("t{i}")), ("csv", &csv)]);
                let (status, resp) = request_once(addr, "POST", "/tables", Some(&body)).unwrap();
                assert_eq!(status, 201, "{resp}");
            });
        }
    });
    let (_, listing) = request_once(addr, "GET", "/tables", None).unwrap();
    for i in 0..CONCURRENT_CLIENTS {
        assert!(listing.contains(&format!("\"t{i}\"")), "{listing}");
    }

    // One session per client, stepped concurrently; identical consecutive
    // steps must be stable diffs.
    let session_ids: Vec<u64> = (0..CONCURRENT_CLIENTS)
        .map(|i| {
            let (status, resp) = request_once(
                addr,
                "POST",
                "/sessions",
                Some(&format!(r#"{{"table":"t{i}"}}"#)),
            )
            .unwrap();
            assert_eq!(status, 201, "{resp}");
            let v = serde_json::from_str::<serde_json::Value>(&resp).unwrap();
            v.get("session_id").unwrap().as_u64().unwrap()
        })
        .collect();

    std::thread::scope(|s| {
        for &id in &session_ids {
            s.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let step = |c: &mut Client| {
                    c.request(
                        "POST",
                        &format!("/sessions/{id}/step"),
                        Some(r#"{"query":"key >= 90"}"#),
                    )
                    .unwrap()
                };
                let (status, first) = step(&mut client);
                assert_eq!(status, 200, "{first}");
                assert!(first.contains("\"step\":1"), "{first}");
                assert!(first.contains("\"diff\":null"), "{first}");
                let (status, second) = step(&mut client);
                assert_eq!(status, 200, "{second}");
                assert!(second.contains("\"step\":2"), "{second}");
                assert!(second.contains("\"persisted\""), "{second}");
            });
        }
    });

    // Clean up over the wire: sessions first, then their tables. The
    // caps bound live state, so every slot frees.
    for &id in &session_ids {
        let (status, resp) =
            request_once(addr, "DELETE", &format!("/sessions/{id}"), None).unwrap();
        assert_eq!(status, 200, "{resp}");
    }
    for i in 0..CONCURRENT_CLIENTS {
        let (status, resp) = request_once(addr, "DELETE", &format!("/tables/t{i}"), None).unwrap();
        assert_eq!(status, 200, "{resp}");
    }
    let (_, listing) = request_once(addr, "GET", "/tables", None).unwrap();
    assert_eq!(listing, r#"{"tables":[]}"#);
    let (status, _) = request_once(addr, "DELETE", "/tables/t0", None).unwrap();
    assert_eq!(status, 404);

    server.shutdown();
}

/// Reads a cache-level counter object (`prepared` or `reports`) for
/// table `name` out of a `/metrics` body as `(hits, misses, entries)`.
fn level_counters(addr: std::net::SocketAddr, name: &str, level: &str) -> (u64, u64, u64) {
    let (status, metrics) = request_once(addr, "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    let m = serde_json::from_str::<serde_json::Value>(&metrics).unwrap();
    let table = m
        .get("tables")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .find(|t| t.get("name").unwrap().as_str() == Some(name))
        .expect("table present in /metrics");
    let p = table.get(level).unwrap();
    (
        p.get("hits").unwrap().as_u64().unwrap(),
        p.get("misses").unwrap().as_u64().unwrap(),
        p.get("entries").unwrap().as_u64().unwrap(),
    )
}

fn prepared_counters(addr: std::net::SocketAddr, name: &str) -> (u64, u64, u64) {
    level_counters(addr, name, "prepared")
}

fn report_counters(addr: std::net::SocketAddr, name: &str) -> (u64, u64, u64) {
    level_counters(addr, name, "reports")
}

#[test]
fn prepared_stats_build_once_per_predicate_across_clients() {
    // A table whose selections we control exactly: key = 0..400.
    let mut csv = String::from("key,a,b\n");
    for i in 0..400 {
        csv.push_str(&format!(
            "{i},{},{}\n",
            if i < 100 { 50 } else { 0 } + (i * 13) % 7,
            (i * 7919) % 31
        ));
    }
    let server = serve("127.0.0.1:0", ServeOptions::default()).unwrap();
    let addr = server.local_addr();
    let body = json_body(&[("name", "p"), ("csv", &csv)]);
    let (status, resp) = request_once(addr, "POST", "/tables", Some(&body)).unwrap();
    assert_eq!(status, 201, "{resp}");

    // N clients issue the *same* predicate concurrently. The per-query
    // cache must collapse them to exactly one PreparedStats build, and
    // every client must get byte-identical reports.
    let query_body = json_body(&[("query", "key < 100")]);
    let responses: Vec<(u16, String)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CONCURRENT_CLIENTS)
            .map(|_| {
                let query_body = query_body.clone();
                s.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    client
                        .request("POST", "/tables/p/characterize", Some(&query_body))
                        .unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let first = canonical(&responses[0].1);
    for (status, body) in &responses {
        assert_eq!(*status, 200, "{body}");
        assert_eq!(canonical(body), first, "reports must be byte-identical");
        assert_eq!(
            *body, responses[0].1,
            "collapsed requests share the build's exact bytes"
        );
    }
    // The burst collapses at the report level to ONE pipeline run — one
    // search, one post-processing, one serialization — which in turn
    // did exactly one PreparedStats build.
    let (hits, misses, entries) = report_counters(addr, "p");
    assert_eq!(
        misses, 1,
        "N concurrent clients, one predicate => exactly one pipeline run"
    );
    assert_eq!(hits, CONCURRENT_CLIENTS as u64 - 1);
    assert_eq!(entries, 1);
    let (hits, misses, entries) = prepared_counters(addr, "p");
    assert_eq!(misses, 1, "the single run built PreparedStats once");
    assert_eq!(hits, 0);
    assert_eq!(entries, 1);

    // A *distinct* predicate with the same popcount (100 rows selected,
    // different rows) must not collide with the cached entry: masks are
    // compared by content, not by size or fingerprint alone.
    let other_body = json_body(&[("query", "key >= 300")]);
    let (status, other) =
        request_once(addr, "POST", "/tables/p/characterize", Some(&other_body)).unwrap();
    assert_eq!(status, 200, "{other}");
    assert!(other.contains("\"n_inside\":100"), "{other}");
    let (_, misses, entries) = prepared_counters(addr, "p");
    assert_eq!(
        misses, 2,
        "equal-popcount distinct mask must build its own entry"
    );
    assert_eq!(entries, 2);
    assert_ne!(
        canonical(&other),
        first,
        "distinct selections must not serve each other's reports"
    );

    // And a re-spelling of the first predicate that selects the same
    // rows answers from the *report* level: the cache keys on the mask,
    // not the query text, so no pipeline stage runs at all — only the
    // requested label is spliced into the response at render time.
    let respelled = json_body(&[("query", "NOT key >= 100")]);
    let (status, body) =
        request_once(addr, "POST", "/tables/p/characterize", Some(&respelled)).unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"query\":\"NOT key >= 100\""), "{body}");
    let (hits, misses, _) = prepared_counters(addr, "p");
    assert_eq!(misses, 2);
    assert_eq!(
        hits, 0,
        "re-spelled predicate never reaches the prepared level"
    );
    let (hits, misses, entries) = report_counters(addr, "p");
    assert_eq!(misses, 2, "re-spelling is not a rebuild");
    assert_eq!(hits, CONCURRENT_CLIENTS as u64, "it is a report-cache hit");
    assert_eq!(entries, 2, "and adds no entry");
    // Same characterization: the respelled body differs from `first`
    // only in the query label.
    let mut relabeled: CharacterizationReport = serde_json::from_str(&body).unwrap();
    relabeled.timings = StageTimings::default();
    relabeled.query = "key < 100".to_string();
    assert_eq!(
        serde_json::to_string(&relabeled).unwrap(),
        first,
        "respelled predicate shares the cached build's bytes"
    );

    server.shutdown();
}

#[test]
fn respelled_predicates_share_one_cached_build_and_etag() {
    // The cache-miss bug this pins: `"x > 5"` and `"x>5.0"` select the
    // same rows, but the level-3 report cache used to key on the query
    // text, so the respelling paid a second pipeline run and got a
    // different ETag. Both spellings must now answer from one cached
    // build, carry the same ETag, and revalidate against each other.
    let mut csv = String::from("x,y\n");
    for i in 0..400 {
        csv.push_str(&format!("{},{}\n", i % 11, (i * 7919) % 31));
    }
    let server = serve("127.0.0.1:0", ServeOptions::default()).unwrap();
    let addr = server.local_addr();
    let body = json_body(&[("name", "r"), ("csv", &csv)]);
    let (status, resp) = request_once(addr, "POST", "/tables", Some(&body)).unwrap();
    assert_eq!(status, 201, "{resp}");

    let mut client = Client::connect(addr).unwrap();
    let spelled = json_body(&[("query", "x > 5")]);
    let (status, headers_a, body_a) = client
        .request_with_headers("POST", "/tables/r/characterize", &[], Some(&spelled))
        .unwrap();
    assert_eq!(status, 200, "{body_a}");
    let etag_a = headers_a
        .iter()
        .find(|(k, _)| k == "etag")
        .map(|(_, v)| v.clone())
        .unwrap();

    let respelled = json_body(&[("query", "x>5.0")]);
    let (status, headers_b, body_b) = client
        .request_with_headers("POST", "/tables/r/characterize", &[], Some(&respelled))
        .unwrap();
    assert_eq!(status, 200, "{body_b}");
    let etag_b = headers_b
        .iter()
        .find(|(k, _)| k == "etag")
        .map(|(_, v)| v.clone())
        .unwrap();
    assert_eq!(etag_a, etag_b, "one selection, one ETag");
    assert!(body_a.contains("\"query\":\"x > 5\""), "{body_a}");
    assert!(body_b.contains("\"query\":\"x>5.0\""), "{body_b}");

    // One build total: the respelling was a report-cache hit.
    let (hits, misses, entries) = report_counters(addr, "r");
    assert_eq!((hits, misses, entries), (1, 1, 1));
    let (_, prepared_misses, _) = prepared_counters(addr, "r");
    assert_eq!(prepared_misses, 1, "one prepared build for both spellings");

    // A conditional respelled request revalidates against the other
    // spelling's tag.
    let (status, _, not_modified) = client
        .request_with_headers(
            "POST",
            "/tables/r/characterize",
            &[("If-None-Match", &etag_a)],
            Some(&respelled),
        )
        .unwrap();
    assert_eq!(status, 304, "{not_modified}");
    assert!(not_modified.is_empty());

    server.shutdown();
}

#[test]
fn warm_repeats_are_byte_identical_with_etag_revalidation() {
    let (csv, query) = twin_csv_and_query();
    let server = serve("127.0.0.1:0", ServeOptions::default()).unwrap();
    let addr = server.local_addr();
    let body = json_body(&[("name", "w"), ("csv", &csv)]);
    let (status, _) = request_once(addr, "POST", "/tables", Some(&body)).unwrap();
    assert_eq!(status, 201);

    // Cold request: 200 with an ETag.
    let query_body = json_body(&[("query", &query)]);
    let mut client = Client::connect(addr).unwrap();
    let (status, headers, first) = client
        .request_with_headers("POST", "/tables/w/characterize", &[], Some(&query_body))
        .unwrap();
    assert_eq!(status, 200, "{first}");
    let etag = headers
        .iter()
        .find(|(k, _)| k == "etag")
        .map(|(_, v)| v.clone())
        .expect("characterize must carry an ETag");

    // Unconditional warm repeat: the exact same bytes (timings and all)
    // under the exact same ETag.
    let (status, headers, second) = client
        .request_with_headers("POST", "/tables/w/characterize", &[], Some(&query_body))
        .unwrap();
    assert_eq!(status, 200);
    assert_eq!(second, first, "cache hits must be byte-identical");
    assert!(headers.iter().any(|(k, v)| k == "etag" && *v == etag));

    // Conditional warm repeat: 304, no body at all.
    let (status, headers, empty) = client
        .request_with_headers(
            "POST",
            "/tables/w/characterize",
            &[("If-None-Match", &etag)],
            Some(&query_body),
        )
        .unwrap();
    assert_eq!(status, 304, "{empty}");
    assert!(empty.is_empty());
    assert!(headers.iter().any(|(k, v)| k == "etag" && *v == etag));
    let (hits, misses, _) = report_counters(addr, "w");
    assert_eq!((hits, misses), (2, 1));

    // DELETE clears the report cache; the engine object is observed
    // directly because the registry entry (and its metrics section) is
    // gone after the delete.
    let entry = server.state().registry.get("w").unwrap();
    assert_eq!(entry.engine().report_cache().len(), 1);
    let (status, _) = request_once(addr, "DELETE", "/tables/w", None).unwrap();
    assert_eq!(status, 200);
    assert!(entry.engine().report_cache().is_empty());
    assert!(entry.engine().prepared_cache().is_empty());

    // A re-ingest under the same name starts cold again and still
    // answers — no stale artifact survives the delete.
    let (status, _) = request_once(addr, "POST", "/tables", Some(&body)).unwrap();
    assert_eq!(status, 201);
    let (status, fresh) =
        request_once(addr, "POST", "/tables/w/characterize", Some(&query_body)).unwrap();
    assert_eq!(status, 200);
    assert_eq!(canonical(&fresh), canonical(&first));
    let (hits, misses, _) = report_counters(addr, "w");
    assert_eq!((hits, misses), (0, 1), "fresh engine, fresh cache");

    server.shutdown();
}

#[test]
fn shared_engine_outperforms_per_request_engines() {
    // Not a wall-clock benchmark (too flaky for CI) — a work-count
    // assertion: N sequential server requests trigger exactly one
    // engine's worth of whole-table scans, where N per-request engines
    // would pay N times that.
    let (csv, query) = twin_csv_and_query();
    let server = serve("127.0.0.1:0", ServeOptions::default()).unwrap();
    let addr = server.local_addr();
    let body = json_body(&[("name", "b"), ("csv", &csv)]);
    let (status, _) = request_once(addr, "POST", "/tables", Some(&body)).unwrap();
    assert_eq!(status, 201);

    let query_body = json_body(&[("query", &query)]);
    let mut client = Client::connect(addr).unwrap();
    for _ in 0..4 {
        let (status, _) = client
            .request("POST", "/tables/b/characterize", Some(&query_body))
            .unwrap();
        assert_eq!(status, 200);
    }

    let entry = Arc::clone(server.state()).registry.get("b").unwrap();
    let counters = entry.cache().counters();
    let per_request_cost = counters.misses * 4;
    assert!(
        counters.total() < per_request_cost * 2,
        "cache should amortize scans: {counters:?}"
    );
    assert!(counters.hits > 0, "{counters:?}");
    server.shutdown();
}

#[test]
fn rate_limited_clients_get_429_with_retry_after() {
    use std::io::{Read, Write};

    let server = serve(
        "127.0.0.1:0",
        ServeOptions {
            rate_limit: Some(3),
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // Burn the burst through the keep-alive client, then expect a 429.
    let mut client = Client::connect(addr).unwrap();
    let mut saw_429 = false;
    for _ in 0..10 {
        let (status, body) = client.request("GET", "/tables", None).unwrap();
        if status == 429 {
            assert!(body.contains("rate limit"), "{body}");
            saw_429 = true;
            break;
        }
        assert_eq!(status, 200, "{body}");
    }
    assert!(saw_429, "burst of 3 must not survive 10 rapid requests");

    // Health checks are exempt even for a throttled client.
    let (status, _) = client.request("GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);

    // The 429 carries a whole-second Retry-After header (raw socket:
    // the convenience client only exposes status and body).
    let mut raw = std::net::TcpStream::connect(addr).unwrap();
    let mut out = String::new();
    let mut throttled_response = String::new();
    for _ in 0..10 {
        raw.write_all(b"GET /tables HTTP/1.1\r\nHost: z\r\nContent-Length: 0\r\n\r\n")
            .unwrap();
        out.clear();
        let mut buf = [0u8; 4096];
        let n = raw.read(&mut buf).unwrap();
        out.push_str(std::str::from_utf8(&buf[..n]).unwrap());
        if out.starts_with("HTTP/1.1 429") {
            throttled_response = out.clone();
            break;
        }
    }
    let retry_after = throttled_response
        .lines()
        .find_map(|l| l.strip_prefix("Retry-After: "))
        .expect("429 must carry Retry-After");
    assert!(retry_after.trim().parse::<u64>().unwrap() >= 1);

    let rate_limited = server.state().metrics.rate_limited.get();
    assert!(rate_limited >= 2, "metrics must count 429s: {rate_limited}");
    server.shutdown();
}

#[test]
fn per_request_config_override_round_trips_over_http() {
    let (csv, query) = twin_csv_and_query();
    let server = serve("127.0.0.1:0", ServeOptions::default()).unwrap();
    let addr = server.local_addr();
    let body = json_body(&[("name", "cfg"), ("csv", &csv)]);
    let (status, _) = request_once(addr, "POST", "/tables", Some(&body)).unwrap();
    assert_eq!(status, 201);

    let override_body = format!(
        "{{\"query\":{},\"config\":{{\"max_views\":1}}}}",
        serde_json::to_string(&serde_json::Value::String(query.clone())).unwrap()
    );
    let (status, overridden) = request_once(
        addr,
        "POST",
        "/tables/cfg/characterize",
        Some(&override_body),
    )
    .unwrap();
    assert_eq!(status, 200, "{overridden}");
    let views = serde_json::from_str_value(&overridden)
        .unwrap()
        .get("views")
        .unwrap()
        .as_array()
        .unwrap()
        .len();
    assert_eq!(views, 1);

    // The default-config path is untouched by the fork.
    let (status, default_resp) = request_once(
        addr,
        "POST",
        "/tables/cfg/characterize",
        Some(&json_body(&[("query", &query)])),
    )
    .unwrap();
    assert_eq!(status, 200);
    let default_views = serde_json::from_str_value(&default_resp)
        .unwrap()
        .get("views")
        .unwrap()
        .as_array()
        .unwrap()
        .len();
    assert!(
        default_views > 1,
        "default config should keep several views"
    );
    server.shutdown();
}
