//! Multi-process fleet integration: real `ziggy serve` child processes
//! (2 shards × 2 replicas = 4 backends, replication 2) behind an
//! in-process router, exercising the acceptance criteria end to end:
//!
//! 1. characterize reports through the router are byte-identical to a
//!    single-node serve (modulo wall-clock stage timings, zeroed the
//!    same way `serve_integration` does);
//! 2. requests keep succeeding after one replica *process* is killed;
//! 3. scatter-gather (`GET /tables`, `GET /metrics`) merges per-shard
//!    sections into one document.

use std::path::Path;
use std::time::Duration;

use ziggy::core::{CharacterizationReport, StageTimings, Ziggy, ZiggyConfig};
use ziggy::fleet::{start_fleet, BackendProcess, FleetOptions};
use ziggy::serve::http::{request_once, Client};
use ziggy::store::csv::{read_csv_str, write_csv_string, CsvOptions};

/// The number of backend processes (2 shards × 2 replicas).
const BACKENDS: usize = 4;
const REPLICATION: usize = 2;

fn json_body(fields: &[(&str, &str)]) -> String {
    serde_json::to_string(&serde_json::Value::Object(
        fields
            .iter()
            .map(|(k, v)| {
                (
                    (*k).to_string(),
                    serde_json::Value::String((*v).to_string()),
                )
            })
            .collect(),
    ))
    .unwrap()
}

/// Serializes a report with timings zeroed — the canonical form for
/// byte-identity comparisons across processes.
fn canonical(report_json: &str) -> String {
    let mut report: CharacterizationReport =
        serde_json::from_str(report_json).expect("response must parse as a report");
    report.timings = StageTimings::default();
    serde_json::to_string(&report).unwrap()
}

#[test]
fn fleet_of_processes_matches_single_node_and_survives_a_kill() {
    let binary = Path::new(env!("CARGO_BIN_EXE_ziggy"));
    let twin = ziggy::synth::box_office(7);
    let csv = write_csv_string(&twin.table, ',');
    let query = twin.predicate.clone();

    // Single-node reference: the same CSV bytes through the same
    // reader, characterized in-process.
    let reference = {
        let table = read_csv_str(&csv, &CsvOptions::default()).unwrap();
        let engine = Ziggy::new(&table, ZiggyConfig::default());
        let mut r = engine.characterize(&query).unwrap();
        r.timings = StageTimings::default();
        serde_json::to_string(&r).unwrap()
    };

    // 4 real ziggy-serve processes.
    let mut children: Vec<BackendProcess> = (0..BACKENDS)
        .map(|i| {
            BackendProcess::spawn(binary, format!("shard-{i}"), &[])
                .expect("backend process must start")
        })
        .collect();
    let addrs = children
        .iter()
        .map(|c| (c.id().to_string(), c.addr()))
        .collect();
    let fleet = start_fleet(
        "127.0.0.1:0",
        addrs,
        FleetOptions {
            replication: REPLICATION,
            probe_interval: Duration::from_millis(100),
            // This test pins the *failover* semantics in isolation: a
            // dead replica stays lost (`replicas` drops to 1). The
            // self-healing path has its own chaos test below.
            repair_interval: None,
            ..FleetOptions::default()
        },
    )
    .unwrap();
    let router = fleet.local_addr();

    // One upload materializes the table on R backends.
    let body = json_body(&[("name", "boxoffice"), ("csv", &csv)]);
    let (status, resp) = request_once(router, "POST", "/tables", Some(&body)).unwrap();
    assert_eq!(status, 201, "{resp}");
    let placed = serde_json::from_str_value(&resp)
        .unwrap()
        .get("placed")
        .unwrap()
        .as_u64()
        .unwrap();
    assert_eq!(placed, REPLICATION as u64, "{resp}");

    // Which processes actually hold it?
    let holders: Vec<usize> = children
        .iter()
        .enumerate()
        .filter(|(_, c)| {
            let (s, body) = request_once(c.addr(), "GET", "/tables", None).unwrap();
            assert_eq!(s, 200);
            body.contains("\"boxoffice\"")
        })
        .map(|(i, _)| i)
        .collect();
    assert_eq!(holders.len(), REPLICATION);

    // Byte-identity through the router (and across both replicas, since
    // reads rotate).
    let query_body = json_body(&[("query", &query)]);
    for _ in 0..4 {
        let (status, via_router) = request_once(
            router,
            "POST",
            "/tables/boxoffice/characterize",
            Some(&query_body),
        )
        .unwrap();
        assert_eq!(status, 200, "{via_router}");
        assert_eq!(
            canonical(&via_router),
            reference,
            "router responses must be byte-identical to single-node serve"
        );
    }

    // Kill one replica *process*; traffic keeps flowing (failover may
    // retry, but the client only ever sees 200s).
    children[holders[0]].kill();
    assert!(!children[holders[0]].is_alive());
    let mut client = Client::connect(router).unwrap();
    for _ in 0..8 {
        let (status, body) = client
            .request("POST", "/tables/boxoffice/characterize", Some(&query_body))
            .unwrap();
        assert_eq!(status, 200, "must survive a dead replica: {body}");
        assert_eq!(canonical(&body), reference);
    }

    // The prober (or the passive failures above) reports the dead
    // process within a few intervals.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let (_, health) = request_once(router, "GET", "/healthz", None).unwrap();
        let v = serde_json::from_str_value(&health).unwrap();
        let down = v
            .get("backends")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .filter(|b| b.get("healthy").unwrap().as_bool() == Some(false))
            .count();
        if down == 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "dead process never reported: {health}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // Scatter-gather: /tables still lists the table once (now with one
    // live replica), /metrics aggregates one section per shard with the
    // dead one nulled out.
    let (status, listing) = request_once(router, "GET", "/tables", None).unwrap();
    assert_eq!(status, 200);
    let v = serde_json::from_str_value(&listing).unwrap();
    let tables = v.get("tables").unwrap().as_array().unwrap();
    assert_eq!(tables.len(), 1, "{listing}");
    assert_eq!(tables[0].get("name").unwrap().as_str(), Some("boxoffice"));
    assert_eq!(tables[0].get("replicas").unwrap().as_u64(), Some(1));

    let (status, metrics) = request_once(router, "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    let v = serde_json::from_str_value(&metrics).unwrap();
    let shards = v.get("shards").unwrap().as_array().unwrap();
    assert_eq!(shards.len(), BACKENDS, "{metrics}");
    let nulled = shards
        .iter()
        .filter(|s| s.get("metrics").unwrap().is_null())
        .count();
    assert_eq!(nulled, 1, "exactly the dead shard has no metrics");
    let live_chars: u64 = shards
        .iter()
        .filter_map(|s| {
            s.get("metrics")
                .unwrap()
                .get("requests")
                .and_then(|r| r.get("characterizations"))
                .and_then(|c| c.as_u64())
        })
        .sum();
    assert!(
        live_chars >= 8,
        "surviving replicas served the characterize traffic: {metrics}"
    );

    // Sessions ride the same processes: create, step twice, delete.
    let (status, created) = request_once(
        router,
        "POST",
        "/sessions",
        Some(&json_body(&[("table", "boxoffice")])),
    )
    .unwrap();
    assert_eq!(status, 201, "{created}");
    let sid = serde_json::from_str_value(&created)
        .unwrap()
        .get("session_id")
        .unwrap()
        .as_u64()
        .unwrap();
    let step_path = format!("/sessions/{sid}/step");
    let (status, step1) = request_once(router, "POST", &step_path, Some(&query_body)).unwrap();
    assert_eq!(status, 200, "{step1}");
    assert!(step1.contains("\"diff\":null"), "{step1}");
    let (status, step2) = request_once(router, "POST", &step_path, Some(&query_body)).unwrap();
    assert_eq!(status, 200, "{step2}");
    assert!(step2.contains("\"step\":2"), "{step2}");
    let (status, _) = request_once(router, "DELETE", &format!("/sessions/{sid}"), None).unwrap();
    assert_eq!(status, 200);

    fleet.shutdown();
    // Children are killed on drop; make it explicit for the log.
    for mut c in children {
        c.kill();
    }
}

/// Chaos: kill a replica *process* under live traffic, and assert the
/// fleet self-heals — the repair loop restores `replicas` to R on every
/// affected table, clients see zero non-200 responses and byte-identical
/// reports throughout (wire bytes are timing-free, so even a freshly
/// repaired replica's build revalidates the old ETag with a 304), and
/// the supervisor's restart-with-rejoin brings the dead member back with
/// its shard re-ingested.
#[test]
fn chaos_kill_mid_traffic_repairs_and_rejoins() {
    let binary = Path::new(env!("CARGO_BIN_EXE_ziggy"));
    let twin = ziggy::synth::box_office(7);
    let csv = write_csv_string(&twin.table, ',');
    let query_body = json_body(&[("query", &twin.predicate)]);

    let mut children: Vec<BackendProcess> = (0..4)
        .map(|i| BackendProcess::spawn(binary, format!("shard-{i}"), &[]).unwrap())
        .collect();
    let addrs = children
        .iter()
        .map(|c| (c.id().to_string(), c.addr()))
        .collect();
    let fleet = start_fleet(
        "127.0.0.1:0",
        addrs,
        FleetOptions {
            replication: REPLICATION,
            probe_interval: Duration::from_millis(50),
            repair_interval: Some(Duration::from_millis(150)),
            ..FleetOptions::default()
        },
    )
    .unwrap();
    let router = fleet.local_addr();

    let body = json_body(&[("name", "boxoffice"), ("csv", &csv)]);
    let (status, resp) = request_once(router, "POST", "/tables", Some(&body)).unwrap();
    assert_eq!(status, 201, "{resp}");

    // Baseline bytes + validator. Deterministic across every replica
    // that will ever build this report, repaired copies included.
    let mut client = Client::connect(router).unwrap();
    let (status, headers, baseline) = client
        .request_with_headers(
            "POST",
            "/tables/boxoffice/characterize",
            &[],
            Some(&query_body),
        )
        .unwrap();
    assert_eq!(status, 200, "{baseline}");
    let etag = headers
        .iter()
        .find(|(k, _)| k == "etag")
        .map(|(_, v)| v.clone())
        .expect("characterize must carry an ETag");

    let holders: Vec<usize> = children
        .iter()
        .enumerate()
        .filter(|(_, c)| {
            let (s, body) = request_once(c.addr(), "GET", "/tables", None).unwrap();
            assert_eq!(s, 200);
            body.contains("\"boxoffice\"")
        })
        .map(|(i, _)| i)
        .collect();
    assert_eq!(holders.len(), REPLICATION);

    // Traffic threads hammer the table while the victim dies.
    let stop = std::sync::atomic::AtomicBool::new(false);
    let victim = holders[0];
    let bad: Vec<(u16, String)> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..2)
            .map(|_| {
                s.spawn(|| {
                    let mut bad = Vec::new();
                    let mut client = Client::connect(router).unwrap();
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let (status, body) = client
                            .request("POST", "/tables/boxoffice/characterize", Some(&query_body))
                            .unwrap();
                        if status != 200 || body != baseline {
                            bad.push((status, body));
                        }
                    }
                    bad
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(150));
        // SIGKILL mid-traffic.
        children[victim].kill();
        // Keep the load on until repair has had time to re-materialize.
        std::thread::sleep(Duration::from_millis(600));
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        workers
            .into_iter()
            .flat_map(|w| w.join().unwrap())
            .collect()
    });
    assert!(
        bad.is_empty(),
        "a dying replica must be invisible: {} bad responses, first: {:?}",
        bad.len(),
        bad.first()
    );

    // The repair loop restores R *live* replicas (the dead process's
    // copy no longer answers; a healthy backend received a new one).
    wait_for_replicas(router, "boxoffice", REPLICATION as u64);
    assert!(fleet.state().metrics.repairs_total.get() >= 1);

    // Byte identity and revalidation across the repaired copy: every
    // surviving read — wherever it routes — serves the baseline bytes,
    // and the pre-kill validator still answers 304.
    for _ in 0..4 {
        let (status, body) = client
            .request("POST", "/tables/boxoffice/characterize", Some(&query_body))
            .unwrap();
        assert_eq!(status, 200, "{body}");
        assert_eq!(
            body, baseline,
            "repaired replicas must serve identical bytes"
        );
        let (status, _, empty) = client
            .request_with_headers(
                "POST",
                "/tables/boxoffice/characterize",
                &[("If-None-Match", &etag)],
                Some(&query_body),
            )
            .unwrap();
        assert_eq!(status, 304, "{empty}");
    }

    // Supervisor restart-with-rejoin: the dead child respawns under its
    // old id, rejoins the ring (two epoch bumps), and repair re-ingests
    // its shard from the survivors.
    let epoch_before = fleet.state().epoch();
    let restarted = ziggy::fleet::restart_dead_children(binary, &mut children, fleet.state(), &[]);
    assert_eq!(restarted, vec![format!("shard-{victim}")]);
    assert_eq!(fleet.state().epoch(), epoch_before + 2);
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    loop {
        let (s, body) = request_once(children[victim].addr(), "GET", "/tables", None).unwrap();
        if s == 200 && body.contains("\"boxoffice\"") {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "repair never re-ingested the rejoined member's shard: {body}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    // And the rejoined member's own build answers the old validator.
    let (status, body) = client
        .request("POST", "/tables/boxoffice/characterize", Some(&query_body))
        .unwrap();
    assert_eq!(status, 200, "{body}");
    assert_eq!(body, baseline);

    fleet.shutdown();
    for mut c in children {
        c.kill();
    }
}

/// Polls the router's scatter-gathered listing until `table` reports at
/// least `want` live replicas.
fn wait_for_replicas(router: std::net::SocketAddr, table: &str, want: u64) {
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    loop {
        let (status, listing) = request_once(router, "GET", "/tables", None).unwrap();
        assert_eq!(status, 200);
        let v = serde_json::from_str_value(&listing).unwrap();
        let replicas = v
            .get("tables")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .find(|t| t.get("name").unwrap().as_str() == Some(table))
            .and_then(|t| t.get("replicas").unwrap().as_u64())
            .unwrap_or(0);
        if replicas >= want {
            return;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "replication never converged: {listing}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Observability e2e: one `X-Request-Id` stitches the whole request
/// path. The router honors a caller-supplied id, echoes it on the
/// response, writes it on its own access-log line (with the backend it
/// proxied to), and the backend *process* writes the same id on its
/// line — asserted across real process boundaries via file log sinks.
#[test]
fn trace_id_spans_router_and_backend_processes() {
    let binary = Path::new(env!("CARGO_BIN_EXE_ziggy"));
    let dir = std::env::temp_dir().join(format!("ziggy-trace-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let backend_logs: Vec<std::path::PathBuf> = (0..2)
        .map(|i| dir.join(format!("backend-{i}.log")))
        .collect();
    let children: Vec<BackendProcess> = (0..2)
        .map(|i| {
            BackendProcess::spawn(
                binary,
                format!("shard-{i}"),
                &["--access-log-file", &backend_logs[i].to_string_lossy()],
            )
            .unwrap()
        })
        .collect();
    let addrs = children
        .iter()
        .map(|c| (c.id().to_string(), c.addr()))
        .collect();
    let router_log = dir.join("router.log");
    let fleet = start_fleet(
        "127.0.0.1:0",
        addrs,
        FleetOptions {
            replication: 2,
            access_log_path: Some(router_log.clone()),
            ..FleetOptions::default()
        },
    )
    .unwrap();
    let router = fleet.local_addr();

    let twin = ziggy::synth::box_office(7);
    let csv = write_csv_string(&twin.table, ',');
    let body = json_body(&[("name", "boxoffice"), ("csv", &csv)]);
    let (status, resp) = request_once(router, "POST", "/tables", Some(&body)).unwrap();
    assert_eq!(status, 201, "{resp}");

    // A client-supplied id must survive the proxy hop verbatim.
    let trace = "e2e-trace-0042";
    let query_body = json_body(&[("query", &twin.predicate)]);
    let mut client = Client::connect(router).unwrap();
    let (status, headers, resp_body) = client
        .request_with_headers(
            "POST",
            "/tables/boxoffice/characterize",
            &[("X-Request-Id", trace)],
            Some(&query_body),
        )
        .unwrap();
    assert_eq!(status, 200, "{resp_body}");
    let echoed = headers
        .iter()
        .find(|(k, _)| k == "x-request-id")
        .map(|(_, v)| v.as_str());
    assert_eq!(echoed, Some(trace), "response must echo the request id");

    // The router's log line for the characterize carries the id plus
    // the backend it proxied to...
    let router_line = wait_for_trace_line(&router_log, trace);
    assert_eq!(
        router_line.get("path").unwrap().as_str(),
        Some("/tables/boxoffice/characterize")
    );
    let backend_id = router_line
        .get("backend")
        .expect("router line names the backend")
        .as_str()
        .unwrap()
        .to_string();

    // ...and that backend process logged the same id on its own line.
    let shard_index: usize = backend_id.strip_prefix("shard-").unwrap().parse().unwrap();
    let backend_line = wait_for_trace_line(&backend_logs[shard_index], trace);
    assert_eq!(
        backend_line.get("path").unwrap().as_str(),
        Some("/tables/boxoffice/characterize")
    );
    assert_eq!(backend_line.get("status").unwrap().as_u64(), Some(200));

    // Without a caller-supplied id the router mints one (16 hex chars)
    // and the same stitching holds.
    let (status, headers, resp_body) = client
        .request_with_headers(
            "POST",
            "/tables/boxoffice/characterize",
            &[],
            Some(&query_body),
        )
        .unwrap();
    assert_eq!(status, 200, "{resp_body}");
    let minted = headers
        .iter()
        .find(|(k, _)| k == "x-request-id")
        .map(|(_, v)| v.clone())
        .expect("router must mint an id when the caller sends none");
    assert_eq!(minted.len(), 16, "minted ids are 16 hex chars: {minted}");
    assert!(minted.chars().all(|c| c.is_ascii_hexdigit()), "{minted}");
    let minted_line = wait_for_trace_line(&router_log, &minted);
    let minted_backend = minted_line.get("backend").unwrap().as_str().unwrap();
    let shard_index: usize = minted_backend
        .strip_prefix("shard-")
        .unwrap()
        .parse()
        .unwrap();
    wait_for_trace_line(&backend_logs[shard_index], &minted);

    fleet.shutdown();
    for mut c in children {
        c.kill();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Polls `path` until a JSON access-log line with `trace_id` appears
/// (file sinks are unbuffered, but the write races the response).
fn wait_for_trace_line(path: &Path, trace: &str) -> serde_json::Value {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let text = std::fs::read_to_string(path).unwrap_or_default();
        for line in text.lines() {
            let Ok(v) = serde_json::from_str_value(line) else {
                panic!("unparseable access-log line in {path:?}: {line:?}");
            };
            if v.get("trace_id").and_then(serde_json::Value::as_str) == Some(trace) {
                return v;
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no line with trace_id {trace:?} in {path:?}:\n{text}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Span-tier e2e: one trace id yields a *fleet-assembled* tree — the
/// router's `fleet.request` root and `fleet.upstream` leg, plus the
/// backend process's `serve.request`/`serve.handler`/stage spans parented
/// under that leg via the propagated `X-Span-Context` header — all from
/// one `GET /debug/traces/{id}` on the router. Also pins the
/// `/debug/traces` listing schema and its filters.
#[test]
fn one_trace_id_assembles_router_and_backend_spans() {
    let binary = Path::new(env!("CARGO_BIN_EXE_ziggy"));
    let children: Vec<BackendProcess> = (0..2)
        .map(|i| BackendProcess::spawn(binary, format!("shard-{i}"), &[]).unwrap())
        .collect();
    let addrs = children
        .iter()
        .map(|c| (c.id().to_string(), c.addr()))
        .collect();
    let fleet = start_fleet(
        "127.0.0.1:0",
        addrs,
        FleetOptions {
            replication: 2,
            ..FleetOptions::default()
        },
    )
    .unwrap();
    let router = fleet.local_addr();

    let twin = ziggy::synth::box_office(7);
    let csv = write_csv_string(&twin.table, ',');
    let body = json_body(&[("name", "boxoffice"), ("csv", &csv)]);
    let (status, resp) = request_once(router, "POST", "/tables", Some(&body)).unwrap();
    assert_eq!(status, 201, "{resp}");

    // A cold characterize under a caller-chosen trace id.
    let trace = "span-e2e-0042";
    let query_body = json_body(&[("query", &twin.predicate)]);
    let mut client = Client::connect(router).unwrap();
    let (status, _, resp_body) = client
        .request_with_headers(
            "POST",
            "/tables/boxoffice/characterize",
            &[("X-Request-Id", trace)],
            Some(&query_body),
        )
        .unwrap();
    assert_eq!(status, 200, "{resp_body}");

    // The fleet-assembled detail: local router spans + the backend's.
    let (status, detail) =
        request_once(router, "GET", &format!("/debug/traces/{trace}"), None).unwrap();
    assert_eq!(status, 200, "{detail}");
    let v = serde_json::from_str_value(&detail).unwrap();
    assert_eq!(v.get("trace_id").unwrap().as_str(), Some(trace));
    assert_eq!(v.get("root").unwrap().as_str(), Some("fleet.request"));
    assert_eq!(v.get("route").unwrap().as_str(), Some("characterize"));
    let spans = v.get("spans").unwrap().as_array().unwrap();
    let find = |name: &str| {
        spans
            .iter()
            .find(|s| s.get("name").unwrap().as_str() == Some(name))
            .unwrap_or_else(|| panic!("no span `{name}` in the assembled trace: {detail}"))
    };
    // Every span carries the full schema.
    for s in spans {
        for key in [
            "span_id",
            "parent_id",
            "name",
            "start_unix_us",
            "duration_us",
            "error",
        ] {
            assert!(s.get(key).is_some(), "span missing `{key}`: {detail}");
        }
    }
    // Router half: the request root and its upstream leg.
    let root = find("fleet.request");
    assert!(root.get("parent_id").unwrap().is_null(), "{detail}");
    let root_id = root.get("span_id").unwrap().as_str().unwrap();
    let leg = find("fleet.upstream");
    assert_eq!(
        leg.get("parent_id").unwrap().as_str(),
        Some(root_id),
        "the upstream leg hangs off the request root: {detail}"
    );
    let leg_backend = leg
        .get("attrs")
        .unwrap()
        .get("backend")
        .expect("upstream leg names its backend")
        .as_str()
        .unwrap();
    let leg_id = leg.get("span_id").unwrap().as_str().unwrap();
    // Backend half, gathered across the process boundary and stamped
    // with the shard id: its root is a *child* of the router's leg,
    // which is exactly what X-Span-Context propagation buys.
    let serve_root = find("serve.request");
    assert_eq!(
        serve_root.get("parent_id").unwrap().as_str(),
        Some(leg_id),
        "the backend root must parent under the router's upstream leg: {detail}"
    );
    assert_eq!(
        serve_root.get("backend").unwrap().as_str(),
        Some(leg_backend),
        "gathered spans are stamped with their shard: {detail}"
    );
    // The cold build's full breakdown rode along.
    for name in [
        "serve.handler",
        "serve.characterize",
        "stage.prepare",
        "stage.view_search",
        "stage.post_process",
    ] {
        find(name);
    }

    // Listing schema + filters on the router.
    let (status, listing) =
        request_once(router, "GET", "/debug/traces?route=characterize", None).unwrap();
    assert_eq!(status, 200, "{listing}");
    let v = serde_json::from_str_value(&listing).unwrap();
    let traces = v.get("traces").unwrap().as_array().unwrap();
    assert!(
        traces
            .iter()
            .any(|t| t.get("trace_id").unwrap().as_str() == Some(trace)),
        "{listing}"
    );
    for t in traces {
        for key in [
            "trace_id",
            "root",
            "route",
            "start_unix_us",
            "duration_us",
            "error",
            "spans",
        ] {
            assert!(
                t.get(key).is_some(),
                "listing entry missing `{key}`: {listing}"
            );
        }
        // The listing form carries a span *count*, not the spans.
        assert!(t.get("spans").unwrap().as_u64().is_some(), "{listing}");
    }
    let (status, none) = request_once(router, "GET", "/debug/traces?route=sessions", None).unwrap();
    assert_eq!(status, 200);
    assert!(
        serde_json::from_str_value(&none)
            .unwrap()
            .get("traces")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .all(|t| t.get("route").unwrap().as_str() == Some("sessions")),
        "{none}"
    );
    let (status, _) = request_once(router, "GET", "/debug/traces?min_ms=abc", None).unwrap();
    assert_eq!(status, 400, "non-integer min_ms must be refused");
    let (status, _) = request_once(router, "GET", "/debug/traces/nosuchtrace", None).unwrap();
    assert_eq!(status, 404, "an unknown trace 404s fleet-wide");

    fleet.shutdown();
    for mut c in children {
        c.kill();
    }
}

#[test]
fn replicated_ingest_is_idempotent_across_retries() {
    let binary = Path::new(env!("CARGO_BIN_EXE_ziggy"));
    let children: Vec<BackendProcess> = (0..2)
        .map(|i| BackendProcess::spawn(binary, format!("shard-{i}"), &[]).unwrap())
        .collect();
    let addrs = children
        .iter()
        .map(|c| (c.id().to_string(), c.addr()))
        .collect();
    let fleet = start_fleet(
        "127.0.0.1:0",
        addrs,
        FleetOptions {
            replication: 2,
            ..FleetOptions::default()
        },
    )
    .unwrap();
    let router = fleet.local_addr();

    let csv = "x,y\n1,2\n3,4\n5,6\n7,8\n9,10\n11,12\n13,14\n15,16\n17,18\n19,20\n";
    let body = json_body(&[("name", "tiny"), ("csv", csv)]);
    // A client retrying its upload (timeout, crash, …) must converge,
    // not flap 409: the router re-frames ingest as the idempotent
    // replicate path.
    for round in 0..3 {
        let (status, resp) = request_once(router, "POST", "/tables", Some(&body)).unwrap();
        assert_eq!(status, 201, "round {round}: {resp}");
        assert_eq!(
            serde_json::from_str_value(&resp)
                .unwrap()
                .get("placed")
                .unwrap()
                .as_u64(),
            Some(2),
            "round {round}: {resp}"
        );
    }
    // Different content under the same name is still refused.
    let conflicting = json_body(&[("name", "tiny"), ("csv", "x,y\n9,9\n8,8\n7,7\n")]);
    let (status, resp) = request_once(router, "POST", "/tables", Some(&conflicting)).unwrap();
    assert_eq!(status, 409, "{resp}");

    fleet.shutdown();
}
