//! CI metrics-lint smoke: scrape `/metrics?format=prometheus` from a
//! *live* single-node server and a *live* fleet router over real
//! sockets, parse the exposition with the in-repo parser, and fail on
//! any lint problem (invalid names, duplicate series, histogram
//! bucket/count inconsistencies). This is the job that keeps the
//! exposition scrapeable: a malformed line here is exactly what a real
//! Prometheus server would reject.

use std::time::Duration;

use ziggy::fleet::{start_fleet, FleetOptions};
use ziggy::obs::PromDoc;
use ziggy::serve::http::request_once;
use ziggy::serve::{serve, ServeOptions};

fn json_body(fields: &[(&str, &str)]) -> String {
    serde_json::to_string(&serde_json::Value::Object(
        fields
            .iter()
            .map(|(k, v)| {
                (
                    (*k).to_string(),
                    serde_json::Value::String((*v).to_string()),
                )
            })
            .collect(),
    ))
    .unwrap()
}

/// A table big enough to characterize (the engine wants at least 8
/// rows on each side of the selection).
fn toy_csv() -> String {
    let mut csv = String::from("x,y\n");
    for i in 0..24 {
        csv.push_str(&format!("{},{}\n", i, (i * 7) % 24));
    }
    csv
}

/// Scrapes `addr` and returns the parsed document, failing the test on
/// parse errors or lint problems.
fn scrape_clean(addr: std::net::SocketAddr) -> PromDoc {
    let (status, text) = request_once(addr, "GET", "/metrics?format=prometheus", None).unwrap();
    assert_eq!(status, 200, "{text}");
    let doc =
        PromDoc::parse(&text).unwrap_or_else(|e| panic!("exposition must parse: {e}\n{text}"));
    let problems = doc.lint();
    assert!(problems.is_empty(), "lint problems: {problems:?}\n{text}");
    doc
}

#[test]
fn serve_prometheus_exposition_is_lint_clean() {
    let server = serve("127.0.0.1:0", ServeOptions::default()).unwrap();
    let addr = server.local_addr();

    // Drive some traffic so counters and histograms carry real values.
    let csv = toy_csv();
    let (status, resp) = request_once(
        addr,
        "POST",
        "/tables",
        Some(&json_body(&[("name", "t"), ("csv", &csv)])),
    )
    .unwrap();
    assert_eq!(status, 201, "{resp}");
    let query = json_body(&[("query", "x >= 12")]);
    for _ in 0..3 {
        let (status, resp) =
            request_once(addr, "POST", "/tables/t/characterize", Some(&query)).unwrap();
        assert_eq!(status, 200, "{resp}");
    }
    let _ = request_once(addr, "GET", "/healthz", None).unwrap();

    let doc = scrape_clean(addr);
    for family in [
        "ziggy_requests_total",
        "ziggy_characterizations_total",
        "ziggy_request_duration_seconds",
        "ziggy_stage_duration_seconds",
        "ziggy_uptime_seconds",
        "ziggy_build_info",
    ] {
        assert!(
            doc.families.iter().any(|f| f.name == family),
            "missing family {family}"
        );
    }
    server.shutdown();
}

#[test]
fn fleet_prometheus_exposition_is_lint_clean_with_shard_labels() {
    // In-process backends are enough: the router scrapes them over real
    // HTTP either way, which is the path this smoke pins.
    let backends: Vec<_> = (0..2)
        .map(|_| serve("127.0.0.1:0", ServeOptions::default()).unwrap())
        .collect();
    let addrs = backends
        .iter()
        .enumerate()
        .map(|(i, b)| (format!("shard-{i}"), b.local_addr()))
        .collect();
    let fleet = start_fleet(
        "127.0.0.1:0",
        addrs,
        FleetOptions {
            replication: 2,
            probe_interval: Duration::from_millis(100),
            ..FleetOptions::default()
        },
    )
    .unwrap();
    let router = fleet.local_addr();

    let csv = toy_csv();
    let (status, resp) = request_once(
        router,
        "POST",
        "/tables",
        Some(&json_body(&[("name", "t"), ("csv", &csv)])),
    )
    .unwrap();
    assert_eq!(status, 201, "{resp}");
    let query = json_body(&[("query", "x >= 12")]);
    for _ in 0..4 {
        let (status, resp) =
            request_once(router, "POST", "/tables/t/characterize", Some(&query)).unwrap();
        assert_eq!(status, 200, "{resp}");
    }

    let doc = scrape_clean(router);
    // Router-local families...
    for family in [
        "ziggy_fleet_requests_total",
        "ziggy_fleet_proxied_total",
        "ziggy_fleet_epoch",
        "ziggy_fleet_backends",
        "ziggy_fleet_request_duration_seconds",
    ] {
        assert!(
            doc.families.iter().any(|f| f.name == family),
            "missing family {family}"
        );
    }
    // ...plus each backend's own series, scatter-gathered and stamped
    // with the shard label.
    let shards: std::collections::BTreeSet<&str> = doc
        .families
        .iter()
        .filter(|f| f.name == "ziggy_requests_total")
        .flat_map(|f| f.samples.iter())
        .filter_map(|s| s.label("shard"))
        .collect();
    assert_eq!(
        shards.into_iter().collect::<Vec<_>>(),
        vec!["shard-0", "shard-1"],
        "per-shard series must carry the shard label"
    );

    fleet.shutdown();
    for b in backends {
        b.shutdown();
    }
}
