//! CI metrics-lint smoke: scrape `/metrics?format=prometheus` from a
//! *live* single-node server and a *live* fleet router over real
//! sockets, parse the exposition with the in-repo parser, and fail on
//! any lint problem (invalid names, duplicate series, histogram
//! bucket/count inconsistencies). This is the job that keeps the
//! exposition scrapeable: a malformed line here is exactly what a real
//! Prometheus server would reject.

use std::time::Duration;

use ziggy::fleet::{start_fleet, FleetOptions};
use ziggy::obs::PromDoc;
use ziggy::serve::http::request_once;
use ziggy::serve::{serve, ServeOptions};

fn json_body(fields: &[(&str, &str)]) -> String {
    serde_json::to_string(&serde_json::Value::Object(
        fields
            .iter()
            .map(|(k, v)| {
                (
                    (*k).to_string(),
                    serde_json::Value::String((*v).to_string()),
                )
            })
            .collect(),
    ))
    .unwrap()
}

/// A table big enough to characterize (the engine wants at least 8
/// rows on each side of the selection).
fn toy_csv() -> String {
    let mut csv = String::from("x,y\n");
    for i in 0..24 {
        csv.push_str(&format!("{},{}\n", i, (i * 7) % 24));
    }
    csv
}

/// Scrapes `addr` and returns the parsed document, failing the test on
/// parse errors or lint problems.
fn scrape_clean(addr: std::net::SocketAddr) -> PromDoc {
    let (status, text) = request_once(addr, "GET", "/metrics?format=prometheus", None).unwrap();
    assert_eq!(status, 200, "{text}");
    let doc =
        PromDoc::parse(&text).unwrap_or_else(|e| panic!("exposition must parse: {e}\n{text}"));
    let problems = doc.lint();
    assert!(problems.is_empty(), "lint problems: {problems:?}\n{text}");
    doc
}

/// Asserts every *populated* bucket of `family` (a cumulative count
/// strictly above the previous bucket's, i.e. the slot itself took a
/// sample) carries an OpenMetrics `trace_id` exemplar, and returns one
/// of the trace ids for resolvability checks.
fn assert_bucket_exemplars(doc: &PromDoc, family: &str) -> String {
    let bucket_name = format!("{family}_bucket");
    let mut series: std::collections::BTreeMap<String, Vec<(f64, f64, Option<String>)>> =
        std::collections::BTreeMap::new();
    for f in doc.families.iter().filter(|f| f.name == family) {
        for s in f.samples.iter().filter(|s| s.name == bucket_name) {
            let le = match s.label("le") {
                Some("+Inf") => f64::INFINITY,
                Some(raw) => raw.parse().unwrap(),
                None => panic!("bucket sample without le: {s:?}"),
            };
            let key: Vec<String> = s
                .labels
                .iter()
                .filter(|(k, _)| k != "le")
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            series.entry(key.join(",")).or_default().push((
                le,
                s.value,
                s.exemplar
                    .as_ref()
                    .and_then(|e| e.label("trace_id"))
                    .map(str::to_string),
            ));
        }
    }
    assert!(!series.is_empty(), "no {bucket_name} samples in the scrape");
    let mut witness = None;
    for (labels, mut buckets) in series {
        buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut prev = 0.0;
        for (le, cumulative, trace_id) in buckets {
            if cumulative > prev {
                let trace_id = trace_id.unwrap_or_else(|| {
                    panic!(
                        "populated bucket le={le} of {family}{{{labels}}} has no trace_id exemplar"
                    )
                });
                witness = Some(trace_id);
            }
            prev = cumulative;
        }
    }
    witness.expect("at least one populated bucket")
}

/// Asserts the trace id behind an exemplar resolves to a full span tree
/// at `/debug/traces/{id}` on the same server.
fn assert_trace_resolves(addr: std::net::SocketAddr, trace_id: &str) {
    let (status, body) =
        request_once(addr, "GET", &format!("/debug/traces/{trace_id}"), None).unwrap();
    assert_eq!(
        status, 200,
        "exemplar trace {trace_id} must resolve: {body}"
    );
    let v = serde_json::from_str_value(&body).unwrap();
    assert_eq!(v.get("trace_id").unwrap().as_str(), Some(trace_id));
    assert!(
        !v.get("spans").unwrap().as_array().unwrap().is_empty(),
        "{body}"
    );
}

#[test]
fn serve_prometheus_exposition_is_lint_clean() {
    let server = serve("127.0.0.1:0", ServeOptions::default()).unwrap();
    let addr = server.local_addr();

    // Drive some traffic so counters and histograms carry real values.
    let csv = toy_csv();
    let (status, resp) = request_once(
        addr,
        "POST",
        "/tables",
        Some(&json_body(&[("name", "t"), ("csv", &csv)])),
    )
    .unwrap();
    assert_eq!(status, 201, "{resp}");
    let query = json_body(&[("query", "x >= 12")]);
    for _ in 0..3 {
        let (status, resp) =
            request_once(addr, "POST", "/tables/t/characterize", Some(&query)).unwrap();
        assert_eq!(status, 200, "{resp}");
    }
    let _ = request_once(addr, "GET", "/healthz", None).unwrap();

    let doc = scrape_clean(addr);
    for family in [
        "ziggy_requests_total",
        "ziggy_characterizations_total",
        "ziggy_request_duration_seconds",
        "ziggy_stage_duration_seconds",
        "ziggy_uptime_seconds",
        "ziggy_build_info",
    ] {
        assert!(
            doc.families.iter().any(|f| f.name == family),
            "missing family {family}"
        );
    }
    // Every populated latency bucket carries a trace-id exemplar, and
    // the id resolves to a span tree in the flight recorder.
    let trace = assert_bucket_exemplars(&doc, "ziggy_request_duration_seconds");
    assert_trace_resolves(addr, &trace);
    server.shutdown();
}

#[test]
fn fleet_prometheus_exposition_is_lint_clean_with_shard_labels() {
    // In-process backends are enough: the router scrapes them over real
    // HTTP either way, which is the path this smoke pins.
    let backends: Vec<_> = (0..2)
        .map(|_| serve("127.0.0.1:0", ServeOptions::default()).unwrap())
        .collect();
    let addrs = backends
        .iter()
        .enumerate()
        .map(|(i, b)| (format!("shard-{i}"), b.local_addr()))
        .collect();
    let fleet = start_fleet(
        "127.0.0.1:0",
        addrs,
        FleetOptions {
            replication: 2,
            probe_interval: Duration::from_millis(100),
            ..FleetOptions::default()
        },
    )
    .unwrap();
    let router = fleet.local_addr();

    let csv = toy_csv();
    let (status, resp) = request_once(
        router,
        "POST",
        "/tables",
        Some(&json_body(&[("name", "t"), ("csv", &csv)])),
    )
    .unwrap();
    assert_eq!(status, 201, "{resp}");
    let query = json_body(&[("query", "x >= 12")]);
    for _ in 0..4 {
        let (status, resp) =
            request_once(router, "POST", "/tables/t/characterize", Some(&query)).unwrap();
        assert_eq!(status, 200, "{resp}");
    }

    let doc = scrape_clean(router);
    // Router-local families...
    for family in [
        "ziggy_fleet_requests_total",
        "ziggy_fleet_proxied_total",
        "ziggy_fleet_epoch",
        "ziggy_fleet_backends",
        "ziggy_fleet_request_duration_seconds",
    ] {
        assert!(
            doc.families.iter().any(|f| f.name == family),
            "missing family {family}"
        );
    }
    // ...plus each backend's own series, scatter-gathered and stamped
    // with the shard label.
    let shards: std::collections::BTreeSet<&str> = doc
        .families
        .iter()
        .filter(|f| f.name == "ziggy_requests_total")
        .flat_map(|f| f.samples.iter())
        .filter_map(|s| s.label("shard"))
        .collect();
    assert_eq!(
        shards.into_iter().collect::<Vec<_>>(),
        vec!["shard-0", "shard-1"],
        "per-shard series must carry the shard label"
    );
    // Router-edge exemplars resolve at the router's own recorder; the
    // backends' exemplars (absorbed with their shard stamp) resolve
    // fleet-assembled through the same endpoint.
    let trace = assert_bucket_exemplars(&doc, "ziggy_fleet_request_duration_seconds");
    assert_trace_resolves(router, &trace);
    let backend_trace = assert_bucket_exemplars(&doc, "ziggy_request_duration_seconds");
    assert_trace_resolves(router, &backend_trace);

    fleet.shutdown();
    for b in backends {
        b.shutdown();
    }
}
