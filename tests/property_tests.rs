//! Property-based tests (proptest) on cross-crate invariants.

use proptest::prelude::*;
use ziggy::prelude::*;
use ziggy::store::csv::{read_csv_str, write_csv_string, CsvOptions};
use ziggy::store::eval::{evaluate, select};
use ziggy::store::{Bitmask, Expr};
use ziggy_stats::{PairMoments, UniMoments};

fn small_values() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e4..1e4f64, 30..120)
}

/// Injects NaN (the NULL encoding) every `nan_every` rows, so kernels
/// are exercised against non-finite values too.
fn with_nans(values: &[f64], nan_every: usize) -> Vec<f64> {
    values
        .iter()
        .enumerate()
        .map(|(i, &v)| if i % nan_every == 0 { f64::NAN } else { v })
        .collect()
}

fn rel_close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Complement derivation by subtraction equals a direct scan, for any
    /// data and any mask.
    #[test]
    fn complement_identity_uni(values in small_values(), mask_bits in prop::collection::vec(any::<bool>(), 30..120)) {
        let n = values.len().min(mask_bits.len());
        let values = &values[..n];
        let whole = UniMoments::from_slice(values);
        let inside = UniMoments::from_masked(values, |i| mask_bits[i]);
        let derived = whole.subtract(&inside).unwrap();
        let direct = UniMoments::from_masked(values, |i| !mask_bits[i]);
        prop_assert_eq!(derived.count(), direct.count());
        if direct.count() > 0 {
            prop_assert!((derived.mean() - direct.mean()).abs() < 1e-6);
        }
        if direct.count() > 1 {
            prop_assert!(
                (derived.variance().unwrap() - direct.variance().unwrap()).abs() < 1e-5
            );
        }
    }

    /// Pair-moment subtraction identity.
    #[test]
    fn complement_identity_pair(
        xs in small_values(),
        ys in small_values(),
        mask_bits in prop::collection::vec(any::<bool>(), 30..120)
    ) {
        let n = xs.len().min(ys.len()).min(mask_bits.len());
        let (xs, ys) = (&xs[..n], &ys[..n]);
        let whole = PairMoments::from_slices(xs, ys).unwrap();
        let inside = PairMoments::from_masked(xs, ys, |i| mask_bits[i]).unwrap();
        let derived = whole.subtract(&inside).unwrap();
        let direct = PairMoments::from_masked(xs, ys, |i| !mask_bits[i]).unwrap();
        prop_assert_eq!(derived.count(), direct.count());
        if direct.count() > 1 {
            prop_assert!((derived.covariance().unwrap() - direct.covariance().unwrap()).abs() < 1e-4);
        }
    }

    /// The word-wise univariate kernel equals the naive per-row loop for
    /// random tables and masks (within floating round-off), including
    /// NULL-encoded (NaN) rows and tail words (len % 64 != 0).
    #[test]
    fn uni_kernel_matches_naive(
        values in small_values(),
        nan_every in 2usize..20,
        mask_bits in prop::collection::vec(any::<bool>(), 30..120)
    ) {
        let n = values.len().min(mask_bits.len());
        let values = with_nans(&values[..n], nan_every);
        let mask = Bitmask::from_bools(mask_bits[..n].iter().copied());
        let kernel = UniMoments::from_mask_words(&values, mask.words());
        let naive = UniMoments::from_masked(&values, |i| mask.get(i));
        prop_assert_eq!(kernel.count(), naive.count());
        prop_assert!(rel_close(kernel.sum(), naive.sum(), 1e-9), "{} vs {}", kernel.sum(), naive.sum());
        prop_assert!(rel_close(kernel.sum_sq(), naive.sum_sq(), 1e-9));
        if naive.count() > 0 {
            prop_assert!(rel_close(kernel.mean(), naive.mean(), 1e-9));
        }
        if naive.count() > 1 {
            prop_assert!((kernel.variance().unwrap() - naive.variance().unwrap()).abs()
                <= 1e-9 * naive.sum_sq().max(1.0));
        }
    }

    /// The word-wise pair kernel equals the naive per-row loop, with
    /// jointly-finite filtering intact.
    #[test]
    fn pair_kernel_matches_naive(
        xs in small_values(),
        ys in small_values(),
        nan_every in 2usize..20,
        mask_bits in prop::collection::vec(any::<bool>(), 30..120)
    ) {
        let n = xs.len().min(ys.len()).min(mask_bits.len());
        let xs = with_nans(&xs[..n], nan_every);
        let ys = with_nans(&ys[..n], nan_every + 1);
        let mask = Bitmask::from_bools(mask_bits[..n].iter().copied());
        let kernel = PairMoments::from_mask_words(&xs, &ys, mask.words()).unwrap();
        let naive = PairMoments::from_masked(&xs, &ys, |i| mask.get(i)).unwrap();
        prop_assert_eq!(kernel.count(), naive.count());
        prop_assert!(rel_close(kernel.mean_x(), naive.mean_x(), 1e-9) || naive.count() == 0);
        prop_assert!(rel_close(kernel.mean_y(), naive.mean_y(), 1e-9) || naive.count() == 0);
        if naive.count() > 1 {
            prop_assert!((kernel.covariance().unwrap() - naive.covariance().unwrap()).abs() < 1e-4);
        }
    }

    /// The block-wise masked frequency count equals the naive per-row
    /// loop exactly (integer counts) on random categorical columns.
    #[test]
    fn freq_kernel_matches_naive(
        codes in prop::collection::vec(0usize..4, 30..200),
        mask_bits in prop::collection::vec(any::<bool>(), 30..200)
    ) {
        let n = codes.len().min(mask_bits.len());
        let labels = ["a", "b", "c"];
        let mut b = TableBuilder::new();
        b.add_categorical(
            "cat",
            codes[..n].iter().map(|&c| labels.get(c).copied()).collect(),
        );
        let t = b.build().unwrap();
        let mask = Bitmask::from_bools(mask_bits[..n].iter().copied());
        let fast = ziggy::store::masked_freq(&t, 0, &mask).unwrap();
        let naive = ziggy::store::masked_freq_naive(&t, 0, &mask).unwrap();
        prop_assert_eq!(fast.counts(), naive.counts());
        prop_assert_eq!(fast.total(), naive.total());
    }

    /// Bitmask boolean algebra: De Morgan and double complement.
    #[test]
    fn mask_algebra(a_bits in prop::collection::vec(any::<bool>(), 1..300), b_bits in prop::collection::vec(any::<bool>(), 1..300)) {
        let n = a_bits.len().min(b_bits.len());
        let a = Bitmask::from_fn(n, |i| a_bits[i]);
        let b = Bitmask::from_fn(n, |i| b_bits[i]);
        // ¬¬a = a.
        prop_assert_eq!(a.complement().complement(), a.clone());
        // ¬(a ∨ b) = ¬a ∧ ¬b.
        let mut lhs = a.clone();
        lhs.or_assign(&b);
        lhs.not_assign();
        let mut rhs = a.complement();
        rhs.and_assign(&b.complement());
        prop_assert_eq!(lhs, rhs);
        // Partition: |a| + |¬a| = n.
        prop_assert_eq!(a.count_ones() + a.complement().count_ones(), n);
    }

    /// Predicate evaluation respects boolean structure on random tables:
    /// NOT inverts, AND intersects, OR unions.
    #[test]
    fn predicate_boolean_structure(values in small_values(), threshold in -1e4..1e4f64) {
        let mut b = TableBuilder::new();
        b.add_numeric("x", values.clone());
        let t = b.build().unwrap();
        let base = select(&t, &format!("x > {threshold}")).unwrap();
        let negated = select(&t, &format!("NOT x > {threshold}")).unwrap();
        prop_assert_eq!(negated, base.complement());
        let anded = select(&t, &format!("x > {threshold} AND x > {threshold}")).unwrap();
        prop_assert_eq!(&anded, &base);
        let ored = select(&t, &format!("x > {threshold} OR x > {threshold}")).unwrap();
        prop_assert_eq!(&ored, &base);
    }

    /// Expr::Display output reparses to the same AST (parser/printer
    /// round trip) for generated comparison trees.
    #[test]
    fn expr_display_round_trip(
        col in "[a-z]{1,6}",
        op_idx in 0usize..6,
        v in -1e3..1e3f64,
        lo in -1e3..0.0f64,
        hi in 0.0..1e3f64
    ) {
        use ziggy::store::{CmpOp, Literal};
        let ops = [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge, CmpOp::Eq, CmpOp::Ne];
        let exprs = vec![
            Expr::Cmp { column: col.clone(), op: ops[op_idx], value: Literal::Number(v) },
            Expr::Between { column: col.clone(), lo, hi, negated: op_idx % 2 == 0 },
            Expr::IsNull { column: col.clone(), negated: op_idx % 2 == 1 },
        ];
        for e in exprs {
            let text = e.to_string();
            let back = ziggy::store::parse_predicate(&text).unwrap();
            prop_assert_eq!(back, e);
        }
    }

    /// CSV round trip preserves numeric content (modulo float printing)
    /// and shape.
    #[test]
    fn csv_round_trip(values in prop::collection::vec(-1e6..1e6f64, 5..60)) {
        let mut b = TableBuilder::new();
        b.add_numeric("v", values.clone());
        let t = b.build().unwrap();
        let text = write_csv_string(&t, ',');
        let back = read_csv_str(&text, &CsvOptions::default()).unwrap();
        prop_assert_eq!(back.n_rows(), t.n_rows());
        let original = t.numeric(0).unwrap();
        let recovered = back.numeric(0).unwrap();
        for (a, b) in original.iter().zip(recovered) {
            prop_assert!((a - b).abs() <= a.abs() * 1e-12);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The engine's output invariants hold on randomized planted data:
    /// ranked order, disjointness, size and tightness bounds.
    #[test]
    fn engine_invariants_on_random_data(seed in 0u64..500, selectivity in 0.1f64..0.4) {
        let spec = ziggy_synth::spec::DatasetSpec {
            name: "prop".into(),
            n_rows: 400,
            driver: "driver".into(),
            selection_frac: selectivity,
            themes: vec![
                ziggy_synth::spec::ThemeSpec {
                    name: "p".into(),
                    columns: vec!["p0".into(), "p1".into()],
                    intra_r: 0.7,
                    mean_shift: 1.5,
                    scale: 0.8,
                },
                ziggy_synth::spec::ThemeSpec {
                    name: "f".into(),
                    columns: vec!["f0".into(), "f1".into(), "f2".into()],
                    intra_r: 0.6,
                    mean_shift: 0.0,
                    scale: 1.0,
                },
            ],
            noise_columns: vec!["n0".into(), "n1".into()],
            categoricals: vec![],
            seed,
        };
        let d = ziggy_synth::generate(&spec);
        let config = ZiggyConfig { max_view_size: 3, ..ZiggyConfig::default() };
        let z = Ziggy::new(&d.table, config.clone());
        let report = z.characterize(&d.predicate).unwrap();
        // Ranked descending.
        for w in report.views.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
        // Disjoint, bounded, tight.
        let mut used: Vec<usize> = Vec::new();
        for v in &report.views {
            prop_assert!(v.view.len() <= config.max_view_size);
            prop_assert!(v.tightness >= config.min_tightness - 1e-9);
            prop_assert!((0.0..=1.0).contains(&v.robustness_p) || v.robustness_p.is_nan());
            for c in &v.view.columns {
                prop_assert!(!used.contains(c));
                used.push(*c);
            }
        }
    }

    /// Kernel/naive equivalence at the mask extremes, swept over lengths
    /// chosen to hit word boundaries: all-zeros, all-ones, and masks whose
    /// last word is partial (len % 64 != 0).
    #[test]
    fn kernel_edge_masks(len_seed in 0usize..6, nan_every in 2usize..9) {
        let len = [1usize, 63, 64, 65, 128, 190][len_seed];
        let values: Vec<f64> = with_nans(
            &(0..len).map(|i| (i as f64 * 0.37).sin() * 100.0).collect::<Vec<_>>(),
            nan_every,
        );
        let ys: Vec<f64> = values.iter().rev().copied().collect();
        let masks = [
            Bitmask::zeros(len),
            Bitmask::ones(len),
            Bitmask::from_fn(len, |i| i % 64 >= 32), // straddles every word
            Bitmask::from_fn(len, |i| i == len - 1), // lone tail bit
        ];
        for mask in &masks {
            let k = UniMoments::from_mask_words(&values, mask.words());
            let n = UniMoments::from_masked(&values, |i| mask.get(i));
            prop_assert_eq!(k.count(), n.count());
            prop_assert!(rel_close(k.sum(), n.sum(), 1e-12));
            prop_assert!(rel_close(k.sum_sq(), n.sum_sq(), 1e-12));
            let kp = PairMoments::from_mask_words(&values, &ys, mask.words()).unwrap();
            let np = PairMoments::from_masked(&values, &ys, |i| mask.get(i)).unwrap();
            prop_assert_eq!(kp.count(), np.count());
            prop_assert!(rel_close(kp.mean_x(), np.mean_x(), 1e-12) || np.count() == 0);
        }
    }

    /// Evaluating a random expression tree never panics and always
    /// produces a mask of the right length.
    #[test]
    fn random_expression_trees_evaluate(ops in prop::collection::vec(0usize..5, 1..8)) {
        let mut b = TableBuilder::new();
        b.add_numeric("x", (0..100).map(|i| i as f64).collect::<Vec<_>>());
        b.add_categorical("c", (0..100).map(|i| Some(["p", "q"][i % 2])).collect::<Vec<_>>());
        let t = b.build().unwrap();
        use ziggy::store::{CmpOp, Literal};
        let mut e = Expr::Cmp { column: "x".into(), op: CmpOp::Gt, value: Literal::Number(50.0) };
        for &op in &ops {
            e = match op {
                0 => Expr::Not(Box::new(e)),
                1 => Expr::And(Box::new(e), Box::new(Expr::Cmp {
                    column: "c".into(), op: CmpOp::Eq, value: Literal::Str("p".into()),
                })),
                2 => Expr::Or(Box::new(e), Box::new(Expr::IsNull { column: "x".into(), negated: false })),
                3 => Expr::And(Box::new(e), Box::new(Expr::Const(true))),
                _ => Expr::Or(Box::new(e), Box::new(Expr::Between {
                    column: "x".into(), lo: 10.0, hi: 20.0, negated: false,
                })),
            };
        }
        let mask = evaluate(&e, &t).unwrap();
        prop_assert_eq!(mask.len(), 100);
    }
}
