//! Durability chaos suite: real `ziggy serve` processes on real data
//! directories, SIGKILLed and restarted mid-conversation. Each test
//! pins one of the three bugs the durability tier exists to kill:
//!
//! 1. **Crash amnesia** — a SIGKILLed backend restarted onto its
//!    `--data-dir` replays its WAL to byte-identical reports (ETags
//!    included) and resumes its sessions mid-count.
//! 2. **Tombstone resurrection** — a table deleted while a holder was
//!    down must stay deleted when that holder rejoins with its WAL
//!    replayed; repair propagates the delete instead of the copy.
//! 3. **Session stranding** — killing a session's home backend
//!    mid-stepping fails the conversation over to another replica
//!    instead of 503ing with a "recreate it yourself" shrug.
//!
//! Plus the R=1 drain-loss path: removing the sole holder of a table
//! copies the data out before the membership changes.
//!
//! The durability mode comes from `ZIGGY_DURABILITY` (`fsync`, `batch`,
//! or `async`; default `batch`) so CI can run the whole file once per
//! mode. Every invariant here must hold under all three — `async` still
//! flushes on rotation and the tests sync via acknowledged HTTP
//! responses plus the drop-free SIGKILL path exercised by `kill()`.

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::time::Duration;

use ziggy::fleet::{repair_round, start_fleet, BackendProcess, FleetOptions};
use ziggy::serve::http::{request_once, Client};
use ziggy::store::csv::write_csv_string;

fn durability_mode() -> String {
    std::env::var("ZIGGY_DURABILITY").unwrap_or_else(|_| "batch".into())
}

/// A per-test scratch root; removed on drop so reruns start clean.
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "ziggy-chaos-{}-{name}-{}",
            std::process::id(),
            durability_mode()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn dir_for(&self, id: &str) -> PathBuf {
        self.0.join(id)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The `serve` flags that put a backend on its own durable directory.
fn durable_args(dir: &Path) -> Vec<String> {
    vec![
        "--data-dir".into(),
        dir.to_string_lossy().into_owned(),
        "--durability".into(),
        durability_mode(),
    ]
}

fn spawn_durable(binary: &Path, id: &str, scratch: &Scratch) -> BackendProcess {
    let args = durable_args(&scratch.dir_for(id));
    let refs: Vec<&str> = args.iter().map(String::as_str).collect();
    BackendProcess::spawn(binary, id, &refs).expect("backend must start")
}

fn json_body(fields: &[(&str, &str)]) -> String {
    serde_json::to_string(&serde_json::Value::Object(
        fields
            .iter()
            .map(|(k, v)| {
                (
                    (*k).to_string(),
                    serde_json::Value::String((*v).to_string()),
                )
            })
            .collect(),
    ))
    .unwrap()
}

/// Total row count seen by a characterize report body.
fn report_rows(body: &str) -> u64 {
    let v = serde_json::from_str_value(body).unwrap();
    let field = |k: &str| v.get(k).unwrap().as_u64().unwrap();
    field("n_inside") + field("n_outside")
}

fn lists_table(addr: SocketAddr, table: &str) -> bool {
    let (s, body) = request_once(addr, "GET", "/tables", None).unwrap();
    assert_eq!(s, 200);
    body.contains(&format!("\"{table}\""))
}

#[test]
fn sigkill_restart_replays_byte_identical_reports_and_sessions() {
    let binary = Path::new(env!("CARGO_BIN_EXE_ziggy"));
    let scratch = Scratch::new("sigkill");
    let mut child = spawn_durable(binary, "solo", &scratch);

    let twin = ziggy::synth::box_office(7);
    let csv = write_csv_string(&twin.table, ',');
    let query_body = json_body(&[("query", &twin.predicate)]);
    let body = json_body(&[("name", "boxoffice"), ("csv", &csv)]);
    let (status, resp) = request_once(child.addr(), "POST", "/tables", Some(&body)).unwrap();
    assert_eq!(status, 201, "{resp}");

    // Baseline wire bytes + validator (characterize bodies carry no
    // wall-clock timings, so byte identity is the contract).
    let mut client = Client::connect(child.addr()).unwrap();
    let (status, headers, baseline) = client
        .request_with_headers(
            "POST",
            "/tables/boxoffice/characterize",
            &[],
            Some(&query_body),
        )
        .unwrap();
    assert_eq!(status, 200, "{baseline}");
    let etag = headers
        .iter()
        .find(|(k, _)| k == "etag")
        .map(|(_, v)| v.clone())
        .expect("characterize must carry an ETag");

    // A session one step into its conversation.
    let (status, created) = request_once(
        child.addr(),
        "POST",
        "/sessions",
        Some(&json_body(&[("table", "boxoffice")])),
    )
    .unwrap();
    assert_eq!(status, 201, "{created}");
    let sid = serde_json::from_str_value(&created)
        .unwrap()
        .get("session_id")
        .unwrap()
        .as_u64()
        .unwrap();
    let step_path = format!("/sessions/{sid}/step");
    let (status, step1) =
        request_once(child.addr(), "POST", &step_path, Some(&query_body)).unwrap();
    assert_eq!(status, 200, "{step1}");
    assert!(step1.contains("\"step\":1"), "{step1}");

    // SIGKILL — no flush hooks, no destructors — then restart on the
    // same directory (fresh ephemeral port; the data dir is the
    // identity that matters).
    child.kill();
    let child = spawn_durable(binary, "solo", &scratch);

    assert!(
        lists_table(child.addr(), "boxoffice"),
        "replay must restore the table"
    );
    let mut client = Client::connect(child.addr()).unwrap();
    let (status, _, replayed) = client
        .request_with_headers(
            "POST",
            "/tables/boxoffice/characterize",
            &[],
            Some(&query_body),
        )
        .unwrap();
    assert_eq!(status, 200, "{replayed}");
    assert_eq!(
        replayed, baseline,
        "replayed reports must be byte-identical"
    );
    let (status, _, empty) = client
        .request_with_headers(
            "POST",
            "/tables/boxoffice/characterize",
            &[("If-None-Match", &etag)],
            Some(&query_body),
        )
        .unwrap();
    assert_eq!(
        status, 304,
        "the pre-kill ETag must still validate: {empty}"
    );

    // The CSV export now comes back out of the log, verbatim.
    let (status, exported) =
        request_once(child.addr(), "GET", "/tables/boxoffice/csv", None).unwrap();
    assert_eq!(status, 200);
    let exported_csv = serde_json::from_str_value(&exported)
        .unwrap()
        .get("csv")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    assert_eq!(exported_csv, csv, "exported CSV must be the upload bytes");

    // And the session picks up mid-count: the next step is #2.
    let (status, step2) =
        request_once(child.addr(), "POST", &step_path, Some(&query_body)).unwrap();
    assert_eq!(status, 200, "replayed session must keep stepping: {step2}");
    assert!(step2.contains("\"step\":2"), "{step2}");
}

#[test]
fn sigkill_after_appends_replays_the_appended_table_byte_identically() {
    let binary = Path::new(env!("CARGO_BIN_EXE_ziggy"));
    let scratch = Scratch::new("append");
    let mut child = spawn_durable(binary, "solo", &scratch);

    let twin = ziggy::synth::box_office(7);
    let csv = write_csv_string(&twin.table, ',');
    let query_body = json_body(&[("query", &twin.predicate)]);
    let body = json_body(&[("name", "boxoffice"), ("csv", &csv)]);
    let (status, resp) = request_once(child.addr(), "POST", "/tables", Some(&body)).unwrap();
    assert_eq!(status, 201, "{resp}");

    // Append rows recycled from the upload itself (guaranteed to match
    // the schema), in two separate POSTs so replay must fold two append
    // records onto the ingest in order.
    let data_lines: Vec<&str> = csv.lines().skip(1).collect();
    let batches = [
        format!("{}\n{}\n", data_lines[0], data_lines[1]),
        format!("{}\n", data_lines[2]),
    ];
    for batch in &batches {
        let append_body = json_body(&[("rows", batch)]);
        let (status, resp) = request_once(
            child.addr(),
            "POST",
            "/tables/boxoffice/rows",
            Some(&append_body),
        )
        .unwrap();
        assert_eq!(status, 200, "{resp}");
    }
    let combined = format!("{csv}{}{}", batches[0], batches[1]);

    // Baseline wire bytes + validator over the *appended* table.
    let mut client = Client::connect(child.addr()).unwrap();
    let (status, headers, baseline) = client
        .request_with_headers(
            "POST",
            "/tables/boxoffice/characterize",
            &[],
            Some(&query_body),
        )
        .unwrap();
    assert_eq!(status, 200, "{baseline}");
    assert_eq!(report_rows(&baseline), 903, "{baseline}");
    let etag = headers
        .iter()
        .find(|(k, _)| k == "etag")
        .map(|(_, v)| v.clone())
        .expect("characterize must carry an ETag");

    // SIGKILL, restart on the same directory: the ingest record plus
    // both append records must replay to the same appended table.
    child.kill();
    let mut child = spawn_durable(binary, "solo", &scratch);

    let (status, exported) =
        request_once(child.addr(), "GET", "/tables/boxoffice/csv", None).unwrap();
    assert_eq!(status, 200);
    let exported_csv = serde_json::from_str_value(&exported)
        .unwrap()
        .get("csv")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    assert_eq!(
        exported_csv, combined,
        "replayed CSV must be ingest bytes plus appended rows, verbatim"
    );
    let mut client = Client::connect(child.addr()).unwrap();
    let (status, _, replayed) = client
        .request_with_headers(
            "POST",
            "/tables/boxoffice/characterize",
            &[],
            Some(&query_body),
        )
        .unwrap();
    assert_eq!(status, 200, "{replayed}");
    assert_eq!(
        replayed, baseline,
        "replayed appended-table reports must be byte-identical"
    );
    let (status, _, empty) = client
        .request_with_headers(
            "POST",
            "/tables/boxoffice/characterize",
            &[("If-None-Match", &etag)],
            Some(&query_body),
        )
        .unwrap();
    assert_eq!(
        status, 304,
        "the pre-kill ETag must still validate: {empty}"
    );

    // The replayed table keeps accepting appends, and a second
    // crash-replay folds the post-restart append record in too.
    let append_body = json_body(&[("rows", &format!("{}\n", data_lines[3]))]);
    let (status, resp) = request_once(
        child.addr(),
        "POST",
        "/tables/boxoffice/rows",
        Some(&append_body),
    )
    .unwrap();
    assert_eq!(status, 200, "append after replay must work: {resp}");
    child.kill();
    let child = spawn_durable(binary, "solo", &scratch);
    let (status, exported) =
        request_once(child.addr(), "GET", "/tables/boxoffice/csv", None).unwrap();
    assert_eq!(status, 200);
    let exported_csv = serde_json::from_str_value(&exported)
        .unwrap()
        .get("csv")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    assert_eq!(
        exported_csv,
        format!("{combined}{}\n", data_lines[3]),
        "appends made after a replay must survive the next crash"
    );
    let (status, resp) = request_once(
        child.addr(),
        "POST",
        "/tables/boxoffice/characterize",
        Some(&query_body),
    )
    .unwrap();
    assert_eq!(status, 200, "{resp}");
    assert_eq!(report_rows(&resp), 904, "{resp}");
}

#[test]
fn delete_while_absent_is_not_resurrected_by_rejoin() {
    let binary = Path::new(env!("CARGO_BIN_EXE_ziggy"));
    let scratch = Scratch::new("resurrect");
    let mut children: Vec<BackendProcess> = (0..3)
        .map(|i| spawn_durable(binary, &format!("shard-{i}"), &scratch))
        .collect();
    let addrs = children
        .iter()
        .map(|c| (c.id().to_string(), c.addr()))
        .collect();
    let fleet = start_fleet(
        "127.0.0.1:0",
        addrs,
        FleetOptions {
            replication: 2,
            probe_interval: Duration::from_millis(50),
            repair_interval: None, // rounds driven by hand
            ..FleetOptions::default()
        },
    )
    .unwrap();
    let router = fleet.local_addr();

    let twin = ziggy::synth::box_office(7);
    let csv = write_csv_string(&twin.table, ',');
    let body = json_body(&[("name", "boxoffice"), ("csv", &csv)]);
    let (status, resp) = request_once(router, "POST", "/tables", Some(&body)).unwrap();
    assert_eq!(status, 201, "{resp}");
    let holders: Vec<usize> = (0..3)
        .filter(|&i| lists_table(children[i].addr(), "boxoffice"))
        .collect();
    assert_eq!(holders.len(), 2);

    // One holder crashes, and the table is deleted while it's away.
    children[holders[0]].kill();
    let (status, resp) = request_once(router, "DELETE", "/tables/boxoffice", None).unwrap();
    assert_eq!(status, 200, "{resp}");

    // The crashed holder comes back under its old id, onto its old data
    // dir — its WAL faithfully replays a table the rest of the fleet
    // has since deleted.
    let scratch_ref = &scratch;
    let restarted =
        ziggy::fleet::restart_dead_children_with(binary, &mut children, fleet.state(), &|id| {
            durable_args(&scratch_ref.dir_for(id))
        });
    assert_eq!(restarted, vec![format!("shard-{}", holders[0])]);
    assert!(
        lists_table(children[holders[0]].addr(), "boxoffice"),
        "the rejoiner's replay must restore its (stale) copy first"
    );

    // Repair compares the fleet-wide tombstone against the stale copy's
    // ingest timestamp: the delete wins and is propagated — the stale
    // copy must NOT be re-replicated back out to R replicas.
    let report = repair_round(fleet.state());
    assert!(
        report.deletes_propagated >= 1,
        "repair must push the delete to the rejoiner: {report:?}"
    );
    assert_eq!(report.repaired, 0, "nothing may be resurrected: {report:?}");
    assert!(
        !lists_table(children[holders[0]].addr(), "boxoffice"),
        "the stale copy must be deleted"
    );
    let (status, listing) = request_once(router, "GET", "/tables", None).unwrap();
    assert_eq!(status, 200);
    assert!(
        !listing.contains("\"boxoffice\""),
        "the fleet must not list a deleted table: {listing}"
    );

    // The propagated tombstone is itself durable: SIGKILL the rejoiner
    // again and its next replay must keep the table dead.
    children[holders[0]].kill();
    let restarted =
        ziggy::fleet::restart_dead_children_with(binary, &mut children, fleet.state(), &|id| {
            durable_args(&scratch_ref.dir_for(id))
        });
    assert_eq!(restarted.len(), 1);
    assert!(
        !lists_table(children[holders[0]].addr(), "boxoffice"),
        "the tombstone must survive the rejoiner's own crash-replay"
    );
    for _ in 0..2 {
        let report = repair_round(fleet.state());
        assert_eq!(report.deletes_propagated, 0, "{report:?}");
        assert_eq!(report.repaired, 0, "{report:?}");
    }

    fleet.shutdown();
    for mut c in children {
        c.kill();
    }
}

#[test]
fn session_home_sigkill_mid_stepping_fails_over() {
    let binary = Path::new(env!("CARGO_BIN_EXE_ziggy"));
    let scratch = Scratch::new("failover");
    let mut children: Vec<BackendProcess> = (0..3)
        .map(|i| spawn_durable(binary, &format!("shard-{i}"), &scratch))
        .collect();
    let addrs = children
        .iter()
        .map(|c| (c.id().to_string(), c.addr()))
        .collect();
    let fleet = start_fleet(
        "127.0.0.1:0",
        addrs,
        FleetOptions {
            replication: 3, // the table lives everywhere: any survivor can host
            probe_interval: Duration::from_millis(50),
            repair_interval: None,
            ..FleetOptions::default()
        },
    )
    .unwrap();
    let router = fleet.local_addr();

    let twin = ziggy::synth::box_office(7);
    let csv = write_csv_string(&twin.table, ',');
    let body = json_body(&[("name", "boxoffice"), ("csv", &csv)]);
    let (status, resp) = request_once(router, "POST", "/tables", Some(&body)).unwrap();
    assert_eq!(status, 201, "{resp}");

    let (status, created) = request_once(
        router,
        "POST",
        "/sessions",
        Some(&json_body(&[("table", "boxoffice")])),
    )
    .unwrap();
    assert_eq!(status, 201, "{created}");
    let v = serde_json::from_str_value(&created).unwrap();
    let sid = v.get("session_id").unwrap().as_u64().unwrap();
    let home = v.get("backend").unwrap().as_str().unwrap().to_string();
    let home_idx: usize = home.strip_prefix("shard-").unwrap().parse().unwrap();

    let query_body = json_body(&[("query", &twin.predicate)]);
    let step_path = format!("/sessions/{sid}/step");
    for step in 1..=2u64 {
        let (status, resp) = request_once(router, "POST", &step_path, Some(&query_body)).unwrap();
        assert_eq!(status, 200, "{resp}");
        assert!(resp.contains(&format!("\"step\":{step}")), "{resp}");
    }

    // SIGKILL the conversation's home mid-stepping. The next step must
    // succeed on another replica, with the ledger replayed so the step
    // counter keeps counting.
    children[home_idx].kill();
    let mut client = Client::connect(router).unwrap();
    let (status, headers, step3) = client
        .request_with_headers("POST", &step_path, &[], Some(&query_body))
        .unwrap();
    assert_eq!(status, 200, "the step must fail over, not 503: {step3}");
    assert!(step3.contains("\"step\":3"), "{step3}");
    let new_home = headers
        .iter()
        .find(|(k, _)| k == "x-fleet-session-failover")
        .map(|(_, v)| v.clone())
        .expect("failover must be announced in a header");
    assert_ne!(new_home, home);

    // Steady state on the new home: no second failover.
    let (status, headers, step4) = client
        .request_with_headers("POST", &step_path, &[], Some(&query_body))
        .unwrap();
    assert_eq!(status, 200, "{step4}");
    assert!(step4.contains("\"step\":4"), "{step4}");
    assert!(!headers.iter().any(|(k, _)| k == "x-fleet-session-failover"));

    fleet.shutdown();
    for mut c in children {
        c.kill();
    }
}

#[test]
fn drain_at_r1_copies_the_sole_replica_out() {
    let binary = Path::new(env!("CARGO_BIN_EXE_ziggy"));
    let scratch = Scratch::new("drain");
    let children: Vec<BackendProcess> = (0..2)
        .map(|i| spawn_durable(binary, &format!("shard-{i}"), &scratch))
        .collect();
    let addrs = children
        .iter()
        .map(|c| (c.id().to_string(), c.addr()))
        .collect();
    let fleet = start_fleet(
        "127.0.0.1:0",
        addrs,
        FleetOptions {
            replication: 1,
            probe_interval: Duration::from_millis(50),
            repair_interval: None,
            ..FleetOptions::default()
        },
    )
    .unwrap();
    let router = fleet.local_addr();

    let twin = ziggy::synth::box_office(7);
    let csv = write_csv_string(&twin.table, ',');
    let body = json_body(&[("name", "solo"), ("csv", &csv)]);
    let (status, resp) = request_once(router, "POST", "/tables", Some(&body)).unwrap();
    assert_eq!(status, 201, "{resp}");
    let holder = (0..2)
        .find(|&i| lists_table(children[i].addr(), "solo"))
        .unwrap();
    let other = 1 - holder;

    // Removing the sole holder migrates the copy before the ring changes.
    let (status, resp) = request_once(
        router,
        "DELETE",
        &format!("/admin/backends/shard-{holder}"),
        None,
    )
    .unwrap();
    assert_eq!(status, 200, "{resp}");
    assert!(resp.contains("\"copied_out\""), "{resp}");
    assert!(resp.contains("\"solo\""), "{resp}");
    assert!(
        lists_table(children[other].addr(), "solo"),
        "the drained table must land on the survivor"
    );
    let query_body = json_body(&[("query", &twin.predicate)]);
    let (status, resp) = request_once(
        router,
        "POST",
        "/tables/solo/characterize",
        Some(&query_body),
    )
    .unwrap();
    assert_eq!(status, 200, "no request may see the drain: {resp}");

    fleet.shutdown();
    for mut c in children {
        c.kill();
    }
}
