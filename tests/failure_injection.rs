//! Failure injection: the pipeline must degrade with typed errors, never
//! panics, on hostile inputs.

use ziggy::prelude::*;
use ziggy::store::csv::{read_csv_str, CsvOptions};
use ziggy_core::ZiggyError;
use ziggy_store::StoreError;

fn tiny_table() -> Table {
    let mut b = TableBuilder::new();
    b.add_numeric("x", (0..50).map(|i| i as f64).collect::<Vec<_>>());
    b.add_numeric("y", (0..50).map(|i| (i * 2) as f64).collect::<Vec<_>>());
    b.build().unwrap()
}

#[test]
fn malformed_csv_variants() {
    for (label, text) in [
        ("empty", ""),
        ("ragged", "a,b\n1,2\n3\n"),
        ("unterminated quote", "a\n\"x\n"),
        ("stray quote", "a\nab\"c\n"),
    ] {
        let r = read_csv_str(text, &CsvOptions::default());
        assert!(
            matches!(r, Err(StoreError::Csv { .. })),
            "{label} should fail as Csv error"
        );
    }
}

#[test]
fn unparsable_predicates() {
    let t = tiny_table();
    let z = Ziggy::new(&t, ZiggyConfig::default());
    for bad in [
        "x >>> 1",
        "x >",
        "(x > 1",
        "x BETWEEN 1",
        "x IN ()",
        "1 > x",
        "x NOT = 1",
    ] {
        match z.characterize(bad) {
            Err(ZiggyError::Store(StoreError::Parse { .. })) => {}
            other => panic!("{bad:?} produced {other:?}"),
        }
    }
}

#[test]
fn unknown_and_mistyped_columns() {
    let t = tiny_table();
    let z = Ziggy::new(&t, ZiggyConfig::default());
    assert!(matches!(
        z.characterize("nope > 1"),
        Err(ZiggyError::Store(StoreError::UnknownColumn(_)))
    ));
    assert!(matches!(
        z.characterize("x = 'text'"),
        Err(ZiggyError::Store(StoreError::TypeMismatch { .. }))
    ));
}

#[test]
fn degenerate_selections_are_typed_errors() {
    let t = tiny_table();
    let z = Ziggy::new(&t, ZiggyConfig::default());
    for query in ["x < 0", "x >= 0", "x < 3"] {
        match z.characterize(query) {
            Err(ZiggyError::DegenerateSelection { .. }) => {}
            other => panic!("{query:?} produced {other:?}"),
        }
    }
}

#[test]
fn all_constant_table_has_no_usable_columns() {
    let mut b = TableBuilder::new();
    b.add_numeric("c1", vec![5.0; 60]);
    b.add_numeric("c2", vec![7.0; 60]);
    b.add_numeric("key", (0..60).map(|i| i as f64).collect::<Vec<_>>());
    let t = b.build().unwrap();
    let z = Ziggy::new(&t, ZiggyConfig::default());
    // key is usable, the constants are not; the run succeeds and only
    // involves key.
    let report = z.characterize("key >= 40").unwrap();
    for v in &report.views {
        assert_eq!(v.view.names, vec!["key".to_string()]);
    }
}

#[test]
fn nan_heavy_columns_are_tolerated() {
    let mut b = TableBuilder::new();
    b.add_numeric("key", (0..200).map(|i| i as f64).collect::<Vec<_>>());
    // 90% NULLs, but the remaining values still split informatively.
    b.add_numeric(
        "sparse",
        (0..200)
            .map(|i| {
                if i % 10 == 0 {
                    if i >= 150 {
                        100.0
                    } else {
                        1.0
                    }
                } else {
                    f64::NAN
                }
            })
            .collect::<Vec<_>>(),
    );
    b.add_numeric(
        "dense",
        (0..200).map(|i| ((i * 13) % 29) as f64).collect::<Vec<_>>(),
    );
    let t = b.build().unwrap();
    let z = Ziggy::new(&t, ZiggyConfig::default());
    let report = z.characterize("key >= 150").unwrap();
    assert!(!report.views.is_empty());
}

#[test]
fn all_null_column_is_skipped_not_fatal() {
    let mut b = TableBuilder::new();
    b.add_numeric("key", (0..100).map(|i| i as f64).collect::<Vec<_>>());
    b.add_numeric("void", vec![f64::NAN; 100]);
    b.add_numeric(
        "ok",
        (0..100).map(|i| ((i * 7) % 13) as f64).collect::<Vec<_>>(),
    );
    let t = b.build().unwrap();
    let z = Ziggy::new(&t, ZiggyConfig::default());
    let report = z.characterize("key >= 80").unwrap();
    for v in &report.views {
        assert!(
            !v.view.names.contains(&"void".to_string()),
            "all-NULL column leaked into a view"
        );
    }
}

#[test]
fn single_numeric_column_table() {
    let mut b = TableBuilder::new();
    b.add_numeric("only", (0..100).map(|i| i as f64).collect::<Vec<_>>());
    let t = b.build().unwrap();
    let z = Ziggy::new(&t, ZiggyConfig::default());
    let report = z.characterize("only >= 50").unwrap();
    assert_eq!(report.views.len(), 1);
    assert_eq!(report.views[0].view.names, vec!["only".to_string()]);
}

#[test]
fn invalid_configs_rejected_before_work() {
    let t = tiny_table();
    for config in [
        ZiggyConfig {
            max_view_size: 0,
            ..Default::default()
        },
        ZiggyConfig {
            min_tightness: 2.0,
            ..Default::default()
        },
        ZiggyConfig {
            alpha: 0.0,
            ..Default::default()
        },
        ZiggyConfig {
            weights: Weights {
                mean: -1.0,
                ..Weights::default()
            },
            ..Default::default()
        },
    ] {
        let z = Ziggy::new(&t, config);
        assert!(matches!(
            z.characterize("x >= 25"),
            Err(ZiggyError::InvalidConfig(_))
        ));
    }
}

#[test]
fn categorical_only_table_works() {
    let mut b = TableBuilder::new();
    b.add_categorical(
        "group",
        (0..120)
            .map(|i| Some(if i >= 90 { "hot" } else { "cold" }))
            .collect::<Vec<_>>(),
    );
    b.add_categorical(
        "other",
        (0..120)
            .map(|i| Some(["a", "b", "c"][i % 3]))
            .collect::<Vec<_>>(),
    );
    let t = b.build().unwrap();
    let z = Ziggy::new(&t, ZiggyConfig::default());
    let report = z.characterize("group = 'hot'").unwrap();
    assert!(!report.views.is_empty());
    let top = report.best_view().unwrap();
    assert!(top.view.names.contains(&"group".to_string()));
}
