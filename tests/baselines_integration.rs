//! Integration tests pitting the baselines against the engine on planted
//! data — the code paths behind experiment T1, at debug-friendly scale.

use ziggy::baselines::clique::maximal_cliques;
use ziggy::baselines::exhaustive::{exhaustive_search, subset_count};
use ziggy::baselines::kl::{gaussian_kl_1d, kl_search};
use ziggy::baselines::pca::pca;
use ziggy::prelude::*;
use ziggy::store::eval::select;
use ziggy::store::StatsCache;
use ziggy_core::config::DependenceKind;
use ziggy_core::graph::{usable_columns, DependencyGraph};
use ziggy_core::prepare::prepare;
use ziggy_core::search::search;
use ziggy_stats::UniMoments;
use ziggy_synth::{evaluate_recovery, scaling_dataset};

#[test]
fn ziggy_dominates_pca_on_planted_data() {
    let d = scaling_dataset(800, 24, 5);
    let engine = Ziggy::new(
        &d.table,
        ZiggyConfig {
            max_views: 4,
            ..Default::default()
        },
    );
    let report = engine.characterize(&d.predicate).unwrap();
    let ziggy_views: Vec<Vec<String>> = report.views.iter().map(|v| v.view.names.clone()).collect();
    let p = pca(&d.table);
    let pca_views: Vec<Vec<String>> = (0..4)
        .map(|k| {
            p.top_loading_columns(k, 2)
                .into_iter()
                .map(|c| d.table.name(c).to_string())
                .collect()
        })
        .collect();
    let zq = evaluate_recovery(&ziggy_views, &d.planted, 0.5);
    let pq = evaluate_recovery(&pca_views, &d.planted, 0.5);
    assert!(
        zq.column_f1 >= pq.column_f1,
        "ziggy {zq:?} must dominate selection-blind pca {pq:?}"
    );
    assert!(zq.view_recall >= 0.5, "{zq:?}");
}

#[test]
fn kl_finds_the_same_hot_columns_but_no_explanation() {
    let d = scaling_dataset(800, 16, 9);
    let mask = select(&d.table, &d.predicate).unwrap();
    let cache = StatsCache::new(&d.table);
    let kl_views = kl_search(&d.table, &cache, &mask, 4, true);
    assert!(!kl_views.is_empty());
    // The top KL view involves at least one planted column.
    let planted_cols: Vec<usize> = d
        .planted
        .iter()
        .flat_map(|p| &p.columns)
        .filter_map(|name| d.table.index_of(name).ok())
        .collect();
    assert!(
        kl_views[0].columns.iter().any(|c| planted_cols.contains(c))
            || kl_views[0].columns.contains(&0), // driver also legitimate.
        "top KL view {:?} misses the signal",
        kl_views[0]
    );
}

#[test]
fn clique_candidates_plug_into_the_engine_search() {
    let d = scaling_dataset(600, 16, 3);
    let cache = StatsCache::new(&d.table);
    let mask = select(&d.table, &d.predicate).unwrap();
    let usable = usable_columns(&d.table);
    let graph = DependencyGraph::build(&cache, usable.clone(), DependenceKind::Pearson, 8).unwrap();
    let config = ZiggyConfig::default();
    let prepared = prepare(&cache, &mask, &usable, &config).unwrap();
    let cliques = maximal_cliques(&graph, config.min_tightness, 100_000).unwrap();
    assert!(!cliques.is_empty());
    let views = search(&cliques, &prepared, &config);
    assert!(!views.is_empty());
    // Clique-sourced views obey the same disjointness contract.
    let mut seen: Vec<usize> = Vec::new();
    for v in &views {
        for c in &v.columns {
            assert!(!seen.contains(c));
            seen.push(*c);
        }
    }
}

#[test]
fn exhaustive_agrees_with_engine_on_tiny_tables() {
    // At 8 columns and D = 2 the exhaustive search is exact; the engine's
    // clustering-pruned result must involve the same strongest signal.
    let d = scaling_dataset(500, 8, 11);
    let cache = StatsCache::new(&d.table);
    let mask = select(&d.table, &d.predicate).unwrap();
    assert!(subset_count(8, 2) <= 100);
    let exact = exhaustive_search(&d.table, &cache, &mask, 2, 1, 10_000).unwrap();
    let engine = Ziggy::new(&d.table, ZiggyConfig::default());
    let report = engine.characterize(&d.predicate).unwrap();
    let engine_cols: Vec<usize> = report
        .views
        .iter()
        .flat_map(|v| v.view.columns.clone())
        .collect();
    // The exhaustive optimum's columns appear among the engine's views.
    let covered = exact[0]
        .columns
        .iter()
        .filter(|c| engine_cols.contains(c))
        .count();
    assert!(
        covered >= 1,
        "engine views {engine_cols:?} miss the exhaustive optimum {:?}",
        exact[0]
    );
}

#[test]
fn kl_divergence_consistent_with_effect_sizes() {
    // Both KL and Hedges' g must rank a strong shift above a weak one.
    let base: Vec<f64> = (0..500).map(|i| ((i * 13) % 41) as f64).collect();
    let weak: Vec<f64> = base.iter().map(|v| v + 3.0).collect();
    let strong: Vec<f64> = base.iter().map(|v| v + 30.0).collect();
    let mb = UniMoments::from_slice(&base);
    let mw = UniMoments::from_slice(&weak);
    let ms = UniMoments::from_slice(&strong);
    let kl_weak = gaussian_kl_1d(&mw, &mb).unwrap();
    let kl_strong = gaussian_kl_1d(&ms, &mb).unwrap();
    assert!(kl_strong > kl_weak);
    let g_weak = ziggy_stats::hedges_g(&mw, &mb).unwrap().value;
    let g_strong = ziggy_stats::hedges_g(&ms, &mb).unwrap().value;
    assert!(g_strong > g_weak);
}

#[test]
fn sampled_table_preserves_the_verdict() {
    // BlinkDB-style: the same top view should win on a 50% sample.
    let d = scaling_dataset(2_000, 16, 21);
    let full_engine = Ziggy::new(&d.table, ZiggyConfig::default());
    let full = full_engine.characterize(&d.predicate).unwrap();
    let sample = d.table.sample_rows(0.5, 99);
    let sample_engine = Ziggy::new(&sample, ZiggyConfig::default());
    let sampled = sample_engine.characterize(&d.predicate).unwrap();
    let top_full = &full.best_view().unwrap().view.names;
    let top_sampled = &sampled.best_view().unwrap().view.names;
    assert_eq!(top_full, top_sampled, "sampling flipped the top view");
}
