//! Integration tests spanning store → stats → cluster → core: the whole
//! characterization pipeline driven through the public facade.

use ziggy::prelude::*;
use ziggy::store::csv::{read_csv_str, CsvOptions};
use ziggy::store::eval::select;
use ziggy_core::DependenceKind;
use ziggy_stats::Aggregation;

/// A compact CSV with two planted phenomena: `alpha`/`beta` correlated
/// and shifted for large `key`, `kind` flipping category.
fn demo_csv() -> String {
    let mut csv = String::from("key,alpha,beta,gamma,kind\n");
    for i in 0..300 {
        let sel = i >= 240;
        let noise = ((i * 13) % 7) as f64 * 0.3;
        let alpha = if sel { 50.0 } else { 10.0 } + noise;
        let beta = alpha * 1.5 + ((i * 31) % 5) as f64 * 0.2;
        let gamma = ((i * 7919) % 83) as f64;
        let kind = if sel { "hot" } else { ["cold", "mild"][i % 2] };
        csv.push_str(&format!("{i},{alpha},{beta},{gamma},{kind}\n"));
    }
    csv
}

#[test]
fn csv_to_views_end_to_end() {
    let table = read_csv_str(&demo_csv(), &CsvOptions::default()).unwrap();
    assert_eq!(table.n_rows(), 300);
    let engine = Ziggy::new(&table, ZiggyConfig::default());
    let report = engine.characterize("key >= 240").unwrap();
    assert_eq!(report.n_inside, 60);
    let top = report.best_view().unwrap();
    assert!(
        top.view.names.contains(&"alpha".to_string())
            || top.view.names.contains(&"beta".to_string()),
        "top view should capture the planted pair: {:?}",
        top.view
    );
    assert!(top.robustness_p < 1e-6);
}

#[test]
fn report_survives_json_round_trip() {
    let table = read_csv_str(&demo_csv(), &CsvOptions::default()).unwrap();
    let engine = Ziggy::new(&table, ZiggyConfig::default());
    let report = engine.characterize("key >= 240").unwrap();
    let json = serde_json::to_string_pretty(&report).unwrap();
    let back: CharacterizationReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back, report);
}

#[test]
fn all_dependence_kinds_agree_on_the_planted_pair() {
    let table = read_csv_str(&demo_csv(), &CsvOptions::default()).unwrap();
    for dependence in [
        DependenceKind::Pearson,
        DependenceKind::Spearman,
        DependenceKind::MutualInformation,
    ] {
        let config = ZiggyConfig {
            dependence,
            ..ZiggyConfig::default()
        };
        let engine = Ziggy::new(&table, config);
        let report = engine.characterize("key >= 240").unwrap();
        // The exact pairing can differ per measure (eta may beat the
        // numeric dependence), but the planted columns must surface among
        // the significant views.
        let covered: Vec<String> = report
            .views
            .iter()
            .filter(|v| v.robustness_p < 0.01)
            .flat_map(|v| v.view.names.clone())
            .collect();
        assert!(
            covered.contains(&"alpha".to_string()) && covered.contains(&"beta".to_string()),
            "{dependence:?} missed the planted columns: {covered:?}"
        );
    }
}

#[test]
fn aggregation_schemes_order_correctly() {
    let table = read_csv_str(&demo_csv(), &CsvOptions::default()).unwrap();
    let run = |agg: Aggregation| -> f64 {
        let config = ZiggyConfig {
            aggregation: agg,
            ..ZiggyConfig::default()
        };
        let engine = Ziggy::new(&table, config);
        let report = engine.characterize("key >= 240").unwrap();
        report.best_view().unwrap().robustness_p
    };
    let min_p = run(Aggregation::MinP);
    let bonf = run(Aggregation::BonferroniMin);
    assert!(bonf >= min_p, "Bonferroni must be at least as conservative");
}

#[test]
fn weights_redirect_the_ranking() {
    let table = read_csv_str(&demo_csv(), &CsvOptions::default()).unwrap();
    // Frequency-only weights: the categorical column must win.
    let config = ZiggyConfig {
        weights: Weights {
            mean: 0.0,
            dispersion: 0.0,
            correlation: 0.0,
            frequency: 1.0,
            shape: 0.0,
        },
        ..ZiggyConfig::default()
    };
    let engine = Ziggy::new(&table, config);
    let report = engine.characterize("key >= 240").unwrap();
    // With frequency-only weights, the only positively scored view is the
    // one containing the categorical column.
    let top = report.best_view().unwrap();
    assert!(
        top.view.names.contains(&"kind".to_string()),
        "{:?}",
        report.views
    );
    assert!(top.score > 0.0);
    for v in report.views.iter().skip(1) {
        assert!(v.score <= top.score);
        if !v.view.names.contains(&"kind".to_string()) {
            assert_eq!(v.score, 0.0, "numeric-only views must score zero");
        }
    }
}

#[test]
fn mask_api_equals_query_api() {
    let table = read_csv_str(&demo_csv(), &CsvOptions::default()).unwrap();
    let engine = Ziggy::new(&table, ZiggyConfig::default());
    let mask = select(&table, "key >= 240").unwrap();
    let a = engine.characterize("key >= 240").unwrap();
    let b = engine.characterize_mask(&mask, "key >= 240").unwrap();
    assert_eq!(a.views.len(), b.views.len());
    for (x, y) in a.views.iter().zip(&b.views) {
        assert_eq!(x.view, y.view);
    }
}

#[test]
fn views_respect_all_constraints() {
    let table = read_csv_str(&demo_csv(), &CsvOptions::default()).unwrap();
    let config = ZiggyConfig {
        max_view_size: 2,
        min_tightness: 0.3,
        max_views: 3,
        ..Default::default()
    };
    let engine = Ziggy::new(&table, config.clone());
    let report = engine.characterize("key >= 240").unwrap();
    assert!(report.views.len() <= config.max_views);
    let mut used: Vec<usize> = Vec::new();
    for v in &report.views {
        assert!(v.view.len() <= config.max_view_size, "size bound violated");
        assert!(
            v.tightness >= config.min_tightness - 1e-9,
            "tightness violated"
        );
        for c in &v.view.columns {
            assert!(!used.contains(c), "disjointness violated");
            used.push(*c);
        }
    }
}

#[test]
fn explanations_match_component_directions() {
    let table = read_csv_str(&demo_csv(), &CsvOptions::default()).unwrap();
    let engine = Ziggy::new(&table, ZiggyConfig::default());
    let report = engine.characterize("key >= 240").unwrap();
    // alpha/beta shift upward: any view containing them must say "high".
    for v in &report.views {
        if v.view.names.contains(&"alpha".to_string()) {
            let text = v.explanation.sentences.join(" ");
            assert!(
                text.contains("particularly high values"),
                "wrong direction in: {text}"
            );
        }
    }
}

#[test]
fn interface_snapshot_renders_from_facade() {
    let table = read_csv_str(&demo_csv(), &CsvOptions::default()).unwrap();
    let engine = Ziggy::new(&table, ZiggyConfig::default());
    let report = engine.characterize("key >= 240").unwrap();
    let mask = select(&table, "key >= 240").unwrap();
    let ui = ziggy::core::render::render_interface(&table, &mask, &report);
    assert!(ui.contains("Input query"));
    assert!(ui.contains("VIEWS"));
    assert!(ui.contains("EXPLANATIONS"));
}
