//! End-to-end smoke test: Ziggy recovers the planted Figure-1 themes on
//! the US Crime twin.

use ziggy::prelude::*;
use ziggy_synth::{evaluate_recovery, us_crime};

#[test]
fn crime_twin_views_recovered() {
    let d = us_crime(7);
    let config = ZiggyConfig {
        max_views: 8,
        ..ZiggyConfig::default()
    };
    let z = Ziggy::new(&d.table, config);
    let report = z.characterize(&d.predicate).unwrap();
    assert!(!report.views.is_empty());
    let discovered: Vec<Vec<String>> = report.views.iter().map(|v| v.view.names.clone()).collect();
    let q = evaluate_recovery(&discovered, &d.planted, 0.5);
    eprintln!("discovered: {discovered:?}");
    eprintln!("quality: {q:?}");
    assert!(q.view_recall >= 0.5, "view recall too low: {q:?}");
}
