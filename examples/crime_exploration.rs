//! The paper's running example: exploring the US Crime dataset.
//!
//! Recreates the Figure-1 experience end to end: select the cities with
//! the highest crime index, let Ziggy find the characteristic views, and
//! render them as ASCII scatter plots with explanations. Also prints the
//! dependency dendrogram — the paper's visual aid for tuning MIN_tight.
//!
//! Run with: `cargo run --release --example crime_exploration`

use ziggy::core::render::ascii_scatter;
use ziggy::prelude::*;
use ziggy::store::eval::select;
use ziggy::synth::us_crime;

fn main() {
    let dataset = us_crime(7);
    println!(
        "US Crime twin: {} communities x {} indicators",
        dataset.table.n_rows(),
        dataset.table.n_cols()
    );
    println!("selection: {}\n", dataset.predicate);

    let config = ZiggyConfig {
        max_views: 4,
        max_view_size: 2,
        ..ZiggyConfig::default()
    };
    let engine = Ziggy::new(&dataset.table, config);

    let report = engine
        .characterize(&dataset.predicate)
        .expect("characterization succeeds");
    let mask = select(&dataset.table, &dataset.predicate).expect("predicate evaluates");

    for (i, v) in report.views.iter().enumerate() {
        println!("── View {} ─ {} (score {:.3}) ──", i + 1, v.view, v.score);
        if v.view.columns.len() >= 2 {
            println!(
                "{}",
                ascii_scatter(
                    &dataset.table,
                    &mask,
                    v.view.columns[0],
                    v.view.columns[1],
                    56,
                    14
                )
            );
        }
        for s in &v.explanation.sentences {
            println!("  {s}");
        }
        println!();
    }

    // The dendrogram helps users pick MIN_tight (paper §3): show the top
    // merges only, to stay readable at 125 columns.
    let dendrogram = engine.dependency_dendrogram().expect("dendrogram renders");
    println!("column-dependency dendrogram (last 12 merges):");
    let lines: Vec<&str> = dendrogram.lines().collect();
    for line in lines.iter().rev().take(12).rev() {
        println!("{line}");
    }
}
