//! Quickstart: build a small table, run one query through Ziggy, and
//! print the characteristic views with their explanations.
//!
//! Run with: `cargo run --release --example quickstart`

use ziggy::prelude::*;

fn main() {
    // A toy "cities" table: the first three columns form two correlated
    // themes; `rainfall` is unrelated noise.
    let n = 500usize;
    let noise = |i: usize, k: usize| ((i * (13 + 7 * k)) % 17) as f64 * 0.4;
    let is_big = |i: usize| i >= 400;

    let mut b = TableBuilder::new();
    b.add_numeric(
        "crime_index",
        (0..n)
            .map(|i| if is_big(i) { 80.0 } else { 20.0 } + noise(i, 0))
            .collect::<Vec<_>>(),
    );
    b.add_numeric(
        "population",
        (0..n)
            .map(|i| if is_big(i) { 900.0 } else { 200.0 } + noise(i, 1) * 30.0)
            .collect::<Vec<_>>(),
    );
    b.add_numeric(
        "density",
        (0..n)
            .map(|i| {
                let pop = if is_big(i) { 900.0 } else { 200.0 } + noise(i, 1) * 30.0;
                pop * 2.1 + noise(i, 2)
            })
            .collect::<Vec<_>>(),
    );
    b.add_numeric(
        "rainfall",
        (0..n)
            .map(|i| ((i * 7919) % 100) as f64)
            .collect::<Vec<_>>(),
    );
    b.add_categorical(
        "coastal",
        (0..n)
            .map(|i| Some(if is_big(i) || i % 4 == 0 { "yes" } else { "no" }))
            .collect::<Vec<_>>(),
    );
    let table = b.build().expect("table builds");

    // Ask Ziggy why the high-crime cities are special.
    let engine = Ziggy::new(&table, ZiggyConfig::default());
    let report = engine
        .characterize("crime_index >= 50")
        .expect("characterization succeeds");

    println!("query      : {}", report.query);
    println!(
        "selection  : {} of {} rows ({:.0}%)\n",
        report.n_inside,
        report.n_inside + report.n_outside,
        report.selectivity() * 100.0
    );
    for (rank, v) in report.views.iter().enumerate() {
        println!(
            "#{} view {}  score={:.3}  robustness p={:.1e}",
            rank + 1,
            v.view,
            v.score,
            v.robustness_p
        );
        for sentence in &v.explanation.sentences {
            println!("   {sentence}");
        }
        println!();
    }
}
