//! Side-by-side: Ziggy vs the black-box baselines on planted data.
//!
//! The paper's argument in one screen: all methods can locate shifted
//! columns, but only Ziggy groups them into tight views *and explains
//! them*. Recovery quality is measured against the planted ground truth.
//!
//! Run with: `cargo run --release --example baseline_comparison`

use ziggy::baselines::beam::beam_search;
use ziggy::baselines::centroid::centroid_search;
use ziggy::baselines::kl::kl_search;
use ziggy::baselines::pca::pca;
use ziggy::prelude::*;
use ziggy::store::eval::select;
use ziggy::store::StatsCache;
use ziggy::synth::{evaluate_recovery, us_crime};

fn main() {
    let d = us_crime(7);
    let mask = select(&d.table, &d.predicate).expect("predicate evaluates");
    let cache = StatsCache::new(&d.table);
    let names = |cols: &[usize]| -> Vec<String> {
        cols.iter().map(|&c| d.table.name(c).to_string()).collect()
    };

    println!("dataset: US Crime twin, query: {}\n", d.predicate);

    // Ziggy.
    let engine = Ziggy::new(
        &d.table,
        ZiggyConfig {
            max_views: 6,
            ..Default::default()
        },
    );
    let report = engine.characterize(&d.predicate).expect("ziggy run");
    let ziggy_views: Vec<Vec<String>> = report.views.iter().map(|v| v.view.names.clone()).collect();
    println!("ZIGGY:");
    for v in &report.views {
        println!(
            "  {}  — {}",
            v.view,
            v.explanation
                .sentences
                .first()
                .map(String::as_str)
                .unwrap_or("")
        );
    }

    // Baselines (no tightness, no explanations).
    let kl: Vec<Vec<String>> = kl_search(&d.table, &cache, &mask, 6, true)
        .iter()
        .map(|v| names(&v.columns))
        .collect();
    let cen: Vec<Vec<String>> = centroid_search(&d.table, &cache, &mask, 6, true)
        .iter()
        .map(|v| names(&v.columns))
        .collect();
    let beam: Vec<Vec<String>> = beam_search(&d.table, &cache, &mask, 2, 8, 6)
        .iter()
        .map(|v| names(&v.columns))
        .collect();
    let p = pca(&d.table);
    let pca_views: Vec<Vec<String>> = (0..6)
        .map(|k| names(&p.top_loading_columns(k, 2)))
        .collect();

    for (label, views) in [
        ("KL (Gaussian, pairwise)", &kl),
        ("Centroid distance", &cen),
        ("Beam search (w=8)", &beam),
        ("PCA top loadings", &pca_views),
    ] {
        println!("\n{label}:");
        for v in views {
            println!("  {{{}}}  — (no explanation available)", v.join(", "));
        }
    }

    println!("\nrecovery vs planted ground truth (column F1 / view recall):");
    for (label, views) in [
        ("ziggy", &ziggy_views),
        ("kl", &kl),
        ("centroid", &cen),
        ("beam", &beam),
        ("pca", &pca_views),
    ] {
        let q = evaluate_recovery(views, &d.planted, 0.5);
        println!(
            "  {label:<10} F1 {:.2}   view recall {:.2}",
            q.column_f1, q.view_recall
        );
    }
}
