//! Exploring the widest twin: Countries & Innovation (6823 x 519).
//!
//! Demonstrates the engine at the paper's largest scale, the weight
//! mechanism ("explorers can express their preference for one type of
//! difference over the others"), and the cross-query moment cache.
//!
//! Run with: `cargo run --release --example innovation_exploration`

use std::time::Instant;

use ziggy::prelude::*;
use ziggy::synth::oecd_innovation;

fn show(report: &CharacterizationReport, label: &str) {
    println!("── {label} ──");
    println!(
        "query {} → {} rows inside, prep {} us / search {} us / post {} us",
        report.query,
        report.n_inside,
        report.timings.preparation_us,
        report.timings.view_search_us,
        report.timings.post_processing_us
    );
    for (i, v) in report.views.iter().take(5).enumerate() {
        println!("  {}. {}  score={:.3}", i + 1, v.view, v.score);
        if let Some(s) = v.explanation.sentences.first() {
            println!("     {s}");
        }
    }
    println!();
}

fn main() {
    let t0 = Instant::now();
    let dataset = oecd_innovation(7);
    println!(
        "generated {}x{} twin in {:.1}s\n",
        dataset.table.n_rows(),
        dataset.table.n_cols(),
        t0.elapsed().as_secs_f64()
    );

    // Default weights: all component families count equally.
    let engine = Ziggy::new(
        &dataset.table,
        ZiggyConfig {
            max_views: 6,
            ..Default::default()
        },
    );
    let report = engine
        .characterize(&dataset.predicate)
        .expect("characterization succeeds");
    show(&report, "balanced weights");

    // A second query on the same engine reuses the whole-table cache —
    // the bottom quantile this time.
    let inverse_query = format!("{} <= {}", dataset.spec.driver, dataset.threshold);
    let t1 = Instant::now();
    let second = engine
        .characterize(&inverse_query)
        .expect("second query succeeds");
    println!(
        "second query wall time (cache warm): {:.2}s\n",
        t1.elapsed().as_secs_f64()
    );
    show(&second, "inverse selection");

    // Structure-heavy weights: prioritize correlation changes.
    let structural = Ziggy::new(
        &dataset.table,
        ZiggyConfig {
            weights: Weights::structure_heavy(),
            max_views: 6,
            ..Default::default()
        },
    );
    let report = structural
        .characterize(&dataset.predicate)
        .expect("characterization succeeds");
    show(&report, "structure-heavy weights (correlation x2)");
}
