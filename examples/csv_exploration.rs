//! Bring-your-own-data: load a CSV, pick a predicate, get views.
//!
//! Usage:
//! ```text
//! cargo run --release --example csv_exploration -- data.csv "price > 100"
//! ```
//! Without arguments, writes a demo CSV to a temp file and explores it —
//! exercising the full path a downstream user would take: CSV → type
//! inference → predicate → characteristic views → interface snapshot.

use ziggy::core::render::render_interface;
use ziggy::prelude::*;
use ziggy::store::csv::{read_csv_path, write_csv_string, CsvOptions};
use ziggy::store::eval::select;
use ziggy::synth::box_office;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (path, query) = if args.len() >= 3 {
        (args[1].clone(), args[2].clone())
    } else {
        // No input given: materialize the Box Office twin as a CSV so the
        // example is runnable out of the box.
        let d = box_office(7);
        let csv = write_csv_string(&d.table, ',');
        let path = std::env::temp_dir().join("ziggy_box_office_demo.csv");
        std::fs::write(&path, csv).expect("demo CSV written");
        println!(
            "(no arguments — wrote a demo dataset to {})\n",
            path.display()
        );
        (path.display().to_string(), d.predicate)
    };

    let table = match read_csv_path(&path, &CsvOptions::default()) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot load {path}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "loaded {}: {} rows, {} columns ({} numeric, {} categorical)\n",
        path,
        table.n_rows(),
        table.n_cols(),
        table.numeric_indices().len(),
        table.categorical_indices().len()
    );

    let engine = Ziggy::new(&table, ZiggyConfig::default());
    match engine.characterize(&query) {
        Ok(report) => {
            let mask = select(&table, &query).expect("query already validated");
            print!("{}", render_interface(&table, &mask, &report));
        }
        Err(e) => {
            eprintln!("characterization failed: {e}");
            std::process::exit(1);
        }
    }
}
