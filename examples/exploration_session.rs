//! Trial-and-error exploration with session diffs.
//!
//! The paper's loop — "write a query, inspect the results and refine the
//! specifications accordingly" — driven through the ExplorationSession
//! API: each refinement reports what changed relative to the previous
//! step, and the engine's caches make the follow-up queries cheaper.
//!
//! Run with: `cargo run --release --example exploration_session`

use ziggy::core::ExplorationSession;
use ziggy::prelude::*;
use ziggy::synth::us_crime;

fn main() {
    let dataset = us_crime(7);
    // Work on a 50% sample first — the BlinkDB-style latency trade.
    let sample = dataset.table.sample_rows(0.5, 42);
    println!(
        "exploring a {}-row sample of the {}-row crime twin\n",
        sample.n_rows(),
        dataset.table.n_rows()
    );

    let engine = Ziggy::new(
        &sample,
        ZiggyConfig {
            max_views: 4,
            ..Default::default()
        },
    );
    let mut session = ExplorationSession::new(engine);

    // Derive refinement thresholds from the data itself.
    let quantile_of = |col: &str, q: f64| -> f64 {
        let idx = sample.index_of(col).expect("column exists");
        ziggy::stats::describe::quantile(sample.numeric(idx).expect("numeric"), q)
            .expect("quantile computable")
    };
    let pop_median = quantile_of("population_size", 0.5);
    let boarded_q90 = quantile_of("pct_boarded_windows", 0.9);
    let queries = [
        // Step 1: the paper's seed query — top crime communities.
        dataset.predicate.clone(),
        // Step 2: refine — only the larger communities among them.
        format!("{} AND population_size >= {pop_median}", dataset.predicate),
        // Step 3: pivot to the surprise predictor's own top decile.
        format!("pct_boarded_windows >= {boarded_q90}"),
    ];
    for (step, query) in queries.iter().enumerate() {
        match session.explore(query) {
            Ok((report, diff)) => {
                println!("step {} — {}", step + 1, report.query);
                for v in report.views.iter().take(3) {
                    println!(
                        "   {}  score={:.3}  p={:.1e}",
                        v.view, v.score, v.robustness_p
                    );
                }
                if let Some(diff) = diff {
                    println!("   vs previous step: {diff}");
                }
                println!();
            }
            Err(e) => println!("step {} failed: {e}\n", step + 1),
        }
    }
    println!("history: {} successful steps recorded", session.len());
}
