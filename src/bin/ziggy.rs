//! The `ziggy` binary: interactive REPL (default) or HTTP service.
//!
//! ```text
//! ziggy                  # REPL, the terminal counterpart of the demo
//! ziggy repl             # same, explicitly
//! ziggy serve            # HTTP JSON API on 127.0.0.1:8080
//! ziggy serve --addr 0.0.0.0:9000 --threads 8 --demo
//! ```

use std::io::{BufRead, Write};

use ziggy::repl::{ReplAction, ReplState};
use ziggy::serve::{serve, ServeOptions};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("repl") => run_repl(),
        Some("serve") => run_serve(&args[1..]),
        Some("help") | Some("-h") | Some("--help") => print_usage(),
        Some(other) => {
            eprintln!("unknown command: {other}\n");
            print_usage();
            std::process::exit(2);
        }
    }
}

fn print_usage() {
    println!(
        "usage: ziggy [COMMAND]\n\n\
         commands:\n  \
         repl                     interactive exploration REPL (default)\n  \
         serve [OPTIONS]          run the HTTP characterization service\n  \
         help                     this text\n\n\
         serve options:\n  \
         --addr ADDR              bind address (default 127.0.0.1:8080)\n  \
         --threads N              worker threads (default: available parallelism)\n  \
         --demo                   preload the crime synthetic twin as table `crime`"
    );
}

fn run_repl() {
    println!("Ziggy — characterizing query results for data explorers");
    println!("type `help` for commands, `demo crime` for a dataset.\n");
    let mut state = ReplState::new();
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    loop {
        print!("ziggy> ");
        let _ = stdout.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF.
            Ok(_) => match state.handle(&line) {
                ReplAction::Continue(out) => {
                    if !out.is_empty() {
                        println!("{out}");
                    }
                }
                ReplAction::Quit => break,
            },
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
    }
}

fn run_serve(args: &[String]) {
    let mut addr = "127.0.0.1:8080".to_string();
    let mut options = ServeOptions::default();
    let mut demo = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => match it.next() {
                Some(a) => addr = a.clone(),
                None => die("--addr needs a value"),
            },
            "--threads" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => options.threads = n,
                _ => die("--threads needs a positive integer"),
            },
            "--demo" => demo = true,
            other => die(&format!("unknown serve option: {other}")),
        }
    }

    let server = match serve(&addr[..], options) {
        Ok(s) => s,
        Err(e) => die(&format!("cannot bind {addr}: {e}")),
    };
    if demo {
        let twin = ziggy::synth::us_crime(7);
        match server.state().registry.insert_table(
            "crime",
            twin.table,
            server.state().config.clone(),
        ) {
            Ok(entry) => println!(
                "preloaded table `crime` ({} rows x {} cols); try: {}",
                entry.table().n_rows(),
                entry.table().n_cols(),
                twin.predicate
            ),
            Err(e) => eprintln!("demo preload failed: {e}"),
        }
    }
    println!("ziggy-serve listening on http://{}", server.local_addr());
    println!("endpoints: /healthz /metrics /tables /tables/{{name}}[/characterize] /sessions /sessions/{{id}}[/step]");
    // Serve until the process is terminated.
    loop {
        std::thread::park();
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
