//! Interactive Ziggy REPL — the terminal counterpart of the paper's demo.
//!
//! ```text
//! cargo run --release --bin ziggy
//! ziggy> demo crime
//! ziggy> query violent_crime_rate >= 75
//! ziggy> show 1
//! ```

use std::io::{BufRead, Write};

use ziggy::repl::{ReplAction, ReplState};

fn main() {
    println!("Ziggy — characterizing query results for data explorers");
    println!("type `help` for commands, `demo crime` for a dataset.\n");
    let mut state = ReplState::new();
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    loop {
        print!("ziggy> ");
        let _ = stdout.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF.
            Ok(_) => match state.handle(&line) {
                ReplAction::Continue(out) => {
                    if !out.is_empty() {
                        println!("{out}");
                    }
                }
                ReplAction::Quit => break,
            },
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
    }
}
