//! The `ziggy` binary: interactive REPL (default), HTTP service, or a
//! local sharded fleet.
//!
//! ```text
//! ziggy                  # REPL, the terminal counterpart of the demo
//! ziggy repl             # same, explicitly
//! ziggy serve            # HTTP JSON API on 127.0.0.1:8080
//! ziggy serve --addr 0.0.0.0:9000 --threads 8 --demo --access-log
//! ziggy fleet --backends 4 --replication 2   # router + 4 local shards
//! ```

use std::io::{BufRead, Write};

use ziggy::fleet::{start_fleet, BackendProcess, FleetOptions};
use ziggy::repl::{ReplAction, ReplState};
use ziggy::serve::{serve, ServeOptions};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("repl") => run_repl(),
        Some("serve") => run_serve(&args[1..]),
        Some("fleet") => run_fleet(&args[1..]),
        Some("help") | Some("-h") | Some("--help") => print_usage(),
        Some(other) => {
            eprintln!("unknown command: {other}\n");
            print_usage();
            std::process::exit(2);
        }
    }
}

fn print_usage() {
    println!(
        "usage: ziggy [COMMAND]\n\n\
         commands:\n  \
         repl                     interactive exploration REPL (default)\n  \
         serve [OPTIONS]          run the HTTP characterization service\n  \
         fleet [OPTIONS]          spawn N local backends plus a sharding router\n  \
         help                     this text\n\n\
         serve options:\n  \
         --addr ADDR              bind address (default 127.0.0.1:8080)\n  \
         --threads N              worker threads (default: available parallelism)\n  \
         --demo                   preload the crime synthetic twin as table `crime`\n  \
         --access-log             one JSON access-log line per request on stderr\n  \
         --access-log-file PATH   append access-log lines to PATH instead of stderr\n  \
         --rate-limit N           per-client token bucket: N req/s (default: off)\n  \
         --session-ttl SECS       evict sessions idle past SECS (default 3600, 0 = off)\n  \
         --port-file PATH         write the bound address to PATH once listening\n  \
         --data-dir PATH          durability tier: WAL + snapshots in PATH, replayed on boot\n  \
         --durability MODE        fsync | batch | async (default batch; needs --data-dir)\n  \
         --snapshot-every N       snapshot + compact every N records (default 256)\n  \
         --slow-ms MS             slow-query threshold: pin + log traces at/past MS (default 250)\n\n\
         fleet options:\n  \
         --addr ADDR              router bind address (default 127.0.0.1:8080)\n  \
         --backends N             local ziggy-serve processes to spawn (default 2)\n  \
         --replication R          replicas per table (default 2, capped to live members)\n  \
         --threads N              router worker threads\n  \
         --access-log             access log (with backend ids) on stderr\n  \
         --access-log-file PATH   append access-log lines to PATH instead of stderr\n  \
         --rate-limit N           per-client rate limit at the router edge\n  \
         --repair-interval SECS   self-healing replication cadence (default 0.5, 0 = off)\n  \
         --no-restart             report dead backends instead of restart-with-rejoin\n  \
         --demo                   preload the crime synthetic twin as table `crime`\n  \
         --data-dir PATH          per-backend durability: each shard logs to PATH/<id>\n  \
         --durability MODE        fsync | batch | async for every backend (default batch)\n  \
         --snapshot-every N       per-backend snapshot cadence (default 256)\n  \
         --slow-ms MS             slow-query threshold for router and backends (default 250)\n\n\
         the fleet router also serves POST /admin/backends {{\"id\",\"addr\"}} and\n\
         DELETE /admin/backends/{{id}} to grow/shrink the ring at runtime."
    );
}

fn run_repl() {
    println!("Ziggy — characterizing query results for data explorers");
    println!("type `help` for commands, `demo crime` for a dataset.\n");
    let mut state = ReplState::new();
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    loop {
        print!("ziggy> ");
        let _ = stdout.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF.
            Ok(_) => match state.handle(&line) {
                ReplAction::Continue(out) => {
                    if !out.is_empty() {
                        println!("{out}");
                    }
                }
                ReplAction::Quit => break,
            },
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
    }
}

fn run_serve(args: &[String]) {
    let mut addr = "127.0.0.1:8080".to_string();
    let mut options = ServeOptions::default();
    let mut demo = false;
    let mut port_file: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => match it.next() {
                Some(a) => addr = a.clone(),
                None => die("--addr needs a value"),
            },
            "--threads" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => options.threads = n,
                _ => die("--threads needs a positive integer"),
            },
            "--demo" => demo = true,
            "--access-log" => options.access_log = true,
            "--access-log-file" => match it.next() {
                Some(p) => options.access_log_path = Some(std::path::PathBuf::from(p)),
                None => die("--access-log-file needs a path"),
            },
            "--rate-limit" => match it.next().and_then(|v| v.parse::<u32>().ok()) {
                Some(n) if n > 0 => options.rate_limit = Some(n),
                _ => die("--rate-limit needs a positive integer (requests/second)"),
            },
            "--session-ttl" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(0) => options.session_ttl = None,
                Some(secs) => options.session_ttl = Some(std::time::Duration::from_secs(secs)),
                None => die("--session-ttl needs a number of seconds (0 disables)"),
            },
            "--port-file" => match it.next() {
                Some(p) => port_file = Some(p.clone()),
                None => die("--port-file needs a path"),
            },
            "--data-dir" => match it.next() {
                Some(p) => options.data_dir = Some(std::path::PathBuf::from(p)),
                None => die("--data-dir needs a path"),
            },
            "--durability" => match it.next().map(|v| v.parse()) {
                Some(Ok(mode)) => options.durability = mode,
                _ => die("--durability needs one of: fsync, batch, async"),
            },
            "--snapshot-every" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) if n > 0 => options.snapshot_every = n,
                _ => die("--snapshot-every needs a positive integer"),
            },
            "--slow-ms" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(ms) if ms > 0 => options.slow_ms = ms,
                _ => die("--slow-ms needs a positive integer (milliseconds)"),
            },
            other => die(&format!("unknown serve option: {other}")),
        }
    }

    let server = match serve(&addr[..], options) {
        Ok(s) => s,
        Err(e) => die(&format!("cannot bind {addr}: {e}")),
    };
    if demo {
        preload_demo(server.state());
    }
    if let Some(path) = port_file {
        // The handshake the fleet supervisor (and tests) wait on; write
        // only after the listener is live so a reader can connect
        // immediately.
        if let Err(e) = std::fs::write(&path, server.local_addr().to_string()) {
            die(&format!("cannot write port file {path}: {e}"));
        }
    }
    println!("ziggy-serve listening on http://{}", server.local_addr());
    println!("endpoints: /healthz /metrics /tables /tables/{{name}}[/characterize] /sessions /sessions/{{id}}[/step] /debug/traces[/{{id}}]");
    // Serve until the process is terminated.
    loop {
        std::thread::park();
    }
}

fn preload_demo(state: &ziggy::serve::ServeState) {
    // Go through the CSV ingest path (not `insert_table`) so the demo
    // table gets provenance: it lands in the WAL under `--data-dir`,
    // exports via `/csv`, and is repairable. `replicate_csv` makes a
    // restart with both `--data-dir` and `--demo` idempotent — the
    // replayed copy fingerprints identically to the fresh render.
    let twin = ziggy::synth::us_crime(7);
    let csv = ziggy::store::csv::write_csv_string(&twin.table, ',');
    match state
        .registry
        .replicate_csv("crime", &csv, state.config.clone())
    {
        Ok((entry, _created)) => println!(
            "preloaded table `crime` ({} rows x {} cols); try: {}",
            entry.table().n_rows(),
            entry.table().n_cols(),
            twin.predicate
        ),
        Err(e) => eprintln!("demo preload failed: {e}"),
    }
}

fn run_fleet(args: &[String]) {
    let mut addr = "127.0.0.1:8080".to_string();
    let mut backends = 2usize;
    let mut options = FleetOptions::default();
    let mut demo = false;
    let mut restart = true;
    let mut data_dir: Option<std::path::PathBuf> = None;
    let mut durability: Option<String> = None;
    let mut snapshot_every: Option<u64> = None;
    let mut slow_ms: Option<u64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => match it.next() {
                Some(a) => addr = a.clone(),
                None => die("--addr needs a value"),
            },
            "--backends" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => backends = n,
                _ => die("--backends needs a positive integer"),
            },
            "--replication" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(r) if r > 0 => options.replication = r,
                _ => die("--replication needs a positive integer"),
            },
            "--threads" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => options.threads = n,
                _ => die("--threads needs a positive integer"),
            },
            "--access-log" => options.access_log = true,
            "--access-log-file" => match it.next() {
                Some(p) => options.access_log_path = Some(std::path::PathBuf::from(p)),
                None => die("--access-log-file needs a path"),
            },
            "--rate-limit" => match it.next().and_then(|v| v.parse::<u32>().ok()) {
                Some(n) if n > 0 => options.rate_limit = Some(n),
                _ => die("--rate-limit needs a positive integer (requests/second)"),
            },
            "--repair-interval" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(0.0) => options.repair_interval = None,
                Some(secs) if secs > 0.0 => {
                    options.repair_interval = Some(std::time::Duration::from_secs_f64(secs))
                }
                _ => die("--repair-interval needs a number of seconds (0 disables)"),
            },
            "--no-restart" => restart = false,
            "--demo" => demo = true,
            "--data-dir" => match it.next() {
                Some(p) => data_dir = Some(std::path::PathBuf::from(p)),
                None => die("--data-dir needs a path"),
            },
            "--durability" => match it.next() {
                Some(v) if v.parse::<ziggy::serve::DurabilityMode>().is_ok() => {
                    durability = Some(v.clone())
                }
                _ => die("--durability needs one of: fsync, batch, async"),
            },
            "--snapshot-every" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) if n > 0 => snapshot_every = Some(n),
                _ => die("--snapshot-every needs a positive integer"),
            },
            "--slow-ms" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(ms) if ms > 0 => {
                    options.slow_ms = ms;
                    slow_ms = Some(ms);
                }
                _ => die("--slow-ms needs a positive integer (milliseconds)"),
            },
            other => die(&format!("unknown fleet option: {other}")),
        }
    }

    // Each backend is this same binary running `serve` on an ephemeral
    // port; the --port-file handshake reports where it landed.
    let binary = match std::env::current_exe() {
        Ok(b) => b,
        Err(e) => die(&format!("cannot locate own binary: {e}")),
    };
    // Per-child serve args: with a data dir, each shard logs to its own
    // id-keyed subdirectory — which is what lets a *restarted* child
    // replay the dead incarnation's WAL instead of rejoining empty.
    let backend_args_for = move |id: &str| -> Vec<String> {
        let mut extra = Vec::new();
        if let Some(dir) = &data_dir {
            extra.push("--data-dir".to_string());
            extra.push(dir.join(id).to_string_lossy().into_owned());
            if let Some(mode) = &durability {
                extra.push("--durability".to_string());
                extra.push(mode.clone());
            }
            if let Some(n) = snapshot_every {
                extra.push("--snapshot-every".to_string());
                extra.push(n.to_string());
            }
        }
        // The slow-query threshold applies fleet-wide: the router's own
        // recorder (set above via options) and every spawned backend.
        if let Some(ms) = slow_ms {
            extra.push("--slow-ms".to_string());
            extra.push(ms.to_string());
        }
        extra
    };
    let mut children: Vec<BackendProcess> = Vec::with_capacity(backends);
    for i in 0..backends {
        let id = format!("shard-{i}");
        let extra = backend_args_for(&id);
        let extra_refs: Vec<&str> = extra.iter().map(String::as_str).collect();
        match BackendProcess::spawn(&binary, &id, &extra_refs) {
            Ok(child) => {
                println!(
                    "spawned backend {id} (pid {}) on {}",
                    child.pid(),
                    child.addr()
                );
                children.push(child);
            }
            Err(e) => die(&format!("cannot spawn backend {id}: {e}")),
        }
    }

    let backend_addrs: Vec<(String, std::net::SocketAddr)> = children
        .iter()
        .map(|c| (c.id().to_string(), c.addr()))
        .collect();
    let fleet = match start_fleet(&addr[..], backend_addrs, options) {
        Ok(f) => f,
        Err(e) => die(&format!("cannot bind {addr}: {e}")),
    };
    if demo {
        preload_fleet_demo(fleet.local_addr());
    }
    println!(
        "ziggy-fleet router on http://{} over {} backends (replication {})",
        fleet.local_addr(),
        children.len(),
        fleet.state().replication()
    );
    println!("same API as ziggy serve; /metrics and /tables aggregate all shards, /debug/traces/{{id}} assembles fleet-wide spans");
    println!("admin: POST /admin/backends {{\"id\",\"addr\"}} and DELETE /admin/backends/{{id}}");

    if restart {
        // Supervise with restart-with-rejoin: a dead child is respawned
        // under its old id on a fresh port, swapped into the ring (two
        // epoch bumps), and the repair loop re-ingests its shard from
        // the surviving replicas.
        loop {
            std::thread::sleep(std::time::Duration::from_secs(1));
            ziggy::fleet::restart_dead_children_with(
                &binary,
                &mut children,
                fleet.state(),
                &backend_args_for,
            );
        }
    } else {
        // Report-only supervision: the health prober routes around the
        // dead child and the repair loop restores replication on the
        // survivors, but the capacity stays lost until an operator acts.
        let mut reported = vec![false; children.len()];
        loop {
            std::thread::sleep(std::time::Duration::from_secs(1));
            for (child, reported) in children.iter_mut().zip(reported.iter_mut()) {
                if !*reported && !child.is_alive() {
                    *reported = true;
                    eprintln!(
                        "backend {} (pid {}) exited; traffic fails over to its replicas",
                        child.id(),
                        child.pid()
                    );
                }
            }
        }
    }
}

fn preload_fleet_demo(router: std::net::SocketAddr) {
    let twin = ziggy::synth::us_crime(7);
    let csv = ziggy::store::csv::write_csv_string(&twin.table, ',');
    let body = serde_json::to_string(&serde_json::Value::Object(vec![
        (
            "name".to_string(),
            serde_json::Value::String("crime".to_string()),
        ),
        ("csv".to_string(), serde_json::Value::String(csv)),
    ]))
    .expect("demo bodies always render");
    match ziggy::serve::http::request_once(router, "POST", "/tables", Some(&body)) {
        Ok((201, resp)) => println!("preloaded table `crime` across the fleet: {resp}"),
        Ok((status, resp)) => eprintln!("demo preload failed ({status}): {resp}"),
        Err(e) => eprintln!("demo preload failed: {e}"),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
