//! Interactive exploration REPL — the terminal counterpart of the demo's
//! web front-end (paper Figure 5), structured as a pure command
//! interpreter so every command is unit-testable.
//!
//! Commands:
//!
//! ```text
//! load <path.csv>          load a dataset
//! demo [crime|boxoffice|oecd]   load a built-in synthetic twin
//! query <predicate>        characterize a selection
//! views                    list the last report's views
//! show <k>                 ASCII scatter of view k (1-based)
//! explain <k>              explanations of view k
//! dendrogram               column-dependency dendrogram (MIN_tight aid)
//! set <param> <value>      max_views | max_view_size | min_tightness |
//!                          alpha | w_mean | w_dispersion | w_correlation |
//!                          w_frequency | prepared_cache_capacity |
//!                          report_cache_capacity
//! sample <frac>            continue on a row sample (BlinkDB-style)
//! info                     table shape and config
//! help                     this text
//! quit                     exit
//! ```

use std::sync::Arc;

use ziggy_core::render::{ascii_scatter, render_interface};
use ziggy_core::{CharacterizationReport, Ziggy, ZiggyConfig};
use ziggy_store::csv::{read_csv_path, CsvOptions};
use ziggy_store::{eval, Bitmask, Table};

/// The REPL's mutable state.
///
/// The engine is built lazily and kept across queries, so the REPL
/// enjoys the paper's between-query sharing: whole-table statistics,
/// the dependency graph, and the candidate plan are computed once per
/// loaded table, not once per `query` command, and repeated queries are
/// served from the report cache. Loading a new table drops the engine
/// (a stale cache would describe the wrong data); changing
/// configuration *forks* it, keeping the whole-table statistics and
/// invalidating exactly the memos the changed parameter affects.
pub struct ReplState {
    table: Option<Arc<Table>>,
    engine: Option<Ziggy>,
    config: ZiggyConfig,
    last_report: Option<CharacterizationReport>,
    last_mask: Option<Bitmask>,
}

impl Default for ReplState {
    fn default() -> Self {
        Self::new()
    }
}

/// Outcome of one command.
#[derive(Debug, PartialEq, Eq)]
pub enum ReplAction {
    /// Print the string and continue.
    Continue(String),
    /// Exit the loop.
    Quit,
}

impl ReplState {
    /// Fresh state with the default configuration.
    pub fn new() -> Self {
        Self {
            table: None,
            engine: None,
            config: ZiggyConfig::default(),
            last_report: None,
            last_mask: None,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ZiggyConfig {
        &self.config
    }

    /// The loaded table, if any.
    pub fn table(&self) -> Option<&Table> {
        self.table.as_deref()
    }

    fn require_table(&self) -> Result<&Table, String> {
        self.table
            .as_deref()
            .ok_or_else(|| "no dataset loaded — use `load` or `demo`".to_string())
    }

    /// The engine over the loaded table, built on first use and reused
    /// (with its caches) until the table or configuration changes.
    fn engine(&mut self) -> Result<&Ziggy, String> {
        if self.engine.is_none() {
            let table = self
                .table
                .clone()
                .ok_or_else(|| "no dataset loaded — use `load` or `demo`".to_string())?;
            self.engine = Some(Ziggy::shared(table, self.config.clone()));
        }
        Ok(self.engine.as_ref().expect("just built"))
    }

    fn set_table(&mut self, table: Table) {
        self.table = Some(Arc::new(table));
        self.engine = None;
        self.last_report = None;
        self.last_mask = None;
    }

    fn require_report(&self) -> Result<(&CharacterizationReport, &Bitmask), String> {
        match (&self.last_report, &self.last_mask) {
            (Some(r), Some(m)) => Ok((r, m)),
            _ => Err("no query yet — use `query <predicate>`".to_string()),
        }
    }

    /// Executes one command line.
    pub fn handle(&mut self, line: &str) -> ReplAction {
        let line = line.trim();
        if line.is_empty() {
            return ReplAction::Continue(String::new());
        }
        let (cmd, rest) = match line.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (line, ""),
        };
        let out = match cmd.to_ascii_lowercase().as_str() {
            "quit" | "exit" => return ReplAction::Quit,
            "help" => Ok(HELP.to_string()),
            "load" => self.cmd_load(rest),
            "demo" => self.cmd_demo(rest),
            "query" => self.cmd_query(rest),
            "views" => self.cmd_views(),
            "show" => self.cmd_show(rest),
            "explain" => self.cmd_explain(rest),
            "dendrogram" => self.cmd_dendrogram(),
            "set" => self.cmd_set(rest),
            "sample" => self.cmd_sample(rest),
            "info" => self.cmd_info(),
            other => Err(format!("unknown command: {other} (try `help`)")),
        };
        ReplAction::Continue(out.unwrap_or_else(|e| format!("error: {e}")))
    }

    fn cmd_load(&mut self, path: &str) -> Result<String, String> {
        if path.is_empty() {
            return Err("usage: load <path.csv>".into());
        }
        let table = read_csv_path(path, &CsvOptions::default()).map_err(|e| e.to_string())?;
        let msg = format!(
            "loaded {}: {} rows, {} columns ({} numeric, {} categorical)",
            path,
            table.n_rows(),
            table.n_cols(),
            table.numeric_indices().len(),
            table.categorical_indices().len()
        );
        self.set_table(table);
        Ok(msg)
    }

    fn cmd_demo(&mut self, which: &str) -> Result<String, String> {
        let d = match which {
            "" | "crime" => ziggy_synth::us_crime(7),
            "boxoffice" => ziggy_synth::box_office(7),
            "oecd" => ziggy_synth::oecd_innovation(7),
            other => return Err(format!("unknown demo: {other} (crime | boxoffice | oecd)")),
        };
        let msg = format!(
            "loaded demo twin {}: {} rows, {} columns\nsuggested query: {}",
            d.spec.name,
            d.table.n_rows(),
            d.table.n_cols(),
            d.predicate
        );
        self.set_table(d.table);
        Ok(msg)
    }

    fn cmd_query(&mut self, predicate: &str) -> Result<String, String> {
        if predicate.is_empty() {
            return Err("usage: query <predicate>".into());
        }
        let engine = self.engine()?;
        // One parse + one table scan: the mask feeds both the engine and
        // the interface rendering.
        let mask = eval::select(engine.table(), predicate).map_err(|e| e.to_string())?;
        let report = engine
            .characterize_mask(&mask, predicate)
            .map_err(|e| e.to_string())?;
        let ui = render_interface(engine.table(), &mask, &report);
        self.last_report = Some(report);
        self.last_mask = Some(mask);
        Ok(ui)
    }

    fn cmd_views(&self) -> Result<String, String> {
        let (report, _) = self.require_report()?;
        let mut out = String::new();
        for (i, v) in report.views.iter().enumerate() {
            out.push_str(&format!(
                "{}. {}  score={:.3}  robustness p={:.2e}\n",
                i + 1,
                v.view,
                v.score,
                v.robustness_p
            ));
        }
        Ok(out)
    }

    fn parse_view_index(&self, arg: &str) -> Result<usize, String> {
        let (report, _) = self.require_report()?;
        let k: usize = arg
            .trim()
            .parse()
            .map_err(|_| "usage: show|explain <k>".to_string())?;
        if k == 0 || k > report.views.len() {
            return Err(format!(
                "view index out of range 1..={}",
                report.views.len()
            ));
        }
        Ok(k - 1)
    }

    fn cmd_show(&self, arg: &str) -> Result<String, String> {
        let idx = self.parse_view_index(arg)?;
        let (report, mask) = self.require_report()?;
        let table = self.require_table()?;
        let v = &report.views[idx];
        match v.view.columns.len() {
            0 => Err("empty view".into()),
            1 => Ok(format!("single-column view on {}", v.view.names[0])),
            _ => Ok(ascii_scatter(
                table,
                mask,
                v.view.columns[0],
                v.view.columns[1],
                56,
                16,
            )),
        }
    }

    fn cmd_explain(&self, arg: &str) -> Result<String, String> {
        let idx = self.parse_view_index(arg)?;
        let (report, _) = self.require_report()?;
        Ok(report.views[idx].explanation.to_string())
    }

    fn cmd_dendrogram(&mut self) -> Result<String, String> {
        self.engine()?
            .dependency_dendrogram()
            .map_err(|e| e.to_string())
    }

    fn cmd_set(&mut self, rest: &str) -> Result<String, String> {
        let (key, value) = rest
            .split_once(char::is_whitespace)
            .ok_or_else(|| "usage: set <param> <value>".to_string())?;
        let value = value.trim();
        let parse_f = || {
            value
                .parse::<f64>()
                .map_err(|_| format!("not a number: {value}"))
        };
        let parse_u = || {
            value
                .parse::<usize>()
                .map_err(|_| format!("not an integer: {value}"))
        };
        // Mutate a scratch copy so a rejected value leaves the live
        // config (and the engine cached from it) untouched.
        let mut config = self.config.clone();
        match key {
            "max_views" => config.max_views = parse_u()?,
            "max_view_size" => config.max_view_size = parse_u()?,
            "min_tightness" => config.min_tightness = parse_f()?,
            "alpha" => config.alpha = parse_f()?,
            "w_mean" => config.weights.mean = parse_f()?,
            "w_dispersion" => config.weights.dispersion = parse_f()?,
            "w_correlation" => config.weights.correlation = parse_f()?,
            "w_frequency" => config.weights.frequency = parse_f()?,
            "prepared_cache_capacity" => config.prepared_cache_capacity = parse_u()?,
            "report_cache_capacity" => config.report_cache_capacity = parse_u()?,
            other => return Err(format!("unknown parameter: {other}")),
        }
        config.validate().map_err(|e| e.to_string())?;
        // Fork the live engine instead of dropping it: the whole-table
        // statistics survive every `set`, and `with_config` itself
        // decides what else carries over — a search-relevant parameter
        // (min_tightness, max_view_size, the dependence measure)
        // invalidates the memoized candidate plan, while report-cache
        // entries re-key under the new configuration fingerprint.
        if let Some(engine) = &self.engine {
            self.engine = Some(engine.with_config(config.clone()));
        }
        self.config = config;
        Ok(format!("{key} = {value}"))
    }

    fn cmd_sample(&mut self, arg: &str) -> Result<String, String> {
        let frac: f64 = arg
            .trim()
            .parse()
            .map_err(|_| "usage: sample <frac in (0,1]>".to_string())?;
        if !(0.0..=1.0).contains(&frac) || frac == 0.0 {
            return Err("fraction must be in (0, 1]".into());
        }
        let table = self.require_table()?;
        let sampled = table.sample_rows(frac, 0xCAFE);
        let msg = format!("sampled down to {} rows", sampled.n_rows());
        self.set_table(sampled);
        Ok(msg)
    }

    fn cmd_info(&self) -> Result<String, String> {
        let mut out = String::new();
        match &self.table {
            Some(t) => out.push_str(&format!(
                "table: {} rows x {} columns\n",
                t.n_rows(),
                t.n_cols()
            )),
            None => out.push_str("table: <none>\n"),
        }
        out.push_str(&format!(
            "config: K={} D={} MIN_tight={} alpha={} weights(m={}, s={}, c={}, f={})",
            self.config.max_views,
            self.config.max_view_size,
            self.config.min_tightness,
            self.config.alpha,
            self.config.weights.mean,
            self.config.weights.dispersion,
            self.config.weights.correlation,
            self.config.weights.frequency,
        ));
        if let Some(engine) = &self.engine {
            // All three reuse levels, top down: whole-table statistics,
            // per-mask PreparedStats, finished report bytes. Capacity 0
            // means the engine bypasses that cache entirely; don't
            // present the clamped placeholder as live.
            let c = engine.cache().counters();
            out.push_str(&format!(
                "\ncaches:\n  stats:    hits={} misses={}",
                c.hits, c.misses
            ));
            out.push_str("\n  prepared: ");
            if self.config.prepared_cache_capacity == 0 {
                out.push_str("disabled");
            } else {
                let p = engine.prepared_cache().counters();
                out.push_str(&format!(
                    "hits={} misses={} evictions={} entries={}/{}",
                    p.hits,
                    p.misses,
                    p.evictions,
                    engine.prepared_cache().len(),
                    engine.prepared_cache().capacity(),
                ));
            }
            out.push_str("\n  reports:  ");
            if self.config.report_cache_capacity == 0 {
                out.push_str("disabled");
            } else {
                let r = engine.report_cache().counters();
                out.push_str(&format!(
                    "hits={} misses={} evictions={} entries={}/{}",
                    r.hits,
                    r.misses,
                    r.evictions,
                    engine.report_cache().len(),
                    engine.report_cache().capacity(),
                ));
            }
        }
        Ok(out)
    }
}

const HELP: &str = "\
commands:
  load <path.csv>     load a dataset
  demo [crime|boxoffice|oecd]  load a built-in synthetic twin
  query <predicate>   characterize a selection (e.g. query crime >= 50)
  views               list the last report's views
  show <k>            ASCII scatter of view k
  explain <k>         explanations of view k
  dendrogram          dependency dendrogram (helps choose min_tightness)
  set <param> <value> tune max_views / max_view_size / min_tightness /
                      alpha / w_mean / w_dispersion / w_correlation /
                      w_frequency / prepared_cache_capacity /
                      report_cache_capacity
  sample <frac>       continue on a row sample
  info                table shape and config
  quit                exit";

#[cfg(test)]
mod tests {
    use super::*;
    use ziggy_store::csv::write_csv_string;
    use ziggy_store::TableBuilder;

    fn text(action: ReplAction) -> String {
        match action {
            ReplAction::Continue(s) => s,
            ReplAction::Quit => panic!("unexpected quit"),
        }
    }

    fn demo_csv_path() -> std::path::PathBuf {
        let n = 200usize;
        let mut b = TableBuilder::new();
        b.add_numeric("key", (0..n).map(|i| i as f64).collect::<Vec<_>>());
        b.add_numeric(
            "hot",
            (0..n)
                .map(|i| if i >= 150 { 25.0 } else { 0.0 } + ((i * 13) % 7) as f64)
                .collect::<Vec<_>>(),
        );
        b.add_numeric(
            "cold",
            (0..n).map(|i| ((i * 7919) % 31) as f64).collect::<Vec<_>>(),
        );
        let t = b.build().unwrap();
        let path = std::env::temp_dir().join(format!("ziggy_repl_test_{}.csv", std::process::id()));
        std::fs::write(&path, write_csv_string(&t, ',')).unwrap();
        path
    }

    #[test]
    fn full_session_flow() {
        let path = demo_csv_path();
        let mut s = ReplState::new();
        let loaded = text(s.handle(&format!("load {}", path.display())));
        assert!(loaded.contains("200 rows"), "{loaded}");
        let report = text(s.handle("query key >= 150"));
        assert!(report.contains("VIEWS"), "{report}");
        let views = text(s.handle("views"));
        assert!(views.contains("score="), "{views}");
        let scatter = text(s.handle("show 1"));
        assert!(
            scatter.contains('+') || scatter.contains("single-column"),
            "{scatter}"
        );
        let expl = text(s.handle("explain 1"));
        assert!(!expl.is_empty());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn errors_are_messages_not_panics() {
        let mut s = ReplState::new();
        assert!(text(s.handle("query x > 1")).contains("no dataset"));
        assert!(text(s.handle("views")).contains("no query"));
        assert!(text(s.handle("load /nonexistent/zzz.csv")).contains("error"));
        assert!(text(s.handle("bogus")).contains("unknown command"));
        assert!(text(s.handle("set nope 3")).contains("unknown parameter"));
        assert!(text(s.handle("set alpha abc")).contains("not a number"));
    }

    #[test]
    fn set_validates_config() {
        let mut s = ReplState::new();
        assert_eq!(text(s.handle("set max_views 7")), "max_views = 7");
        assert_eq!(s.config().max_views, 7);
        // Invalid values are rejected AND leave the live config
        // untouched, so later sets are not poisoned by the bad value.
        let before = s.config().min_tightness;
        assert!(text(s.handle("set min_tightness 5")).contains("error"));
        assert_eq!(s.config().min_tightness, before);
        assert_eq!(text(s.handle("set max_views 9")), "max_views = 9");
    }

    #[test]
    fn sample_shrinks_table() {
        let path = demo_csv_path();
        let mut s = ReplState::new();
        s.handle(&format!("load {}", path.display()));
        let msg = text(s.handle("sample 0.5"));
        assert!(msg.contains("sampled down"));
        let rows = s.table().unwrap().n_rows();
        assert!(rows < 200 && rows > 50, "{rows}");
        assert!(text(s.handle("sample 2.0")).contains("error"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn set_forks_engine_preserving_stats_and_invalidating_search_memos() {
        let mut s = ReplState::new();
        text(s.handle("demo boxoffice"));
        let predicate = ziggy_synth::box_office(7).predicate;
        let report = text(s.handle(&format!("query {predicate}")));
        assert!(report.contains("VIEWS"), "{report}");
        let engine = s.engine.as_ref().unwrap();
        assert!(engine.graph_memoized() && engine.candidates_memoized());
        let misses_before = engine.cache().counters().misses;

        // A parameter that cannot change the search plan carries the
        // whole memoized plan (and the stats cache) into the fork.
        assert_eq!(text(s.handle("set alpha 0.01")), "alpha = 0.01");
        let engine = s.engine.as_ref().unwrap();
        assert!(engine.graph_memoized() && engine.candidates_memoized());
        assert_eq!(engine.cache().counters().misses, misses_before);

        // A search-relevant parameter invalidates the candidate memo
        // but keeps the graph and the whole-table statistics.
        assert_eq!(
            text(s.handle("set min_tightness 0.4")),
            "min_tightness = 0.4"
        );
        let engine = s.engine.as_ref().unwrap();
        assert!(engine.graph_memoized());
        assert!(!engine.candidates_memoized());
        text(s.handle(&format!("query {predicate}")));
        let engine = s.engine.as_ref().unwrap();
        assert!(engine.candidates_memoized());
        assert_eq!(
            engine.cache().counters().misses,
            misses_before,
            "re-query after `set` must pay no new whole-table scans"
        );
    }

    #[test]
    fn info_shows_three_cache_levels() {
        let mut s = ReplState::new();
        text(s.handle("demo boxoffice"));
        let predicate = ziggy_synth::box_office(7).predicate;
        text(s.handle(&format!("query {predicate}")));
        text(s.handle(&format!("query {predicate}")));
        let info = text(s.handle("info"));
        assert!(info.contains("stats:"), "{info}");
        assert!(info.contains("prepared: hits=0 misses=1"), "{info}");
        assert!(info.contains("reports:  hits=1 misses=1"), "{info}");

        // Disabled levels say so instead of showing placeholder state.
        text(s.handle("set report_cache_capacity 0"));
        text(s.handle("set prepared_cache_capacity 0"));
        let info = text(s.handle("info"));
        assert!(info.contains("prepared: disabled"), "{info}");
        assert!(info.contains("reports:  disabled"), "{info}");
    }

    #[test]
    fn demo_and_quit() {
        let mut s = ReplState::new();
        let msg = text(s.handle("demo boxoffice"));
        assert!(msg.contains("900 rows"));
        assert_eq!(s.handle("quit"), ReplAction::Quit);
    }

    #[test]
    fn help_and_empty() {
        let mut s = ReplState::new();
        assert!(text(s.handle("help")).contains("commands:"));
        assert_eq!(text(s.handle("   ")), "");
    }
}
