#![warn(missing_docs)]
#![doc = include_str!("../README.md")]

//! # Ziggy — characterizing query results for data explorers
//!
//! Facade crate re-exporting the whole Ziggy workspace, a from-scratch Rust
//! reproduction of *Ziggy: Characterizing Query Results for Data Explorers*
//! (Sellam & Kersten, PVLDB 9(13), 2016).
//!
//! Given a selection query over a wide table, Ziggy finds *characteristic
//! views*: small, tight, mutually disjoint sets of columns on which the
//! selected tuples look most different from the rest of the data — and
//! explains *why* in plain language.
//!
//! ```
//! use ziggy::prelude::*;
//!
//! // A tiny table: two correlated columns plus noise.
//! let mut b = TableBuilder::new();
//! b.add_numeric("population", (0..200).map(|i| i as f64).collect::<Vec<_>>());
//! b.add_numeric("density", (0..200).map(|i| (i * 2) as f64).collect::<Vec<_>>());
//! b.add_numeric("noise", (0..200).map(|i| ((i * 7919) % 100) as f64).collect::<Vec<_>>());
//! let table = b.build().unwrap();
//!
//! // Characterize the top quarter of the population range.
//! let config = ZiggyConfig::default();
//! let engine = Ziggy::new(&table, config);
//! let report = engine.characterize("population >= 150").unwrap();
//! assert!(!report.views.is_empty());
//! ```

pub mod repl;

pub use ziggy_baselines as baselines;
pub use ziggy_cluster as cluster;
pub use ziggy_core as core;
pub use ziggy_fleet as fleet;
pub use ziggy_obs as obs;
pub use ziggy_serve as serve;
pub use ziggy_stats as stats;
pub use ziggy_store as store;
pub use ziggy_synth as synth;

/// Convenience re-exports covering the common workflow: build or load a
/// table, configure the engine, characterize a query, render the report.
pub mod prelude {
    pub use ziggy_core::{
        CharacterizationReport, Explanation, View, ViewReport, Weights, Ziggy, ZiggyConfig,
    };
    pub use ziggy_store::{Column, ColumnType, Schema, Table, TableBuilder};
    pub use ziggy_synth::{DatasetSpec, SyntheticDataset};
}
