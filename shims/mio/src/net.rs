//! Non-blocking TCP connect helper for reactor-driven clients.
//!
//! `std::net::TcpStream::connect` blocks until the handshake completes;
//! a reactor wants to issue the SYN and get a WRITABLE event when the
//! connection is established (or an error event when it is refused).
//! This module creates the socket with `SOCK_NONBLOCK` directly so the
//! `connect(2)` call returns immediately with `EINPROGRESS`.

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::os::fd::{FromRawFd, RawFd};

const AF_INET: i32 = 2;
const AF_INET6: i32 = 10;
const SOCK_STREAM: i32 = 1;
const SOCK_NONBLOCK: i32 = 0o4000;
const SOCK_CLOEXEC: i32 = 0o2000000;
const EINPROGRESS: i32 = 115;

#[repr(C)]
struct SockAddrIn {
    sin_family: u16,
    sin_port: u16,
    sin_addr: u32,
    sin_zero: [u8; 8],
}

#[repr(C)]
struct SockAddrIn6 {
    sin6_family: u16,
    sin6_port: u16,
    sin6_flowinfo: u32,
    sin6_addr: [u8; 16],
    sin6_scope_id: u32,
}

extern "C" {
    fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
    fn connect(fd: RawFd, addr: *const u8, len: u32) -> i32;
    fn close(fd: RawFd) -> i32;
}

/// Start a TCP connection without blocking.
///
/// Returns a non-blocking `TcpStream` whose handshake is still in flight
/// (or already complete, on loopback). Register it for WRITABLE interest;
/// when the event fires, `take_error()` distinguishes an established
/// connection (`None`) from a refused one (`Some(..)`).
pub fn connect_nonblocking(addr: SocketAddr) -> io::Result<TcpStream> {
    let domain = match addr {
        SocketAddr::V4(_) => AF_INET,
        SocketAddr::V6(_) => AF_INET6,
    };
    let fd = unsafe { socket(domain, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    let rc = match addr {
        SocketAddr::V4(v4) => {
            let raw = SockAddrIn {
                sin_family: AF_INET as u16,
                sin_port: v4.port().to_be(),
                sin_addr: u32::from_ne_bytes(v4.ip().octets()),
                sin_zero: [0; 8],
            };
            unsafe {
                connect(
                    fd,
                    (&raw as *const SockAddrIn).cast::<u8>(),
                    std::mem::size_of::<SockAddrIn>() as u32,
                )
            }
        }
        SocketAddr::V6(v6) => {
            let raw = SockAddrIn6 {
                sin6_family: AF_INET6 as u16,
                sin6_port: v6.port().to_be(),
                sin6_flowinfo: v6.flowinfo().to_be(),
                sin6_addr: v6.ip().octets(),
                sin6_scope_id: v6.scope_id().to_be(),
            };
            unsafe {
                connect(
                    fd,
                    (&raw as *const SockAddrIn6).cast::<u8>(),
                    std::mem::size_of::<SockAddrIn6>() as u32,
                )
            }
        }
    };
    if rc < 0 {
        let err = io::Error::last_os_error();
        if err.raw_os_error() != Some(EINPROGRESS) {
            unsafe { close(fd) };
            return Err(err);
        }
    }
    Ok(unsafe { TcpStream::from_raw_fd(fd) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn connects_to_loopback_listener() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stream = connect_nonblocking(addr).unwrap();
        let (_peer, _) = listener.accept().unwrap();
        // The handshake completes even though the socket never blocked.
        for _ in 0..100 {
            if stream.peer_addr().is_ok() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(stream.peer_addr().unwrap(), addr);
    }
}
