//! Offline shim of the `mio` readiness API over raw Linux epoll.
//!
//! Mirrors the small slice of mio 0.8 that the router's event-loop data
//! plane needs: [`Poll`] / [`Registry`] / [`Token`] / [`Interest`] /
//! [`Events`] / [`Waker`], plus a [`net`] module with a non-blocking
//! TCP connect helper. Everything talks straight to the system libc via
//! `extern "C"` declarations (`epoll_create1` / `epoll_ctl` /
//! `epoll_wait` / `eventfd`) — no crates.io, matching the repo's shim
//! policy.
//!
//! Semantics: registrations are **level-triggered** (an event repeats on
//! every poll until the condition is drained), except the [`Waker`]'s
//! internal eventfd which is edge-triggered so a single `wake()` yields a
//! single event. `EPOLLRDHUP` is always requested so peer half-close is
//! observable via [`Event::is_read_closed`].

use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::time::Duration;

pub mod net;

mod sys {
    use std::os::fd::RawFd;

    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLLET: u32 = 1 << 31;

    pub const EFD_CLOEXEC: i32 = 0o2000000;
    pub const EFD_NONBLOCK: i32 = 0o4000;

    // The kernel ABI packs epoll_event on x86_64; other architectures use
    // natural alignment.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: RawFd, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn eventfd(initval: u32, flags: i32) -> i32;
    }
}

/// Opaque registration id echoed back on every [`Event`] for the
/// registered source.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub usize);

/// Readiness interest: readable, writable, or both (combine with `|`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Interest in read readiness.
    pub const READABLE: Interest = Interest(0b01);
    /// Interest in write readiness.
    pub const WRITABLE: Interest = Interest(0b10);

    /// True if this interest includes read readiness.
    pub fn is_readable(self) -> bool {
        self.0 & 0b01 != 0
    }

    /// True if this interest includes write readiness.
    pub fn is_writable(self) -> bool {
        self.0 & 0b10 != 0
    }

    /// Union of two interests (mirrors mio's `Interest::add`).
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    fn epoll_bits(self) -> u32 {
        let mut bits = sys::EPOLLRDHUP;
        if self.is_readable() {
            bits |= sys::EPOLLIN;
        }
        if self.is_writable() {
            bits |= sys::EPOLLOUT;
        }
        bits
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        self.add(rhs)
    }
}

/// A single readiness notification delivered by [`Poll::poll`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    token: Token,
    bits: u32,
}

impl Event {
    /// The token supplied at registration time.
    pub fn token(&self) -> Token {
        self.token
    }

    /// The source is ready for reading (includes hang-up: a read will
    /// observe EOF rather than block).
    pub fn is_readable(&self) -> bool {
        self.bits & (sys::EPOLLIN | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0
    }

    /// The source is ready for writing.
    pub fn is_writable(&self) -> bool {
        self.bits & sys::EPOLLOUT != 0
    }

    /// An error condition (EPOLLERR) is pending; fetch it with
    /// `take_error` / a read on the source.
    pub fn is_error(&self) -> bool {
        self.bits & sys::EPOLLERR != 0
    }

    /// The peer closed its write half (EPOLLRDHUP) or the connection hung
    /// up entirely (EPOLLHUP).
    pub fn is_read_closed(&self) -> bool {
        self.bits & (sys::EPOLLRDHUP | sys::EPOLLHUP) != 0
    }
}

/// Buffer of events filled by [`Poll::poll`].
pub struct Events {
    inner: Vec<Event>,
    capacity: usize,
}

impl Events {
    /// Allocate an event buffer holding at most `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            inner: Vec::with_capacity(capacity),
            capacity: capacity.max(1),
        }
    }

    /// Iterate over the events from the most recent poll.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.inner.iter()
    }

    /// True when the most recent poll returned no events.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Number of events from the most recent poll.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Drop all buffered events.
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Handle for (de)registering event sources with a [`Poll`] instance.
///
/// Cheap to copy; remains valid while the owning `Poll` is alive.
#[derive(Clone, Copy, Debug)]
pub struct Registry {
    epfd: RawFd,
}

impl Registry {
    fn ctl(&self, op: i32, fd: RawFd, bits: u32, token: usize) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events: bits,
            data: token as u64,
        };
        let rc = unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Register `source` for level-triggered readiness notifications.
    pub fn register<S: AsRawFd>(
        &self,
        source: &S,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.ctl(
            sys::EPOLL_CTL_ADD,
            source.as_raw_fd(),
            interest.epoll_bits(),
            token.0,
        )
    }

    /// Change the interest set (and/or token) of an already-registered source.
    pub fn reregister<S: AsRawFd>(
        &self,
        source: &S,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.ctl(
            sys::EPOLL_CTL_MOD,
            source.as_raw_fd(),
            interest.epoll_bits(),
            token.0,
        )
    }

    /// Remove `source` from the poller.
    pub fn deregister<S: AsRawFd>(&self, source: &S) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_DEL, source.as_raw_fd(), 0, 0)
    }

    fn register_edge(&self, fd: RawFd, token: Token) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, sys::EPOLLIN | sys::EPOLLET, token.0)
    }
}

/// The epoll instance: poll it for readiness events on registered sources.
pub struct Poll {
    epfd: OwnedFd,
}

impl Poll {
    /// Create a new epoll instance (`EPOLL_CLOEXEC`).
    pub fn new() -> io::Result<Poll> {
        let fd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poll {
            epfd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    /// The registry used to add, modify, and remove event sources.
    pub fn registry(&self) -> Registry {
        Registry {
            epfd: self.epfd.as_raw_fd(),
        }
    }

    /// Block until at least one event is ready, `timeout` elapses
    /// (`None` blocks indefinitely), or the call is interrupted.
    /// Interruption (`EINTR`) is surfaced as an empty event set.
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(d) => i32::try_from(d.as_millis().min(i32::MAX as u128)).unwrap_or(i32::MAX),
        };
        let cap = events.capacity;
        let mut raw = vec![sys::EpollEvent { events: 0, data: 0 }; cap];
        let n = unsafe {
            sys::epoll_wait(
                self.epfd.as_raw_fd(),
                raw.as_mut_ptr(),
                cap as i32,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for item in raw.iter().take(n as usize) {
            // Copy out of the (possibly packed) kernel struct by value.
            let e = *item;
            let bits = e.events;
            let data = e.data;
            events.inner.push(Event {
                token: Token(data as usize),
                bits,
            });
        }
        Ok(())
    }
}

/// Cross-thread wakeup for a [`Poll`] loop, backed by an eventfd.
///
/// `wake()` is async-signal-ish cheap and may be called from any thread;
/// the poll loop receives a single readiness event per quiet period
/// (edge-triggered) carrying the token supplied at construction.
pub struct Waker {
    fd: std::fs::File,
}

impl Waker {
    /// Create a waker registered on `registry` under `token`.
    pub fn new(registry: &Registry, token: Token) -> io::Result<Waker> {
        let fd = unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let file = unsafe { std::fs::File::from_raw_fd(fd) };
        registry.register_edge(file.as_raw_fd(), token)?;
        Ok(Waker { fd: file })
    }

    /// Wake the poll loop. Multiple wakes before the loop runs coalesce
    /// into one event.
    pub fn wake(&self) -> io::Result<()> {
        let buf = 1u64.to_ne_bytes();
        match (&self.fd).write(&buf) {
            Ok(_) => Ok(()),
            // Counter saturated: the loop is guaranteed to wake already.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Reset the wake counter. Call from the poll loop when the waker's
    /// token fires so bookkeeping stays bounded.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        let _ = (&self.fd).read(&mut buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::sync::Arc;
    use std::time::Duration;

    const SHORT: Option<Duration> = Some(Duration::from_millis(2000));
    const ZERO: Option<Duration> = Some(Duration::from_millis(0));

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    fn wait_for(poll: &mut Poll, events: &mut Events, token: Token) -> Event {
        for _ in 0..50 {
            poll.poll(events, SHORT).unwrap();
            if let Some(ev) = events.iter().find(|e| e.token() == token) {
                return *ev;
            }
        }
        panic!("no event for {token:?}");
    }

    #[test]
    fn registry_add_modify_delete() {
        let mut poll = Poll::new().unwrap();
        let registry = poll.registry();
        let mut events = Events::with_capacity(8);
        let (a, mut b) = pair();
        a.set_nonblocking(true).unwrap();

        // Add with READABLE interest: no data yet, so nothing fires.
        registry.register(&a, Token(1), Interest::READABLE).unwrap();
        poll.poll(&mut events, ZERO).unwrap();
        assert!(events.iter().all(|e| e.token() != Token(1)));

        // Peer writes: readable fires.
        b.write_all(b"x").unwrap();
        let ev = wait_for(&mut poll, &mut events, Token(1));
        assert!(ev.is_readable());
        assert!(!ev.is_writable());

        // Modify to WRITABLE (and a new token): writable fires, and the
        // pending unread byte no longer produces a readable event.
        registry
            .reregister(&a, Token(2), Interest::WRITABLE)
            .unwrap();
        let ev = wait_for(&mut poll, &mut events, Token(2));
        assert!(ev.is_writable());
        assert!(!ev.is_readable());
        poll.poll(&mut events, ZERO).unwrap();
        assert!(events.iter().all(|e| e.token() != Token(1)));

        // Delete: no further events even though the socket stays writable.
        registry.deregister(&a).unwrap();
        poll.poll(&mut events, ZERO).unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn level_triggered_rearm_until_drained() {
        let mut poll = Poll::new().unwrap();
        let registry = poll.registry();
        let mut events = Events::with_capacity(8);
        let (mut a, mut b) = pair();
        a.set_nonblocking(true).unwrap();
        registry.register(&a, Token(7), Interest::READABLE).unwrap();
        b.write_all(b"hello").unwrap();

        // The readable event repeats on every poll while data is unread.
        for _ in 0..3 {
            let ev = wait_for(&mut poll, &mut events, Token(7));
            assert!(ev.is_readable());
        }

        // Drain the socket: readiness clears.
        let mut buf = [0u8; 16];
        let n = a.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello");
        poll.poll(&mut events, ZERO).unwrap();
        assert!(events.iter().all(|e| e.token() != Token(7)));
    }

    #[test]
    fn spurious_wakeup_tolerance() {
        // A poll that returns with zero events (timeout or EINTR) must be
        // harmless: nothing to act on, loop goes straight back to sleep.
        let mut poll = Poll::new().unwrap();
        let registry = poll.registry();
        let mut events = Events::with_capacity(4);
        let (a, _b) = pair();
        a.set_nonblocking(true).unwrap();
        registry.register(&a, Token(3), Interest::READABLE).unwrap();
        for _ in 0..5 {
            poll.poll(&mut events, ZERO).unwrap();
            assert!(events.is_empty());
            assert_eq!(events.len(), 0);
        }
    }

    #[test]
    fn hup_maps_to_read_closed_and_readable() {
        let mut poll = Poll::new().unwrap();
        let registry = poll.registry();
        let mut events = Events::with_capacity(8);
        let (mut a, b) = pair();
        a.set_nonblocking(true).unwrap();
        registry.register(&a, Token(9), Interest::READABLE).unwrap();

        drop(b); // peer closes: EPOLLRDHUP/EPOLLHUP
        let ev = wait_for(&mut poll, &mut events, Token(9));
        assert!(ev.is_read_closed());
        // Hang-up implies a read will not block (it observes EOF).
        assert!(ev.is_readable());
        let mut buf = [0u8; 8];
        assert_eq!(a.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn error_condition_maps_to_is_error() {
        // A failed non-blocking connect (connection refused) surfaces as
        // EPOLLERR on the pending socket.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener); // nobody listening on `addr` any more

        let mut poll = Poll::new().unwrap();
        let registry = poll.registry();
        let mut events = Events::with_capacity(8);
        let stream = match net::connect_nonblocking(addr) {
            Ok(s) => s,
            // Immediate refusal without EINPROGRESS also proves the path.
            Err(_) => return,
        };
        registry
            .register(&stream, Token(4), Interest::READABLE | Interest::WRITABLE)
            .unwrap();
        let ev = wait_for(&mut poll, &mut events, Token(4));
        assert!(ev.is_error());
        assert!(stream.take_error().unwrap().is_some());
    }

    #[test]
    fn nonblocking_connect_success() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut poll = Poll::new().unwrap();
        let registry = poll.registry();
        let mut events = Events::with_capacity(8);

        let stream = net::connect_nonblocking(addr).unwrap();
        registry
            .register(&stream, Token(5), Interest::WRITABLE)
            .unwrap();
        let ev = wait_for(&mut poll, &mut events, Token(5));
        assert!(ev.is_writable());
        assert!(!ev.is_error());
        assert!(stream.take_error().unwrap().is_none());
        let (_peer, _) = listener.accept().unwrap();
    }

    #[test]
    fn waker_wakes_poll_from_other_thread() {
        let mut poll = Poll::new().unwrap();
        let registry = poll.registry();
        let mut events = Events::with_capacity(8);
        let waker = Arc::new(Waker::new(&registry, Token(99)).unwrap());

        let w = Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            w.wake().unwrap();
        });
        let ev = wait_for(&mut poll, &mut events, Token(99));
        assert!(ev.is_readable());
        waker.drain();
        handle.join().unwrap();

        // Edge-triggered: no repeat event until the next wake.
        poll.poll(&mut events, ZERO).unwrap();
        assert!(events.iter().all(|e| e.token() != Token(99)));
        waker.wake().unwrap();
        let ev = wait_for(&mut poll, &mut events, Token(99));
        assert!(ev.is_readable());
    }

    /// Loopback echo round-trip where the server side is driven purely by
    /// the reactor: accept, read, and write all happen in response to
    /// readiness events — no blocking calls, no helper threads on the
    /// server side.
    #[test]
    fn reactor_driven_loopback_echo() {
        const LISTENER: Token = Token(0);
        const CONN: Token = Token(1);

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();

        let mut poll = Poll::new().unwrap();
        let registry = poll.registry();
        let mut events = Events::with_capacity(16);
        registry
            .register(&listener, LISTENER, Interest::READABLE)
            .unwrap();

        let client = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).unwrap();
            c.write_all(b"ziggy says hi").unwrap();
            let mut buf = Vec::new();
            let mut chunk = [0u8; 64];
            loop {
                let n = c.read(&mut chunk).unwrap();
                buf.extend_from_slice(&chunk[..n]);
                if buf.len() >= 13 {
                    break;
                }
            }
            buf
        });

        let mut conn: Option<TcpStream> = None;
        let mut pending: Vec<u8> = Vec::new();
        let mut echoed = 0usize;
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        'outer: while std::time::Instant::now() < deadline {
            poll.poll(&mut events, SHORT).unwrap();
            for ev in &events {
                match ev.token() {
                    LISTENER => {
                        if let Ok((stream, _)) = listener.accept() {
                            stream.set_nonblocking(true).unwrap();
                            registry
                                .register(&stream, CONN, Interest::READABLE | Interest::WRITABLE)
                                .unwrap();
                            conn = Some(stream);
                        }
                    }
                    CONN => {
                        let stream = conn.as_mut().unwrap();
                        if ev.is_readable() {
                            let mut buf = [0u8; 64];
                            match stream.read(&mut buf) {
                                Ok(0) => break 'outer,
                                Ok(n) => pending.extend_from_slice(&buf[..n]),
                                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {}
                                Err(e) => panic!("read: {e}"),
                            }
                        }
                        if ev.is_writable() && !pending.is_empty() {
                            match stream.write(&pending) {
                                Ok(n) => {
                                    pending.drain(..n);
                                    echoed += n;
                                }
                                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {}
                                Err(e) => panic!("write: {e}"),
                            }
                        }
                    }
                    _ => unreachable!(),
                }
            }
            if echoed >= 13 {
                break;
            }
        }
        assert_eq!(client.join().unwrap(), b"ziggy says hi");
    }
}
