//! The JSON-shaped value tree shared by the `serde` and `serde_json`
//! shims.

/// A JSON number, kept in its narrowest faithful representation so `u64`
/// timings survive round trips that `f64` could not represent exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Signed integer.
    I(i64),
    /// Unsigned integer (used when the value exceeds `i64::MAX`).
    U(u64),
    /// Floating point.
    F(f64),
}

impl Number {
    /// The value as `f64` (lossy above 2^53).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::I(i) => i as f64,
            Number::U(u) => u as f64,
            Number::F(f) => f,
        }
    }

    /// The value as `u64`, when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::I(i) if i >= 0 => Some(i as u64),
            Number::U(u) => Some(u),
            Number::F(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            _ => None,
        }
    }

    /// The value as `i64`, when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::I(i) => Some(i),
            Number::U(u) if u <= i64::MAX as u64 => Some(u as i64),
            Number::F(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 => {
                Some(f as i64)
            }
            _ => None,
        }
    }

    /// Range-checked integer conversion used by the primitive
    /// `Deserialize` impls.
    pub fn to_int<T>(&self, type_name: &str) -> Result<T, crate::de::Error>
    where
        T: TryFrom<i64> + TryFrom<u64>,
    {
        if let Some(u) = self.as_u64() {
            if let Ok(x) = T::try_from(u) {
                return Ok(x);
            }
        }
        if let Some(i) = self.as_i64() {
            if let Ok(x) = T::try_from(i) {
                return Ok(x);
            }
        }
        Err(crate::de::Error::new(format!(
            "number {self:?} out of range for {type_name}"
        )))
    }
}

/// A JSON value tree. Objects preserve insertion order (a `Vec` of
/// pairs), which keeps serialized output deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An ordered set of key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object's pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The number as `u64`, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Member lookup on objects (first match wins); `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|pairs| find(pairs, key))
    }

    /// A short name for the value's type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Linear key lookup in an object's pair list (objects are small).
pub fn find<'a>(pairs: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}
