//! Offline shim for the `serde` crate.
//!
//! The build environment cannot reach crates.io, so this workspace-local
//! crate supplies the serialization surface Ziggy uses: the
//! [`Serialize`]/[`Deserialize`] traits, `#[derive(Serialize, Deserialize)]`
//! (re-exported from the sibling `serde_derive` proc-macro shim), and a
//! JSON-shaped [`value::Value`] tree that `serde_json` (also shimmed)
//! renders and parses.
//!
//! Unlike real serde there is no streaming serializer: `to_value` builds a
//! tree, which is plenty for Ziggy's report/config/table payloads. The
//! supported attribute subset is `#[serde(skip)]`, `#[serde(default)]` and
//! `#[serde(default = "path")]`.

pub use serde_derive::{Deserialize, Serialize};

pub mod de;
pub mod value;

use value::{Number, Value};

/// Types renderable to a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses `self` out of a value tree.
    fn from_value(v: &Value) -> Result<Self, de::Error>;
}

macro_rules! ser_de_int {
    ($($t:ty => $variant:ident as $cast:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::$variant(*self as $cast))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                match v {
                    Value::Number(n) => n.to_int::<$t>(stringify!($t)),
                    other => Err(de::Error::type_mismatch(stringify!($t), other)),
                }
            }
        }
    )*};
}

ser_de_int! {
    u8 => U as u64, u16 => U as u64, u32 => U as u64, u64 => U as u64, usize => U as u64,
    i8 => I as i64, i16 => I as i64, i32 => I as i64, i64 => I as i64, isize => I as i64,
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            // serde_json renders non-finite floats as null; accept it back.
            Value::Null => Ok(f64::NAN),
            other => Err(de::Error::type_mismatch("f64", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(de::Error::type_mismatch("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(de::Error::type_mismatch("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(de::Error::type_mismatch("char", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        T::from_value(v).map(std::sync::Arc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(de::Error::type_mismatch("array", other)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! ser_de_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                match v {
                    Value::Array(items) => {
                        let expected = [$($n,)+].len();
                        if items.len() != expected {
                            return Err(de::Error::new(format!(
                                "expected {expected}-tuple, got array of {}",
                                items.len()
                            )));
                        }
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(de::Error::type_mismatch("tuple (array)", other)),
                }
            }
        }
    )+};
}

ser_de_tuple! {
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize
    for std::collections::HashMap<String, V, S>
{
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        // Deterministic output: HashMap iteration order is arbitrary.
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(de::Error::type_mismatch("object", other)),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(de::Error::type_mismatch("object", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1.0f64, 2.0, 3.0];
        assert_eq!(Vec::<f64>::from_value(&v.to_value()).unwrap(), v);
        let t = (1u32, "x".to_string(), 2.5f64);
        assert_eq!(<(u32, String, f64)>::from_value(&t.to_value()).unwrap(), t);
        let o: Option<u64> = None;
        assert_eq!(Option::<u64>::from_value(&o.to_value()).unwrap(), None);
    }

    #[test]
    fn mismatches_error() {
        assert!(u64::from_value(&Value::Bool(true)).is_err());
        assert!(String::from_value(&Value::Null).is_err());
        assert!(u8::from_value(&Value::Number(Number::U(300))).is_err());
    }
}
