//! Deserialization errors for the `serde` shim.

use crate::value::Value;

/// A deserialization failure with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from any message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }

    /// A required field was absent from the object.
    pub fn missing_field(type_name: &str, field: &str) -> Self {
        Self::new(format!("missing field `{field}` for `{type_name}`"))
    }

    /// The value had the wrong JSON type.
    pub fn type_mismatch(expected: &str, got: &Value) -> Self {
        Self::new(format!("expected {expected}, got {}", got.type_name()))
    }

    /// No enum variant matched the value.
    pub fn unknown_variant(type_name: &str, got: &str) -> Self {
        Self::new(format!("unknown variant `{got}` for enum `{type_name}`"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}
