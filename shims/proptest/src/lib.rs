//! Offline shim for the `proptest` crate.
//!
//! Provides deterministic random-input testing with the API subset the
//! Ziggy property tests use: the [`proptest!`] macro, [`Strategy`] with
//! `prop_filter`/`prop_map`, range strategies, [`collection::vec`],
//! [`sample::select`], [`any`], and `prop_assert*` macros.
//!
//! Differences from real proptest: no shrinking (a failing case panics
//! with the sampled inputs via the standard assertion message), and
//! filters resample the whole value rather than locally rejecting.
//! Sampling is seeded from the test function's name, so failures
//! reproduce across runs.

use std::ops::Range;

pub mod collection;
pub mod sample;

/// Re-exports for `use proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestRng,
    };
}

/// Per-block configuration (only `cases` is interpreted).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Deterministic generator backing all strategies (xoshiro256**).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a), so each test gets a
    /// stable, distinct stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut sm = h;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi);
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Restricts the strategy to values satisfying `pred` (resamples on
    /// rejection; panics with `reason` if the filter looks unsatisfiable).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..100_000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.reason);
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for &str {
    type Value = String;

    /// Interprets the string as a (tiny) regex and samples matching
    /// strings. Supported syntax: literal chars, `[a-z0-9,...]` classes
    /// with ranges, and `{lo,hi}` / `{n}` quantifiers — the subset the
    /// Ziggy property tests use.
    fn sample(&self, rng: &mut TestRng) -> String {
        let chars: Vec<char> = self.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // One atom: a class or a literal character.
            let class: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .expect("proptest shim: unterminated [class]")
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        for c in lo..=hi {
                            if let Some(c) = char::from_u32(c) {
                                set.push(c);
                            }
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            // Optional quantifier.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("proptest shim: unterminated {quantifier}")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse::<usize>().expect("bad quantifier"),
                        b.trim().parse::<usize>().expect("bad quantifier"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("bad quantifier");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let count = if lo == hi {
                lo
            } else {
                rng.usize_in(lo, hi + 1)
            };
            for _ in 0..count {
                out.push(class[rng.usize_in(0, class.len())]);
            }
        }
        out
    }
}

/// A strategy always yielding clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// The canonical full-range strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (e.g. `any::<bool>()`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy struct backing [`any`] for primitives.
#[derive(Debug, Clone, Copy)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! any_primitive {
    ($($t:ty => |$rng:ident| $e:expr),* $(,)?) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn sample(&self, $rng: &mut TestRng) -> $t { $e }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy { AnyPrimitive(std::marker::PhantomData) }
        }
    )*};
}

any_primitive! {
    bool => |rng| rng.next_u64() & 1 == 1,
    u8 => |rng| rng.next_u64() as u8,
    u32 => |rng| rng.next_u64() as u32,
    u64 => |rng| rng.next_u64(),
    usize => |rng| rng.next_u64() as usize,
    i32 => |rng| rng.next_u64() as i32,
    i64 => |rng| rng.next_u64() as i64,
    f64 => |rng| rng.unit_f64() * 1e6 - 5e5,
}

/// Inclusive-exclusive size bound for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Minimum length (inclusive).
    pub lo: usize,
    /// Maximum length (exclusive).
    pub hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let x = (-3.0..7.0f64).sample(&mut rng);
            assert!((-3.0..7.0).contains(&x));
            let n = (5..9usize).sample(&mut rng);
            assert!((5..9).contains(&n));
            let i = (-10..-2i32).sample(&mut rng);
            assert!((-10..-2).contains(&i));
        }
    }

    #[test]
    fn filter_resamples() {
        let mut rng = TestRng::deterministic("filter");
        let s = (0..100usize).prop_filter("even", |n| n % 2 == 0);
        for _ in 0..200 {
            assert_eq!(s.sample(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn determinism_by_name() {
        let mut a = TestRng::deterministic("same");
        let mut b = TestRng::deterministic("same");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: args bind, bodies run, asserts work.
        #[test]
        fn macro_smoke(xs in crate::collection::vec(0.0..1.0f64, 1..8), flag in any::<bool>()) {
            prop_assert!(!xs.is_empty() && xs.len() < 8);
            let idx = if flag { 0 } else { xs.len() - 1 };
            prop_assert!((0.0..1.0).contains(&xs[idx]));
        }
    }
}
