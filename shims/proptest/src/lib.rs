//! Offline shim for the `proptest` crate.
//!
//! Provides deterministic random-input testing with the API subset the
//! Ziggy property tests use: the [`proptest!`] macro, [`Strategy`] with
//! `prop_filter`/`prop_map`, range strategies, [`collection::vec`],
//! [`sample::select`], [`any`], and `prop_assert*` macros.
//!
//! On failure the runner **shrinks**: each strategy proposes simpler
//! candidate values ([`Strategy::shrink`] — binary-search style for
//! numeric ranges, length/element reduction for vectors), the runner
//! greedily accepts any candidate that still fails (announcing the
//! acceptance back via [`Strategy::note_accepted`]), and the final
//! panic reports the *minimal* failing input alongside the originally
//! sampled one. `prop_map` is not invertible, so [`Map`] shrinks in
//! *source space*: it remembers the source behind the value under
//! shrinking, shrinks that, and re-maps each candidate — exact for
//! top-level maps, including under `prop_filter` and inside tuples,
//! best-effort when one mapped strategy feeds many live values at once
//! (e.g. as a [`collection::vec`] element). Other differences from real
//! proptest: filters resample the whole value rather than locally
//! rejecting, and regex strategies do not shrink. Sampling is seeded
//! from the test function's name, so failures reproduce across runs.

use std::ops::Range;

pub mod collection;
pub mod sample;

/// Re-exports for `use proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestRng,
    };
}

/// Per-block configuration (only `cases` is interpreted).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Deterministic generator backing all strategies (xoshiro256**).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a), so each test gets a
    /// stable, distinct stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut sm = h;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi);
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Proposes strictly simpler variants of a failing `value`, most
    /// aggressive first. The runner re-tests candidates in order and
    /// greedily moves to the first one that still fails, repeating until
    /// no candidate fails — so a geometric candidate ladder (all the way
    /// down, half way down, quarter way, …, one step) gives
    /// binary-search convergence toward the minimal counterexample.
    /// The default proposes nothing (no shrinking).
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Told by the runner that candidate `idx` of the most recent
    /// [`shrink`](Strategy::shrink) call on `value` now replaces
    /// `value` as the minimal failing input. Stateless strategies
    /// ignore this (the default); [`Map`] uses it to advance its
    /// recorded *source* value in lockstep, and combinators
    /// ([`Filter`], tuples) translate `idx` and forward so a nested
    /// map keeps tracking. Forwarders may recompute the proposal list
    /// — `shrink` is required to be deterministic between acceptances.
    fn note_accepted(&self, _value: &Self::Value, _idx: usize) {}

    /// Restricts the strategy to values satisfying `pred` (resamples on
    /// rejection; panics with `reason` if the filter looks unsatisfiable).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Maps generated values through `f`. The mapped strategy shrinks
    /// by shrinking the recorded *source* value and re-mapping (see
    /// [`Map`]).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            inner: self,
            f,
            state: std::sync::Mutex::new(MapState {
                current: None,
                proposed: Vec::new(),
            }),
        }
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..100_000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.reason);
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        // Only candidates that still satisfy the filter are valid
        // inputs; the rest are dropped, not resampled (shrinking must be
        // deterministic).
        self.inner
            .shrink(value)
            .into_iter()
            .filter(|v| (self.pred)(v))
            .collect()
    }

    fn note_accepted(&self, value: &Self::Value, idx: usize) {
        // `shrink` dropped filter-rejected candidates, so the runner's
        // index counts *surviving* proposals. Recompute the inner list
        // (deterministic between acceptances) to recover the
        // pre-filter index, then forward.
        let mut survivors = 0usize;
        for (inner_idx, candidate) in self.inner.shrink(value).into_iter().enumerate() {
            if (self.pred)(&candidate) {
                if survivors == idx {
                    self.inner.note_accepted(value, inner_idx);
                    return;
                }
                survivors += 1;
            }
        }
    }
}

/// See [`Strategy::prop_map`]. Because `f` is not invertible, this
/// strategy shrinks in **source space**: `sample` records the source
/// behind the value it returns, `shrink` shrinks that recorded source
/// and re-maps each candidate, and [`Strategy::note_accepted`]
/// advances the record when the runner adopts a candidate. Exact
/// whenever one live value is being shrunk at a time (the runner's
/// protocol); when one `Map` feeds many values at once — e.g. as a
/// `collection::vec` element — candidates are still valid re-mapped
/// sources, merely derived from the most recently sampled one.
pub struct Map<S: Strategy, F> {
    inner: S,
    f: F,
    state: std::sync::Mutex<MapState<S::Value>>,
}

struct MapState<V> {
    /// Source of the value currently under shrinking (the last sample,
    /// then each accepted candidate's source in turn).
    current: Option<V>,
    /// Sources behind the candidates returned by the last `shrink`.
    proposed: Vec<V>,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F>
where
    S::Value: Clone,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        let source = self.inner.sample(rng);
        {
            let mut state = self.state.lock().expect("map shrink state");
            state.current = Some(source.clone());
            state.proposed.clear();
        }
        (self.f)(source)
    }

    fn shrink(&self, _value: &O) -> Vec<O> {
        let mut state = self.state.lock().expect("map shrink state");
        let Some(current) = state.current.clone() else {
            return Vec::new();
        };
        state.proposed = self.inner.shrink(&current);
        state.proposed.iter().cloned().map(&self.f).collect()
    }

    fn note_accepted(&self, _value: &O, idx: usize) {
        let mut state = self.state.lock().expect("map shrink state");
        let Some(source) = state.proposed.get(idx).cloned() else {
            return;
        };
        // Keep a nested map's own record advancing too: `proposed` is
        // exactly `inner.shrink(current)`, so `idx` is valid there.
        if let Some(current) = state.current.clone() {
            self.inner.note_accepted(&current, idx);
        }
        state.current = Some(source);
        state.proposed.clear();
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        // Geometric ladder toward the range start: all the way down,
        // then half the distance, quarter, … — binary-search
        // convergence under the runner's greedy accept.
        let span = value - self.start;
        if !span.is_finite() || span <= 0.0 {
            return Vec::new();
        }
        let mut out = vec![self.start];
        let mut delta = span / 2.0;
        while delta.is_normal() && delta > span * 1e-9 {
            out.push(value - delta);
            delta /= 2.0;
        }
        out
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                // Geometric ladder toward the range start (see the f64
                // impl): start, start + span/2, start + 3·span/4, …,
                // value − 2, value − 1.
                let span = (*value as i128) - (self.start as i128);
                if span <= 0 {
                    return Vec::new();
                }
                let mut out = vec![self.start];
                out.extend(
                    shrink_deltas(span)
                        .into_iter()
                        .map(|d| ((*value as i128) - d) as $t),
                );
                out
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for &str {
    type Value = String;

    /// Interprets the string as a (tiny) regex and samples matching
    /// strings. Supported syntax: literal chars, `[a-z0-9,...]` classes
    /// with ranges, and `{lo,hi}` / `{n}` quantifiers — the subset the
    /// Ziggy property tests use.
    fn sample(&self, rng: &mut TestRng) -> String {
        let chars: Vec<char> = self.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // One atom: a class or a literal character.
            let class: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .expect("proptest shim: unterminated [class]")
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        for c in lo..=hi {
                            if let Some(c) = char::from_u32(c) {
                                set.push(c);
                            }
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            // Optional quantifier.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("proptest shim: unterminated {quantifier}")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse::<usize>().expect("bad quantifier"),
                        b.trim().parse::<usize>().expect("bad quantifier"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("bad quantifier");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let count = if lo == hi {
                lo
            } else {
                rng.usize_in(lo, hi + 1)
            };
            for _ in 0..count {
                out.push(class[rng.usize_in(0, class.len())]);
            }
        }
        out
    }
}

/// A strategy always yielding clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// The canonical full-range strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (e.g. `any::<bool>()`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy struct backing [`any`] for primitives.
#[derive(Debug, Clone, Copy)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

/// The distances a shrinking integer steps back toward its minimum,
/// most aggressive first: halvings of the full span, then an explicit
/// −2/−1 tail. The tail matters under filters — a parity-style filter
/// can reject every halving rung, and without single/double steps the
/// greedy walk would stall far from the minimum.
fn shrink_deltas(span: i128) -> Vec<i128> {
    debug_assert!(span > 0);
    let mut deltas = Vec::new();
    let mut d = span / 2;
    while d > 0 {
        deltas.push(d);
        d /= 2;
    }
    for tail in [2, 1] {
        if tail < span && !deltas.contains(&tail) {
            deltas.push(tail);
        }
    }
    deltas.sort_unstable_by(|a, b| b.cmp(a));
    deltas.dedup();
    deltas
}

/// Geometric ladder toward zero for the signed/unsigned `any`
/// strategies (zero, halfway to zero, …, one step toward zero).
fn ladder_toward_zero_i128(value: i128) -> Vec<i128> {
    if value == 0 {
        return Vec::new();
    }
    let sign = value.signum();
    let mut out = vec![0];
    out.extend(
        shrink_deltas(value.abs())
            .into_iter()
            .map(|d| value - sign * d),
    );
    out
}

macro_rules! any_primitive {
    ($($t:ty => |$rng:ident| $e:expr, shrink |$v:ident| $s:expr),* $(,)?) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn sample(&self, $rng: &mut TestRng) -> $t { $e }
            fn shrink(&self, $v: &$t) -> Vec<$t> { $s }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy { AnyPrimitive(std::marker::PhantomData) }
        }
    )*};
}

macro_rules! int_ladder {
    ($v:ident, $t:ty) => {
        ladder_toward_zero_i128(*$v as i128)
            .into_iter()
            .map(|x| x as $t)
            .collect()
    };
}

any_primitive! {
    bool => |rng| rng.next_u64() & 1 == 1,
        shrink |v| if *v { vec![false] } else { Vec::new() },
    u8 => |rng| rng.next_u64() as u8, shrink |v| int_ladder!(v, u8),
    u32 => |rng| rng.next_u64() as u32, shrink |v| int_ladder!(v, u32),
    u64 => |rng| rng.next_u64(), shrink |v| int_ladder!(v, u64),
    usize => |rng| rng.next_u64() as usize, shrink |v| int_ladder!(v, usize),
    i32 => |rng| rng.next_u64() as i32, shrink |v| int_ladder!(v, i32),
    i64 => |rng| rng.next_u64() as i64, shrink |v| int_ladder!(v, i64),
    f64 => |rng| rng.unit_f64() * 1e6 - 5e5,
        shrink |v| {
            if *v == 0.0 || !v.is_finite() { return Vec::new(); }
            let mut out = vec![0.0];
            let mut delta = *v / 2.0;
            while delta.is_normal() && delta.abs() > v.abs() * 1e-9 {
                out.push(*v - delta);
                delta /= 2.0;
            }
            out
        },
}

impl Strategy for () {
    type Value = ();

    fn sample(&self, _rng: &mut TestRng) -> Self::Value {}
}

macro_rules! tuple_strategy {
    ($(($S:ident, $idx:tt)),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+)
        where
            $($S::Value: Clone),+
        {
            type Value = ($($S::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                // One component varies per candidate; the runner's
                // greedy loop alternates components across rounds.
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut simpler = value.clone();
                        simpler.$idx = candidate;
                        out.push(simpler);
                    }
                )+
                out
            }

            fn note_accepted(&self, value: &Self::Value, idx: usize) {
                // Candidates were emitted per component in declaration
                // order; recompute each component's (deterministic)
                // proposal count to locate the accepted one, then
                // forward with the within-component index.
                let mut idx = idx;
                $(
                    let n = self.$idx.shrink(&value.$idx).len();
                    if idx < n {
                        self.$idx.note_accepted(&value.$idx, idx);
                        return;
                    }
                    idx -= n;
                )+
                let _ = idx;
            }
        }
    };
}

tuple_strategy!((S0, 0));
tuple_strategy!((S0, 0), (S1, 1));
tuple_strategy!((S0, 0), (S1, 1), (S2, 2));
tuple_strategy!((S0, 0), (S1, 1), (S2, 2), (S3, 3));
tuple_strategy!((S0, 0), (S1, 1), (S2, 2), (S3, 3), (S4, 4));
tuple_strategy!((S0, 0), (S1, 1), (S2, 2), (S3, 3), (S4, 4), (S5, 5));
tuple_strategy!(
    (S0, 0),
    (S1, 1),
    (S2, 2),
    (S3, 3),
    (S4, 4),
    (S5, 5),
    (S6, 6)
);
tuple_strategy!(
    (S0, 0),
    (S1, 1),
    (S2, 2),
    (S3, 3),
    (S4, 4),
    (S5, 5),
    (S6, 6),
    (S7, 7)
);

/// Inclusive-exclusive size bound for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Minimum length (inclusive).
    pub lo: usize,
    /// Maximum length (exclusive).
    pub hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

/// Hard ceiling on candidate evaluations during one shrink (a property
/// body can be expensive; shrinking is best-effort simplification, not
/// an exhaustive search).
const MAX_SHRINK_CHECKS: usize = 2000;

thread_local! {
    static QUIET_PANICS: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

static INSTALL_QUIET_HOOK: std::sync::Once = std::sync::Once::new();

/// Chains a panic hook that suppresses the default backtrace printing
/// while this thread is probing shrink candidates (each probe *expects*
/// a panic; printing hundreds of them would bury the real report).
/// Other threads' panics still reach the previous hook.
fn install_quiet_hook() {
    INSTALL_QUIET_HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !QUIET_PANICS.with(|q| q.get()) {
                previous(info);
            }
        }));
    });
}

/// Runs `f` with this thread's panic output suppressed (used by the
/// shrink meta-tests, which intentionally provoke failures). Restores
/// the *previous* flag value on exit, so nested scopes (and the probe
/// calls inside [`run_cases`]) compose instead of clobbering each
/// other.
#[doc(hidden)]
pub fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    install_quiet_hook();
    let previous = QUIET_PANICS.with(|q| q.replace(true));
    let result = f();
    QUIET_PANICS.with(|q| q.set(previous));
    result
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Evaluates the property on one value, quietly converting a panic into
/// `Err(message)`.
fn check_quietly<V, F: Fn(&V)>(check: &F, value: &V) -> Result<(), String> {
    let result = with_quiet_panics(|| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| check(value)))
    });
    result.map_err(|p| panic_message(p.as_ref()))
}

/// The [`proptest!`] runner: samples `cfg.cases` inputs from `strategy`
/// and runs `check` on each. On the first failure the input is
/// **shrunk** — [`Strategy::shrink`] proposes simpler candidates (most
/// aggressive first) and the runner greedily moves to the first
/// candidate that still fails, restarting the proposal loop from there,
/// until no candidate fails (a local minimum) or the check budget runs
/// out. The panic then reports the minimal input, the originally
/// sampled one, and the failure message at the minimum.
#[doc(hidden)]
pub fn run_cases<S, F>(name: &str, cfg: &ProptestConfig, strategy: &S, check: F)
where
    S: Strategy,
    S::Value: Clone + std::fmt::Debug,
    F: Fn(&S::Value),
{
    let mut rng = TestRng::deterministic(name);
    for case in 0..cfg.cases {
        let sampled = strategy.sample(&mut rng);
        let Err(original_failure) = check_quietly(&check, &sampled) else {
            continue;
        };
        let mut minimal = sampled.clone();
        let mut failure = original_failure;
        let mut steps = 0usize;
        let mut checks = 0usize;
        'shrinking: loop {
            for (idx, candidate) in strategy.shrink(&minimal).into_iter().enumerate() {
                if checks >= MAX_SHRINK_CHECKS {
                    break 'shrinking;
                }
                checks += 1;
                if let Err(message) = check_quietly(&check, &candidate) {
                    // Announce before replacing: stateful strategies
                    // (prop_map) key the index off the value `shrink`
                    // was called with.
                    strategy.note_accepted(&minimal, idx);
                    minimal = candidate;
                    failure = message;
                    steps += 1;
                    continue 'shrinking;
                }
            }
            break;
        }
        panic!(
            "proptest case {case} of `{name}` failed.\n\
             minimal failing input (after {steps} shrink step(s), {checks} probe(s)): {minimal:?}\n\
             originally sampled input: {sampled:?}\n\
             failure at the minimum: {failure}"
        );
    }
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: each property becomes a
/// function handing a tuple-of-strategies plus a closure over the body
/// to [`run_cases`], which samples, checks, and shrinks on failure.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let __strategy = ($($strat,)*);
                $crate::run_cases(
                    concat!(module_path!(), "::", stringify!($name)),
                    &__cfg,
                    &__strategy,
                    |__case: &_| {
                        let ($($arg,)*) = ::std::clone::Clone::clone(__case);
                        $body
                    },
                );
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let x = (-3.0..7.0f64).sample(&mut rng);
            assert!((-3.0..7.0).contains(&x));
            let n = (5..9usize).sample(&mut rng);
            assert!((5..9).contains(&n));
            let i = (-10..-2i32).sample(&mut rng);
            assert!((-10..-2).contains(&i));
        }
    }

    #[test]
    fn filter_resamples() {
        let mut rng = TestRng::deterministic("filter");
        let s = (0..100usize).prop_filter("even", |n| n % 2 == 0);
        for _ in 0..200 {
            assert_eq!(s.sample(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn determinism_by_name() {
        let mut a = TestRng::deterministic("same");
        let mut b = TestRng::deterministic("same");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: args bind, bodies run, asserts work.
        #[test]
        fn macro_smoke(xs in crate::collection::vec(0.0..1.0f64, 1..8), flag in any::<bool>()) {
            prop_assert!(!xs.is_empty() && xs.len() < 8);
            let idx = if flag { 0 } else { xs.len() - 1 };
            prop_assert!((0.0..1.0).contains(&xs[idx]));
        }
    }

    /// Runs a failing property under [`run_cases`] and returns the
    /// runner's final panic message.
    fn failing_property_report<S>(name: &str, strategy: S, check: impl Fn(&S::Value)) -> String
    where
        S: Strategy,
        S::Value: Clone + std::fmt::Debug,
    {
        let payload = with_quiet_panics(|| {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_cases(name, &ProptestConfig::with_cases(32), &strategy, check);
            }))
        })
        .expect_err("the property must fail");
        panic_message(payload.as_ref())
    }

    #[test]
    fn seeded_failure_shrinks_to_the_known_minimum() {
        // The property "x < 50" over 0..1000 has exactly one minimal
        // counterexample: 50. Whatever value the seeded rng happens to
        // fail on first, binary-search shrinking must land exactly
        // there — not merely somewhere smaller.
        let report = failing_property_report("meta::shrinks_to_minimum", (0usize..1000,), |v| {
            assert!(v.0 < 50, "{} must stay below 50", v.0);
        });
        assert!(
            report.contains("minimal failing input"),
            "report must label the minimum: {report}"
        );
        assert!(
            report.contains("): (50,)"),
            "must shrink exactly to 50: {report}"
        );
        assert!(
            report.contains("originally sampled input"),
            "report must keep the original sample: {report}"
        );
    }

    #[test]
    fn vectors_shrink_length_then_elements() {
        // Failing whenever len >= 3: the minimum is three elements,
        // each shrunk to the range start.
        let report = failing_property_report(
            "meta::vec_minimum",
            (crate::collection::vec(0usize..100, 0..20),),
            |v| {
                assert!(v.0.len() < 3, "vectors of length >= 3 fail");
            },
        );
        assert!(
            report.contains("([0, 0, 0],)"),
            "must shrink to the minimal 3-element zero vector: {report}"
        );
    }

    #[test]
    fn filtered_shrinks_respect_the_filter() {
        // Shrinking an even-only strategy must propose only even values:
        // the minimal failing even value above the threshold is 52, and
        // 50/51 must never be reported even though the unfiltered ladder
        // contains them.
        let strategy = ((0usize..1000).prop_filter("even", |n| n % 2 == 0),);
        let report = failing_property_report("meta::filtered_minimum", strategy, |v| {
            assert_eq!(v.0 % 2, 0, "filter must hold during shrinking");
            assert!(v.0 < 51, "{} must stay below 51", v.0);
        });
        assert!(
            report.contains("): (52,)"),
            "must shrink to the minimal *even* counterexample: {report}"
        );
    }

    #[test]
    fn mapped_failures_shrink_in_source_space() {
        // prop_map is not invertible, so the shim shrinks the *source*
        // and re-maps. The property "v < 100" over
        // (0..1000).prop_map(n → 2n) has minimal failing source 50:
        // the report must say exactly (100,), not merely whatever even
        // value happened to fail first.
        let report = failing_property_report(
            "meta::map_minimum",
            ((0u32..1000).prop_map(|n| n * 2),),
            |v| {
                assert!(v.0 < 100, "{} must stay below 100", v.0);
            },
        );
        assert!(
            report.contains("): (100,)"),
            "must shrink the mapped value to exactly 100: {report}"
        );
    }

    #[test]
    fn filtered_maps_shrink_and_keep_the_filter() {
        // Filter over Map: the filter's index translation must keep
        // the map's source record in lockstep, or the greedy walk
        // would re-map stale sources and stall. Minimal failing
        // multiple of four at or above 100 is 100 itself (source 50).
        let strategy = ((0usize..1000)
            .prop_map(|n| n * 2)
            .prop_filter("multiple of four", |n| n % 4 == 0),);
        let report = failing_property_report("meta::filtered_map_minimum", strategy, |v| {
            assert_eq!(v.0 % 4, 0, "filter must hold during shrinking");
            assert!(v.0 < 100, "{} must stay below 100", v.0);
        });
        assert!(
            report.contains("): (100,)"),
            "must shrink to the minimal multiple of four: {report}"
        );
    }

    #[test]
    fn passing_properties_never_invoke_shrinking() {
        // Sanity: run_cases on a passing property completes silently.
        run_cases(
            "meta::passing",
            &ProptestConfig::with_cases(16),
            &(0usize..10, any::<bool>()),
            |v: &(usize, bool)| {
                assert!(v.0 < 10);
            },
        );
    }
}
