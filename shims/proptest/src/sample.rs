//! Sampling strategies (`prop::sample::select`).

use crate::{Strategy, TestRng};

/// Strategy drawing uniformly from a fixed list.
pub struct Select<T> {
    items: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.items[rng.usize_in(0, self.items.len())].clone()
    }
}

/// Uniform choice among `items` (must be non-empty).
pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "select requires at least one item");
    Select { items }
}
