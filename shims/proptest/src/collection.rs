//! Collection strategies (`prop::collection::vec`).

use crate::{SizeRange, Strategy, TestRng};

/// Strategy for `Vec<S::Value>` with length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let len = if self.size.lo + 1 >= self.size.hi {
            self.size.lo
        } else {
            rng.usize_in(self.size.lo, self.size.hi)
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        // Length first — dropping elements simplifies more than any
        // per-element change. Geometric ladder of truncations toward
        // the minimum length: lo, lo + slack/2, …, len − 1.
        let len = value.len();
        if len > self.size.lo {
            let slack = len - self.size.lo;
            out.push(value[..self.size.lo].to_vec());
            let mut delta = slack / 2;
            while delta > 0 {
                out.push(value[..len - delta].to_vec());
                delta /= 2;
            }
        }
        // Then element simplification: every candidate of every
        // position, one position varied per candidate.
        for (index, element) in value.iter().enumerate() {
            for candidate in self.element.shrink(element) {
                let mut simpler = value.clone();
                simpler[index] = candidate;
                out.push(simpler);
            }
        }
        out
    }
}

/// Vectors of values from `element`, with length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
