//! Collection strategies (`prop::collection::vec`).

use crate::{SizeRange, Strategy, TestRng};

/// Strategy for `Vec<S::Value>` with length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let len = if self.size.lo + 1 >= self.size.hi {
            self.size.lo
        } else {
            rng.usize_in(self.size.lo, self.size.hi)
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Vectors of values from `element`, with length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
