//! Offline shim for the `criterion` crate.
//!
//! A minimal wall-clock benchmarking harness exposing the API subset the
//! Ziggy benches use: [`Criterion::bench_function`],
//! [`Criterion::bench_with_input`], [`Criterion::benchmark_group`],
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Each benchmark warms up briefly, then
//! times batches until enough wall-clock signal accumulates, printing
//! `name: time/iter` lines. No statistics, plots, or baselines.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark label, possibly parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Label `"{name}/{parameter}"`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{parameter}", name.into()),
        }
    }

    /// Label from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { label: s }
    }
}

/// Runs closures under timing; passed to bench bodies as `b`.
pub struct Bencher {
    /// Nanoseconds per iteration, measured by the last [`Bencher::iter`].
    pub(crate) ns_per_iter: f64,
    pub(crate) min_time: Duration,
}

impl Bencher {
    /// Times `f` repeatedly and records the mean cost per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and per-call estimate.
        let t0 = Instant::now();
        black_box(f());
        let single = t0.elapsed();

        let budget = self.min_time;
        let mut iters: u64 = if single.is_zero() {
            1024
        } else {
            (budget.as_nanos() / single.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };
        let mut total = Duration::ZERO;
        let mut done: u64 = 0;
        while total < budget && done < 10_000_000 {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            total += t.elapsed();
            done += iters;
            iters = iters.saturating_mul(2).min(1_000_000);
        }
        self.ns_per_iter = total.as_nanos() as f64 / done.max(1) as f64;
    }
}

fn run_one(label: &str, min_time: Duration, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        ns_per_iter: f64::NAN,
        min_time,
    };
    f(&mut b);
    if b.ns_per_iter.is_nan() {
        println!("bench {label}: <no iter() call>");
    } else {
        println!("bench {label}: {}", format_ns(b.ns_per_iter));
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s/iter", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms/iter", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs/iter", ns / 1e3)
    } else {
        format!("{ns:.0} ns/iter")
    }
}

/// The top-level harness handle.
pub struct Criterion {
    min_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            min_time: Duration::from_millis(20),
        }
    }
}

impl Criterion {
    /// Mirrors real criterion's CLI hook; accepted and ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Benches a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&id.label, self.min_time, |b| f(b));
        self
    }

    /// Benches a function against one input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&id.label, self.min_time, |b| f(b, input));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            min_time: self.min_time,
            _parent: self,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    min_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Mirrors criterion's sample-size knob; scales the time budget.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Fewer samples in real criterion means the caller expects slow
        // iterations; keep the budget modest either way.
        self.min_time = Duration::from_millis((n as u64).clamp(10, 100));
        self
    }

    /// Mirrors criterion's measurement-time knob.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.min_time = d.min(Duration::from_millis(200));
        self
    }

    /// Benches a function within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.label), self.min_time, |b| {
            f(b)
        });
        self
    }

    /// Benches a function against one input within the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.label), self.min_time, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a bench group entry point, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            min_time: Duration::from_millis(2),
        };
        c.bench_function("smoke", |b| b.iter(|| black_box((0..100u64).sum::<u64>())));
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("in", 7), &7u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }
}
