//! Offline shim for `serde_json`.
//!
//! Renders and parses JSON against the `serde` shim's [`Value`] tree.
//! Covers the API subset Ziggy uses: [`to_string`], [`to_string_pretty`],
//! [`from_str`], [`to_value`], [`from_value`], and the [`Value`] type
//! itself (re-exported). The parser is a recursive-descent implementation
//! with a nesting-depth cap so untrusted request bodies (the `ziggy-serve`
//! HTTP API) cannot overflow the stack.

pub use serde::value::{Number, Value};

mod parse;
mod write;

pub use parse::from_str_value;

/// Errors from JSON rendering or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Self::new(e.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(write::write_compact(&value.to_value()))
}

/// Serializes `value` to an indented JSON string (two spaces).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(write::write_pretty(&value.to_value()))
}

/// Parses a `T` from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse::from_str_value(s)?;
    Ok(T::from_value(&v)?)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Reconstructs a `T` from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(v: &Value) -> Result<T, Error> {
    Ok(T::from_value(v)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trip() {
        let v = Value::Object(vec![
            ("a".into(), Value::Number(Number::I(1))),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("c".into(), Value::String("x\"y\n".into())),
        ]);
        let s = write::write_compact(&v);
        assert_eq!(s, r#"{"a":1,"b":[true,null],"c":"x\"y\n"}"#);
        assert_eq!(from_str_value(&s).unwrap(), v);
    }

    #[test]
    fn typed_round_trip() {
        let xs = vec![1.5f64, -2.0, 3.25];
        let s = to_string(&xs).unwrap();
        let back: Vec<f64> = from_str(&s).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn float_stays_float() {
        let s = to_string(&2.0f64).unwrap();
        assert_eq!(s, "2.0");
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back, 2.0);
    }

    #[test]
    fn u64_precision_survives() {
        let big = u64::MAX - 3;
        let back: u64 = from_str(&to_string(&big).unwrap()).unwrap();
        assert_eq!(back, big);
    }

    #[test]
    fn extreme_floats_use_scientific_notation() {
        for x in [6.7644e-184, -3.2e-9, 1.5e25, f64::MIN_POSITIVE] {
            let s = to_string(&x).unwrap();
            assert!(
                s.contains('e') && s.len() < 32,
                "{x} rendered as {s:?} (len {})",
                s.len()
            );
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, x, "{s}");
        }
        // Ordinary magnitudes stay in plain notation.
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
        assert_eq!(to_string(&0.0f64).unwrap(), "0.0");
        assert_eq!(to_string(&-12.5f64).unwrap(), "-12.5");
    }

    #[test]
    fn non_finite_becomes_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn unicode_escapes_parse() {
        let v: String = from_str(r#""aé😀b""#).unwrap();
        assert_eq!(v, "aé😀b");
    }

    #[test]
    fn pretty_is_indented() {
        let v = Value::Object(vec![(
            "k".into(),
            Value::Array(vec![Value::Number(Number::I(1))]),
        )]);
        let s = write::write_pretty(&v);
        assert!(s.contains("\n  \"k\": [\n    1\n  ]\n"), "{s}");
    }

    #[test]
    fn depth_cap_rejects_bombs() {
        let bomb = "[".repeat(1000) + &"]".repeat(1000);
        assert!(from_str_value(&bomb).is_err());
    }

    #[test]
    fn garbage_rejected() {
        assert!(from_str_value("{\"a\":}").is_err());
        assert!(from_str_value("[1,]").is_err());
        assert!(from_str_value("tru").is_err());
        assert!(from_str_value("1 2").is_err());
        assert!(from_str_value("").is_err());
    }
}
