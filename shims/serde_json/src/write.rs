//! JSON rendering (compact and pretty).

use serde::value::{Number, Value};

pub fn write_compact(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, None, 0);
    out
}

pub fn write_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, Some(2), 0);
    out
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::I(i) => out.push_str(&i.to_string()),
        Number::U(u) => out.push_str(&u.to_string()),
        Number::F(f) => {
            if !f.is_finite() {
                // serde_json behavior: non-finite floats render as null.
                out.push_str("null");
                return;
            }
            // Extreme magnitudes in scientific notation: a p-value like
            // 6.7e-184 must not render as 180 zeros. Rust's `{e}` output
            // is shortest-round-trip, so parsing returns the same f64.
            let abs = f.abs();
            if abs != 0.0 && !(1e-6..1e21).contains(&abs) {
                out.push_str(&format!("{f:e}"));
                return;
            }
            let s = format!("{f}");
            out.push_str(&s);
            // Keep the JSON type float so round trips preserve it.
            if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                out.push_str(".0");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
