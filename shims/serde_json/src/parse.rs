//! Recursive-descent JSON parser with a nesting-depth cap.

use serde::value::{Number, Value};

use crate::Error;

/// Maximum nesting depth accepted. Ziggy payloads are shallow; the cap
/// protects the `ziggy-serve` HTTP endpoint from stack-overflow bombs.
const MAX_DEPTH: usize = 128;

/// Parses JSON text into a [`Value`] tree.
pub fn from_str_value(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::new("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::new(format!(
                "unexpected `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(&rest[..rest.len().min(4)]).or_else(|e| {
                        let valid = e.valid_up_to();
                        if valid == 0 {
                            Err(Error::new("invalid UTF-8 in string"))
                        } else {
                            Ok(std::str::from_utf8(&rest[..valid]).unwrap())
                        }
                    })?;
                    let c = s
                        .chars()
                        .next()
                        .ok_or_else(|| Error::new("invalid UTF-8 in string"))?;
                    if (c as u32) < 0x20 {
                        return Err(Error::new("unescaped control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I(i)));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U(u)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F(f)))
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}
