//! Offline shim for the `rand` crate.
//!
//! Provides [`rngs::StdRng`], [`SeedableRng`] and [`RngExt`] — the subset
//! the `ziggy-synth` sampler uses. The generator is xoshiro256** seeded
//! through SplitMix64, which is deterministic across platforms, so the
//! synthetic dataset twins are reproducible byte-for-byte.

/// Concrete generator types.
pub mod rngs {
    /// The workspace's standard generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        rngs::StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

/// Types that can be sampled uniformly from raw generator output.
pub trait Random: Sized {
    /// Draws one uniform sample.
    fn random_from(rng: &mut rngs::StdRng) -> Self;
}

impl Random for u64 {
    fn random_from(rng: &mut rngs::StdRng) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random_from(rng: &mut rngs::StdRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for bool {
    fn random_from(rng: &mut rngs::StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn random_from(rng: &mut rngs::StdRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Sampling extension methods (mirrors `rand::Rng::random`).
pub trait RngExt {
    /// Draws a uniform sample of type `T`.
    fn random<T: Random>(&mut self) -> T;
}

impl RngExt for rngs::StdRng {
    fn random<T: Random>(&mut self) -> T {
        T::random_from(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = rngs::StdRng::seed_from_u64(42);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.random::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn seeds_differ() {
        let mut a = rngs::StdRng::seed_from_u64(1);
        let mut b = rngs::StdRng::seed_from_u64(2);
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }
}
