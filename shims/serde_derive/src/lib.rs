//! Offline shim for `serde_derive`.
//!
//! Implements `#[derive(Serialize, Deserialize)]` against the value-tree
//! traits of the sibling `serde` shim, parsing the item's token stream by
//! hand (no `syn`/`quote`, which are unavailable offline).
//!
//! Supported shapes: structs with named fields, tuple structs (newtypes
//! serialize transparently, wider tuples as arrays), unit structs, and
//! enums with unit / tuple / struct variants (externally tagged, like
//! real serde). Supported field attributes: `#[serde(skip)]`,
//! `#[serde(default)]`, `#[serde(default = "path")]`. Generics are not
//! supported and produce a compile error naming the offending type.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
struct Field {
    name: String,
    skip: bool,
    /// `Some(None)` for `#[serde(default)]`, `Some(Some(path))` for
    /// `#[serde(default = "path")]`.
    default: Option<Option<String>>,
    is_option: bool,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Derives `serde::Serialize` (value-tree flavor).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

/// Derives `serde::Deserialize` (value-tree flavor).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}

// --------------------------------------------------------------------
// Parsing
// --------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    // Outer attributes and visibility.
    skip_attrs(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);

    let kw = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic type `{name}` is not supported");
    }

    let shape = match kw.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Shape::Unit,
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            _ => panic!("serde shim derive: enum `{name}` has no body"),
        },
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    };
    Item { name, shape }
}

/// Consumes leading `#[...]` attribute groups, returning the raw streams.
fn take_attrs(tokens: &[TokenTree], pos: &mut usize) -> Vec<TokenStream> {
    let mut attrs = Vec::new();
    while matches!(tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *pos += 1;
        match tokens.get(*pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                attrs.push(g.stream());
                *pos += 1;
            }
            _ => panic!("serde shim derive: malformed attribute"),
        }
    }
    attrs
}

fn skip_attrs(tokens: &[TokenTree], pos: &mut usize) {
    let _ = take_attrs(tokens, pos);
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        *pos += 1;
        if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *pos += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(i)) => {
            *pos += 1;
            i.to_string()
        }
        other => panic!("serde shim derive: expected identifier, got {other:?}"),
    }
}

/// Parses `serde(...)` options out of one field's attributes.
fn serde_options(attrs: &[TokenStream]) -> (bool, Option<Option<String>>) {
    let mut skip = false;
    let mut default = None;
    for attr in attrs {
        let toks: Vec<TokenTree> = attr.clone().into_iter().collect();
        match toks.first() {
            Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
            _ => continue,
        }
        let inner = match toks.get(1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
            _ => continue,
        };
        let inner: Vec<TokenTree> = inner.into_iter().collect();
        let mut i = 0;
        while i < inner.len() {
            match &inner[i] {
                TokenTree::Ident(id) => match id.to_string().as_str() {
                    "skip" | "skip_serializing" | "skip_deserializing" => {
                        skip = true;
                        i += 1;
                    }
                    "default" => {
                        if matches!(inner.get(i + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=')
                        {
                            let lit = match inner.get(i + 2) {
                                Some(TokenTree::Literal(l)) => l.to_string(),
                                other => panic!(
                                    "serde shim derive: expected string after default =, got {other:?}"
                                ),
                            };
                            default = Some(Some(lit.trim_matches('"').to_string()));
                            i += 3;
                        } else {
                            default = Some(None);
                            i += 1;
                        }
                    }
                    other => panic!("serde shim derive: unsupported serde attribute `{other}`"),
                },
                TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
                other => panic!("serde shim derive: unexpected token in serde(...): {other:?}"),
            }
        }
    }
    (skip, default)
}

/// Parses named fields `a: T, #[serde(skip)] b: U, ...`.
fn parse_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        let attrs = take_attrs(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut pos);
        let name = expect_ident(&tokens, &mut pos);
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("serde shim derive: expected `:` after field `{name}`, got {other:?}"),
        }
        // Collect the type tokens up to the next top-level comma, tracking
        // angle-bracket depth (commas inside `HashMap<K, V>` don't split).
        let mut angle_depth = 0i32;
        let mut type_tokens: Vec<String> = Vec::new();
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            type_tokens.push(tokens[pos].to_string());
            pos += 1;
        }
        let is_option = type_is_option(&type_tokens);
        let (skip, default) = serde_options(&attrs);
        fields.push(Field {
            name,
            skip,
            default,
            is_option,
        });
    }
    fields
}

/// True when the type's head (ignoring leading path segments) is `Option`.
fn type_is_option(type_tokens: &[String]) -> bool {
    let mut last_ident: Option<&str> = None;
    for t in type_tokens {
        if t == "<" {
            break;
        }
        if t != ":" {
            last_ident = Some(t.as_str());
        }
    }
    last_ident == Some("Option")
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut angle_depth = 0i32;
    let mut count = 1;
    for t in &tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => count += 1,
                _ => {}
            }
        }
    }
    // A trailing comma would overcount by one.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attrs(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        let kind = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantKind::Struct(parse_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("serde shim derive: explicit discriminants are not supported");
        }
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// --------------------------------------------------------------------
// Code generation (string-built, then reparsed)
// --------------------------------------------------------------------

const VALUE: &str = "::serde::value::Value";

/// `push` lines serializing `fields` reachable through `accessor` (either
/// `&self.name` for structs or `name` for bound variant fields).
fn ser_named_fields(fields: &[Field], accessor: impl Fn(&Field) -> String) -> String {
    let mut out = String::new();
    for f in fields {
        if f.skip {
            continue;
        }
        out.push_str(&format!(
            "__pairs.push((\"{n}\".to_string(), ::serde::Serialize::to_value({a})));\n",
            n = f.name,
            a = accessor(f)
        ));
    }
    out
}

/// Struct-literal field initializers deserializing `fields` from the
/// object pairs bound to `__pairs`.
fn de_named_fields(type_name: &str, fields: &[Field]) -> String {
    let mut out = String::new();
    for f in fields {
        let missing = if f.skip {
            "::std::default::Default::default()".to_string()
        } else {
            match &f.default {
                Some(None) => "::std::default::Default::default()".to_string(),
                Some(Some(path)) => format!("{path}()"),
                None if f.is_option => "::std::option::Option::None".to_string(),
                None => format!(
                    "return ::std::result::Result::Err(::serde::de::Error::missing_field(\"{type_name}\", \"{n}\"))",
                    n = f.name
                ),
            }
        };
        if f.skip {
            out.push_str(&format!("{n}: {missing},\n", n = f.name));
        } else {
            out.push_str(&format!(
                "{n}: match ::serde::value::find(__pairs, \"{n}\") {{\n\
                 ::std::option::Option::Some(__f) => ::serde::Deserialize::from_value(__f)?,\n\
                 ::std::option::Option::None => {missing},\n\
                 }},\n",
                n = f.name
            ));
        }
    }
    out
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => format!(
            "let mut __pairs: ::std::vec::Vec<(::std::string::String, {VALUE})> = ::std::vec::Vec::new();\n\
             {push}\
             {VALUE}::Object(__pairs)",
            push = ser_named_fields(fields, |f| format!("&self.{}", f.name)),
        ),
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("{VALUE}::Array(vec![{}])", items.join(", "))
        }
        Shape::Unit => format!("{VALUE}::Null"),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => {VALUE}::String(\"{vn}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => {VALUE}::Object(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_value(__f0))]),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => {VALUE}::Object(vec![(\"{vn}\".to_string(), {VALUE}::Array(vec![{items}]))]),\n",
                            binds = binds.join(", "),
                            items = items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{\n\
                             let mut __pairs: ::std::vec::Vec<(::std::string::String, {VALUE})> = ::std::vec::Vec::new();\n\
                             {push}\
                             {VALUE}::Object(vec![(\"{vn}\".to_string(), {VALUE}::Object(__pairs))])\n\
                             }},\n",
                            binds = binds.join(", "),
                            push = ser_named_fields(fields, |f| f.name.clone()),
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> {VALUE} {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => format!(
            "let __pairs = __v.as_object().ok_or_else(|| ::serde::de::Error::type_mismatch(\"object ({name})\", __v))?;\n\
             let _ = __pairs;\n\
             ::std::result::Result::Ok({name} {{\n{fields}}})",
            fields = de_named_fields(name, fields),
        ),
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = __v.as_array().ok_or_else(|| ::serde::de::Error::type_mismatch(\"array ({name})\", __v))?;\n\
                 if __items.len() != {n} {{\n\
                 return ::std::result::Result::Err(::serde::de::Error::new(format!(\"expected {n} elements for {name}, got {{}}\", __items.len())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        Shape::Unit => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantKind::Tuple(1) => payload_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __items = __inner.as_array().ok_or_else(|| ::serde::de::Error::type_mismatch(\"array ({name}::{vn})\", __inner))?;\n\
                             if __items.len() != {n} {{\n\
                             return ::std::result::Result::Err(::serde::de::Error::new(format!(\"expected {n} elements for {name}::{vn}, got {{}}\", __items.len())));\n\
                             }}\n\
                             ::std::result::Result::Ok({name}::{vn}({items}))\n\
                             }},\n",
                            items = items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => payload_arms.push_str(&format!(
                        "\"{vn}\" => {{\n\
                         let __pairs = __inner.as_object().ok_or_else(|| ::serde::de::Error::type_mismatch(\"object ({name}::{vn})\", __inner))?;\n\
                         let _ = __pairs;\n\
                         ::std::result::Result::Ok({name}::{vn} {{\n{fields}}})\n\
                         }},\n",
                        fields = de_named_fields(name, fields),
                    )),
                }
            }
            format!(
                "match __v {{\n\
                 {VALUE}::String(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::std::result::Result::Err(::serde::de::Error::unknown_variant(\"{name}\", __other)),\n\
                 }},\n\
                 {VALUE}::Object(__payload_pairs) if __payload_pairs.len() == 1 => {{\n\
                 let (__tag, __inner) = &__payload_pairs[0];\n\
                 let _ = __inner;\n\
                 match __tag.as_str() {{\n\
                 {payload_arms}\
                 __other => ::std::result::Result::Err(::serde::de::Error::unknown_variant(\"{name}\", __other)),\n\
                 }}\n\
                 }},\n\
                 __other => ::std::result::Result::Err(::serde::de::Error::type_mismatch(\"enum {name}\", __other)),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &{VALUE}) -> ::std::result::Result<Self, ::serde::de::Error> {{\n{body}\n}}\n\
         }}"
    )
}
