//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace-local crate provides the small API subset Ziggy uses —
//! [`Mutex`], [`RwLock`] and their guards — backed by `std::sync`
//! primitives. Poisoning is absorbed (`parking_lot` locks do not poison):
//! a panic while holding a lock leaves the protected data accessible to
//! other threads, matching `parking_lot` semantics closely enough for the
//! engine's caches, which only ever store fully-constructed values.

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard,
};

/// Mutual exclusion primitive (non-poisoning facade over `std`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(StdMutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        })
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Reader-writer lock (non-poisoning facade over `std`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

/// Shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(StdReadGuard<'a, T>);

/// Exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(StdWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        })
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        })
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
