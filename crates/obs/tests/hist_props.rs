//! Property tests: histogram quantile estimates stay within one bucket
//! width of the exact sorted-sample quantiles — including after
//! `merge()` of independently-filled histograms.

use proptest::collection::vec;
use proptest::prelude::*;

use ziggy_obs::{bucket_width_us, Histogram};

const QS: [f64; 6] = [0.0, 0.5, 0.9, 0.95, 0.99, 1.0];

/// The exact `q`-quantile of `samples` under the same rank rule the
/// histogram uses: the ⌈q·n⌉-th smallest sample, clamped to [1, n].
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

fn assert_quantiles_close(hist: &Histogram, samples: &[u64]) {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    for q in QS {
        let exact = exact_quantile(&sorted, q);
        let est = hist.quantile_us(q).expect("non-empty histogram");
        // The estimate is the upper bound of the bucket holding the
        // exact quantile (clamped to the observed max), so it can never
        // undershoot and overshoots by at most that bucket's width.
        assert!(
            est >= exact,
            "q={q}: estimate {est} undershoots exact {exact}"
        );
        let width = bucket_width_us(exact);
        assert!(
            est - exact <= width,
            "q={q}: |{est} - {exact}| exceeds bucket width {width}"
        );
    }
}

// Samples stay within the finite ladder (≤ 9×10^7 µs = 90 s) so every
// bucket has a finite width; overflow behavior has its own unit tests.
const MAX_US: u64 = 90_000_001;

proptest! {
    #[test]
    fn quantiles_within_one_bucket_width(samples in vec(0u64..MAX_US, 1..300)) {
        let hist = Histogram::new();
        for &s in &samples {
            hist.record_us(s);
        }
        prop_assert_eq!(hist.count(), samples.len() as u64);
        assert_quantiles_close(&hist, &samples);
    }

    #[test]
    fn merged_quantiles_within_one_bucket_width(
        left in vec(0u64..MAX_US, 1..200),
        right in vec(0u64..MAX_US, 1..200),
    ) {
        let (a, b) = (Histogram::new(), Histogram::new());
        for &s in &left {
            a.record_us(s);
        }
        for &s in &right {
            b.record_us(s);
        }
        a.merge(&b);
        let combined: Vec<u64> = left.iter().chain(right.iter()).copied().collect();
        prop_assert_eq!(a.count(), combined.len() as u64);
        prop_assert_eq!(
            a.sum_us(),
            combined.iter().sum::<u64>()
        );
        assert_quantiles_close(&a, &combined);
    }

    #[test]
    fn merge_matches_recording_everything_into_one(
        left in vec(0u64..MAX_US, 0..100),
        right in vec(0u64..MAX_US, 0..100),
    ) {
        let (a, b, reference) = (Histogram::new(), Histogram::new(), Histogram::new());
        for &s in &left {
            a.record_us(s);
            reference.record_us(s);
        }
        for &s in &right {
            b.record_us(s);
            reference.record_us(s);
        }
        a.merge(&b);
        prop_assert_eq!(a.snapshot(), reference.snapshot());
    }
}
