//! Request-trace ids.
//!
//! The fleet router mints one id per request and propagates it to the
//! backend via the `X-Request-Id` header; both processes echo it on
//! the response and stamp it on their access-log lines, so one grep
//! over the two logs reconstructs the full hop chain. Callers may
//! supply their own id, which is honored after [`sanitize_trace_id`]
//! confirms it is header- and log-safe.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// The header carrying the trace id end to end.
pub const TRACE_HEADER: &str = "X-Request-Id";

static MINT_SEQ: AtomicU64 = AtomicU64::new(0);

/// Mints a fresh 16-hex-char trace id. Uniqueness comes from mixing
/// the wall clock (ns), the process id, and a process-local sequence
/// number through FNV-1a — no RNG dependency, unique across the
/// processes of one fleet and across restarts.
pub fn mint_trace_id() -> String {
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let pid = std::process::id() as u64;
    let seq = MINT_SEQ.fetch_add(1, Ordering::Relaxed);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for chunk in [nanos, pid, seq] {
        for b in chunk.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    format!("{h:016x}")
}

/// Validates a caller-supplied trace id: 1..=64 chars of
/// `[A-Za-z0-9_-]` (after trimming whitespace), so it can be echoed
/// into response headers and JSON log lines verbatim without any
/// escaping or header-injection risk. Returns the trimmed id, or
/// `None` when the value must be replaced with a minted one.
pub fn sanitize_trace_id(raw: &str) -> Option<&str> {
    let t = raw.trim();
    let ok = !t.is_empty()
        && t.len() <= 64
        && t.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_');
    ok.then_some(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minted_ids_are_distinct_hex() {
        let a = mint_trace_id();
        let b = mint_trace_id();
        assert_ne!(a, b);
        for id in [&a, &b] {
            assert_eq!(id.len(), 16);
            assert!(id.bytes().all(|b| b.is_ascii_hexdigit()));
            assert!(sanitize_trace_id(id).is_some());
        }
    }

    #[test]
    fn sanitize_accepts_safe_ids_and_rejects_hostile_ones() {
        assert_eq!(sanitize_trace_id("abc-DEF_123"), Some("abc-DEF_123"));
        assert_eq!(sanitize_trace_id("  padded  "), Some("padded"));
        assert_eq!(sanitize_trace_id(""), None);
        assert_eq!(sanitize_trace_id("   "), None);
        assert_eq!(sanitize_trace_id("has space"), None);
        assert_eq!(sanitize_trace_id("quote\"inject"), None);
        assert_eq!(sanitize_trace_id("newline\r\nX-Evil: 1"), None);
        assert_eq!(sanitize_trace_id(&"x".repeat(65)), None);
        assert_eq!(sanitize_trace_id(&"x".repeat(64)).map(str::len), Some(64));
    }
}
