//! Prometheus text exposition (format 0.0.4): writer, parser, lint.
//!
//! One document type, [`PromDoc`], serves three roles:
//!
//! * **Writer** — serve and the fleet router build a `PromDoc` from
//!   their counters and [`crate::Histogram`] snapshots and
//!   [`PromDoc::render`] it as the `?format=prometheus` body.
//! * **Parser** — the router [`PromDoc::parse`]s each backend's
//!   exposition, [`PromDoc::absorb`]s it with a `shard="<id>"` label,
//!   and re-renders the merged document — scatter-gather without any
//!   knowledge of which metrics a backend exports.
//! * **Lint** — CI scrapes a live server and [`PromDoc::lint`]s the
//!   result: metric/label name syntax, counter sanity, monotone
//!   cumulative bucket counts, `le="+Inf"` present and equal to
//!   `_count`, `_sum` present.

use crate::hist::{HistogramSnapshot, BUCKET_BOUNDS_US, FINITE_BUCKETS};

/// Metric family type, as declared by a `# TYPE` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PromKind {
    /// Monotonically increasing count.
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Cumulative bucket distribution (`_bucket`/`_sum`/`_count`).
    Histogram,
    /// No declared type.
    Untyped,
}

impl PromKind {
    fn as_str(self) -> &'static str {
        match self {
            PromKind::Counter => "counter",
            PromKind::Gauge => "gauge",
            PromKind::Histogram => "histogram",
            PromKind::Untyped => "untyped",
        }
    }
}

/// An OpenMetrics exemplar: `# {labels} value` trailing a sample line,
/// linking an aggregate bucket back to one concrete observation (we
/// attach a `trace_id` label pointing into the flight recorder).
#[derive(Debug, Clone, PartialEq)]
pub struct PromExemplar {
    /// Exemplar label pairs (for ziggy: `trace_id="<id>"`).
    pub labels: Vec<(String, String)>,
    /// The exemplar's observed value, in the sample's unit (seconds).
    pub value: f64,
}

impl PromExemplar {
    /// An exemplar carrying one `trace_id` label.
    pub fn trace(trace_id: &str, value: f64) -> Self {
        Self {
            labels: vec![("trace_id".to_string(), trace_id.to_string())],
            value,
        }
    }

    /// The value of exemplar label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// One sample line: `name{labels} value [# {exemplar} value]`.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Sample name (for histograms: `<family>_bucket` / `_sum` / `_count`).
    pub name: String,
    /// Label pairs in emission order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
    /// Trailing OpenMetrics exemplar, if any (`_bucket` lines only).
    pub exemplar: Option<PromExemplar>,
}

impl PromSample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// One metric family: a `# TYPE` declaration plus its samples.
#[derive(Debug, Clone, PartialEq)]
pub struct PromFamily {
    /// Family name.
    pub name: String,
    /// Declared type.
    pub kind: PromKind,
    /// Samples, in emission order.
    pub samples: Vec<PromSample>,
}

/// A full exposition document. See the module docs for the three roles.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PromDoc {
    /// Families in emission order.
    pub families: Vec<PromFamily>,
}

fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Formats an `le` bound given in µs as seconds (shortest round-trip
/// decimal, e.g. `0.005`).
fn le_seconds(bound_us: u64) -> String {
    format!("{}", bound_us as f64 / 1e6)
}

impl PromDoc {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// The family named `name`, created with `kind` if absent.
    pub fn family(&mut self, name: &str, kind: PromKind) -> &mut PromFamily {
        if let Some(i) = self.families.iter().position(|f| f.name == name) {
            return &mut self.families[i];
        }
        self.families.push(PromFamily {
            name: name.to_string(),
            kind,
            samples: Vec::new(),
        });
        self.families.last_mut().expect("just pushed")
    }

    fn push_sample(&mut self, family: &str, kind: PromKind, sample: PromSample) {
        self.family(family, kind).samples.push(sample);
    }

    /// Appends one counter sample.
    pub fn counter(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.push_sample(
            name,
            PromKind::Counter,
            PromSample {
                name: name.to_string(),
                labels: own_labels(labels),
                value: value as f64,
                exemplar: None,
            },
        );
    }

    /// Appends one gauge sample.
    pub fn gauge(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.push_sample(
            name,
            PromKind::Gauge,
            PromSample {
                name: name.to_string(),
                labels: own_labels(labels),
                value,
                exemplar: None,
            },
        );
    }

    /// Appends one histogram labelset (`_bucket` lines in **seconds**,
    /// `le="+Inf"`, `_sum`, `_count`) from a snapshot recorded in µs.
    /// Finite buckets past the last non-empty one are elided — the
    /// cumulative count has already reached its total, and `+Inf`
    /// closes the set — keeping idle histograms to three lines. Each
    /// bucket whose snapshot slot retained an [`crate::Exemplar`]
    /// carries it as an OpenMetrics `# {trace_id="…"}` trailer.
    pub fn histogram_us(&mut self, name: &str, labels: &[(&str, &str)], snap: &HistogramSnapshot) {
        let base = own_labels(labels);
        let fam = self.family(name, PromKind::Histogram);
        let bucket_exemplar = |i: usize| {
            snap.exemplars
                .get(i)
                .and_then(|e| e.as_ref())
                .map(|e| PromExemplar::trace(&e.trace_id, e.value_us as f64 / 1e6))
        };
        let last_used = snap.buckets[..FINITE_BUCKETS.min(snap.buckets.len())]
            .iter()
            .rposition(|&c| c != 0);
        let mut cumulative = 0u64;
        if let Some(last) = last_used {
            for (i, &c) in snap.buckets[..=last].iter().enumerate() {
                cumulative += c;
                let mut labels = base.clone();
                labels.push(("le".to_string(), le_seconds(BUCKET_BOUNDS_US[i])));
                fam.samples.push(PromSample {
                    name: format!("{name}_bucket"),
                    labels,
                    value: cumulative as f64,
                    exemplar: bucket_exemplar(i),
                });
            }
        }
        let mut inf_labels = base.clone();
        inf_labels.push(("le".to_string(), "+Inf".to_string()));
        fam.samples.push(PromSample {
            name: format!("{name}_bucket"),
            labels: inf_labels,
            value: snap.count as f64,
            exemplar: bucket_exemplar(FINITE_BUCKETS),
        });
        fam.samples.push(PromSample {
            name: format!("{name}_sum"),
            labels: base.clone(),
            value: snap.sum_us as f64 / 1e6,
            exemplar: None,
        });
        fam.samples.push(PromSample {
            name: format!("{name}_count"),
            labels: base,
            value: snap.count as f64,
            exemplar: None,
        });
    }

    /// Merges `other` into `self`, optionally stamping every absorbed
    /// sample with one extra label (the router adds `shard="<id>"`).
    /// Families with the same name are combined; a declared kind wins
    /// over `Untyped` when the two sides disagree that way.
    pub fn absorb(&mut self, other: PromDoc, extra_label: Option<(&str, &str)>) {
        for mut fam in other.families {
            if let Some((k, v)) = extra_label {
                for s in &mut fam.samples {
                    s.labels.push((k.to_string(), v.to_string()));
                }
            }
            if let Some(existing) = self.families.iter_mut().find(|f| f.name == fam.name) {
                if existing.kind == PromKind::Untyped {
                    existing.kind = fam.kind;
                }
                existing.samples.extend(fam.samples);
            } else {
                self.families.push(fam);
            }
        }
    }

    /// Renders the document as exposition text (one `# TYPE` line per
    /// family, then its samples).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for fam in &self.families {
            out.push_str("# TYPE ");
            out.push_str(&fam.name);
            out.push(' ');
            out.push_str(fam.kind.as_str());
            out.push('\n');
            for s in &fam.samples {
                out.push_str(&s.name);
                if !s.labels.is_empty() {
                    render_labels(&mut out, &s.labels);
                }
                out.push(' ');
                render_value(&mut out, s.value);
                if let Some(ex) = &s.exemplar {
                    out.push_str(" # ");
                    render_labels(&mut out, &ex.labels);
                    out.push(' ');
                    render_value(&mut out, ex.value);
                }
                out.push('\n');
            }
        }
        out
    }

    /// Parses exposition text. Samples whose name matches no declared
    /// family (directly, or as a histogram's `_bucket`/`_sum`/`_count`)
    /// open an `untyped` family of their own name.
    pub fn parse(text: &str) -> Result<PromDoc, String> {
        let mut doc = PromDoc::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let fail = |msg: String| format!("line {}: {msg}", lineno + 1);
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split_whitespace();
                let name = it
                    .next()
                    .ok_or_else(|| fail("TYPE line without a name".into()))?;
                let kind = match it.next() {
                    Some("counter") => PromKind::Counter,
                    Some("gauge") => PromKind::Gauge,
                    Some("histogram") => PromKind::Histogram,
                    Some("untyped") => PromKind::Untyped,
                    other => return Err(fail(format!("bad TYPE kind {other:?}"))),
                };
                if doc.families.iter().any(|f| f.name == name) {
                    return Err(fail(format!("duplicate TYPE for {name}")));
                }
                doc.families.push(PromFamily {
                    name: name.to_string(),
                    kind,
                    samples: Vec::new(),
                });
                continue;
            }
            if line.starts_with('#') {
                continue; // HELP and other comments.
            }
            let sample = parse_sample(line).map_err(fail)?;
            let family = doc
                .families
                .iter_mut()
                .find(|f| sample_belongs_to(f, &sample.name));
            match family {
                Some(f) => f.samples.push(sample),
                None => {
                    let name = sample.name.clone();
                    doc.families.push(PromFamily {
                        name,
                        kind: PromKind::Untyped,
                        samples: vec![sample],
                    });
                }
            }
        }
        Ok(doc)
    }

    /// Validates the document, returning one message per problem
    /// (empty = clean). See the module docs for the checks.
    pub fn lint(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for fam in &self.families {
            if !valid_metric_name(&fam.name) {
                problems.push(format!("family `{}`: invalid metric name", fam.name));
            }
            for s in &fam.samples {
                if !valid_metric_name(&s.name) {
                    problems.push(format!("sample `{}`: invalid metric name", s.name));
                }
                for (k, _) in &s.labels {
                    if !valid_label_name(k) {
                        problems.push(format!("sample `{}`: invalid label name `{k}`", s.name));
                    }
                }
                if s.value.is_nan() {
                    problems.push(format!("sample `{}`: NaN value", s.name));
                }
                if let Some(ex) = &s.exemplar {
                    lint_exemplar(fam, s, ex, &mut problems);
                }
            }
            match fam.kind {
                PromKind::Counter | PromKind::Gauge | PromKind::Untyped => {
                    for s in &fam.samples {
                        if s.name != fam.name {
                            problems.push(format!(
                                "family `{}`: sample `{}` does not match the family name",
                                fam.name, s.name
                            ));
                        }
                        if fam.kind == PromKind::Counter && s.value < 0.0 {
                            problems
                                .push(format!("counter `{}`: negative value {}", s.name, s.value));
                        }
                    }
                }
                PromKind::Histogram => lint_histogram(fam, &mut problems),
            }
        }
        problems
    }
}

fn render_labels(out: &mut String, labels: &[(String, String)]) {
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label_value(v));
        out.push('"');
    }
    out.push('}');
}

fn render_value(out: &mut String, value: f64) {
    if value == value.trunc() && value.abs() < 1e15 {
        out.push_str(&format!("{}", value as i64));
    } else {
        out.push_str(&format!("{}", value));
    }
}

fn own_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

fn sample_belongs_to(fam: &PromFamily, sample_name: &str) -> bool {
    if fam.name == sample_name {
        return true;
    }
    fam.kind == PromKind::Histogram
        && sample_name
            .strip_prefix(fam.name.as_str())
            .is_some_and(|suffix| matches!(suffix, "_bucket" | "_sum" | "_count"))
}

fn valid_metric_name(name: &str) -> bool {
    let mut bytes = name.bytes();
    let Some(first) = bytes.next() else {
        return false;
    };
    let head_ok = first.is_ascii_alphabetic() || first == b'_' || first == b':';
    head_ok && bytes.all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b':')
}

fn valid_label_name(name: &str) -> bool {
    let mut bytes = name.bytes();
    let Some(first) = bytes.next() else {
        return false;
    };
    let head_ok = first.is_ascii_alphabetic() || first == b'_';
    head_ok && bytes.all(|b| b.is_ascii_alphanumeric() || b == b'_')
}

/// Parses one sample line:
/// `name[{k="v",...}] value [timestamp] [# {k="v",...} value [timestamp]]`.
fn parse_sample(line: &str) -> Result<PromSample, String> {
    let (name, rest) = match line.find(['{', ' ', '\t']) {
        Some(i) => (&line[..i], &line[i..]),
        None => return Err(format!("sample without a value: `{line}`")),
    };
    if name.is_empty() {
        return Err(format!("sample without a name: `{line}`"));
    }
    let (labels, value_part) = if let Some(rest) = rest.strip_prefix('{') {
        parse_labels(rest)?
    } else {
        (Vec::new(), rest)
    };
    // A `#` after the value opens an OpenMetrics exemplar. Label values
    // were already consumed above, so this `#` cannot be inside one.
    let (value_part, exemplar_part) = match value_part.find('#') {
        Some(i) => (&value_part[..i], Some(value_part[i + 1..].trim_start())),
        None => (value_part, None),
    };
    let value = parse_value(name, value_part)?;
    let exemplar = match exemplar_part {
        Some(part) => Some(parse_exemplar(name, part)?),
        None => None,
    };
    Ok(PromSample {
        name: name.to_string(),
        labels,
        value,
        exemplar,
    })
}

/// Parses `value [timestamp]` (the optional timestamp is ignored).
fn parse_value(name: &str, part: &str) -> Result<f64, String> {
    let value_text = part
        .split_whitespace()
        .next()
        .ok_or_else(|| format!("sample `{name}` has no value"))?;
    match value_text {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        other => other
            .parse::<f64>()
            .map_err(|_| format!("sample `{name}`: bad value `{other}`")),
    }
}

/// Parses the exemplar trailer after the `#`: `{k="v",...} value [ts]`.
fn parse_exemplar(name: &str, part: &str) -> Result<PromExemplar, String> {
    let rest = part
        .strip_prefix('{')
        .ok_or_else(|| format!("sample `{name}`: exemplar without a labelset"))?;
    let (labels, value_part) = parse_labels(rest)?;
    let value = parse_value(name, value_part).map_err(|e| format!("{e} (in exemplar)"))?;
    Ok(PromExemplar { labels, value })
}

/// Parsed labels plus the remainder after the closing brace.
type ParsedLabels<'a> = (Vec<(String, String)>, &'a str);

/// Parses `k="v",...}` (the opening brace already consumed), returning
/// the labels and the remainder after the closing brace.
fn parse_labels(mut rest: &str) -> Result<ParsedLabels<'_>, String> {
    let mut labels = Vec::new();
    loop {
        rest = rest.trim_start_matches([' ', ',']);
        if let Some(after) = rest.strip_prefix('}') {
            return Ok((labels, after));
        }
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without `=`: `{rest}`"))?;
        let key = rest[..eq].trim().to_string();
        rest = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or_else(|| format!("label `{key}`: value not quoted"))?;
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    Some((_, 'n')) => value.push('\n'),
                    other => return Err(format!("label `{key}`: bad escape {other:?}")),
                },
                '"' => {
                    end = Some(i + 1);
                    break;
                }
                other => value.push(other),
            }
        }
        let end = end.ok_or_else(|| format!("label `{key}`: unterminated value"))?;
        labels.push((key, value));
        rest = &rest[end..];
    }
}

/// Exemplar lint: exemplars are only legal on histogram `_bucket`
/// lines; their label names must be valid, the combined label set must
/// stay within the OpenMetrics 128-rune budget, the value must be a
/// real number no greater than the bucket's `le` bound, and a
/// `trace_id` label (the only exemplar label ziggy emits) must be
/// non-empty.
fn lint_exemplar(fam: &PromFamily, s: &PromSample, ex: &PromExemplar, problems: &mut Vec<String>) {
    let where_ = format!("sample `{}` exemplar", s.name);
    if fam.kind != PromKind::Histogram || s.name != format!("{}_bucket", fam.name) {
        problems.push(format!(
            "{where_}: exemplars are only valid on _bucket lines"
        ));
    }
    let mut runes = 0usize;
    for (k, v) in &ex.labels {
        if !valid_label_name(k) {
            problems.push(format!("{where_}: invalid label name `{k}`"));
        }
        runes += k.chars().count() + v.chars().count();
    }
    if runes > 128 {
        problems.push(format!("{where_}: label set exceeds 128 runes"));
    }
    if ex.value.is_nan() {
        problems.push(format!("{where_}: NaN value"));
    }
    if let Some("") = ex.label("trace_id") {
        problems.push(format!("{where_}: empty trace_id"));
    }
    if let Some(le) = s.label("le") {
        if let Ok(bound) = le.parse::<f64>() {
            if ex.value > bound {
                problems.push(format!(
                    "{where_}: value {} above the bucket's le {bound}",
                    ex.value
                ));
            }
        }
    }
}

/// Histogram-specific lint: per labelset (excluding `le`) the
/// cumulative bucket counts must be monotone over increasing `le`,
/// `le="+Inf"` must be present and equal `_count`, and `_sum` /
/// `_count` must each appear exactly once.
fn lint_histogram(fam: &PromFamily, problems: &mut Vec<String>) {
    use std::collections::BTreeMap;
    #[derive(Default)]
    struct Group {
        buckets: Vec<(f64, f64)>, // (le, cumulative count)
        inf: Option<f64>,
        sum: Vec<f64>,
        count: Vec<f64>,
    }
    let bucket_name = format!("{}_bucket", fam.name);
    let sum_name = format!("{}_sum", fam.name);
    let count_name = format!("{}_count", fam.name);
    let mut groups: BTreeMap<String, Group> = BTreeMap::new();
    for s in &fam.samples {
        let mut key_labels: Vec<(&str, &str)> = s
            .labels
            .iter()
            .filter(|(k, _)| k != "le")
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        key_labels.sort_unstable();
        let key = key_labels
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(",");
        let group = groups.entry(key.clone()).or_default();
        let describe = |what: &str| {
            if key.is_empty() {
                format!("histogram `{}`: {what}", fam.name)
            } else {
                format!("histogram `{}` {{{key}}}: {what}", fam.name)
            }
        };
        if s.name == bucket_name {
            match s.label("le") {
                Some("+Inf") => group.inf = Some(s.value),
                Some(le) => match le.parse::<f64>() {
                    Ok(le) => group.buckets.push((le, s.value)),
                    Err(_) => problems.push(describe(&format!("unparseable le `{le}`"))),
                },
                None => problems.push(describe("bucket sample without an le label")),
            }
        } else if s.name == sum_name {
            group.sum.push(s.value);
        } else if s.name == count_name {
            group.count.push(s.value);
        } else {
            problems.push(format!(
                "histogram `{}`: unexpected sample name `{}`",
                fam.name, s.name
            ));
        }
    }
    for (key, group) in &groups {
        let describe = |what: &str| {
            if key.is_empty() {
                format!("histogram `{}`: {what}", fam.name)
            } else {
                format!("histogram `{}` {{{key}}}: {what}", fam.name)
            }
        };
        let mut sorted = group.buckets.clone();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        for pair in sorted.windows(2) {
            if pair[0].0 == pair[1].0 {
                problems.push(describe(&format!("duplicate le {}", pair[0].0)));
            }
            if pair[1].1 < pair[0].1 {
                problems.push(describe(&format!(
                    "bucket counts not monotone: le {} has {} but le {} has {}",
                    pair[0].0, pair[0].1, pair[1].0, pair[1].1
                )));
            }
        }
        let Some(inf) = group.inf else {
            problems.push(describe("missing le=\"+Inf\" bucket"));
            continue;
        };
        if let Some(last) = sorted.last() {
            if inf < last.1 {
                problems.push(describe("+Inf bucket below the last finite bucket"));
            }
        }
        match group.count.as_slice() {
            [count] => {
                if *count != inf {
                    problems.push(describe(&format!(
                        "_count {count} does not match +Inf bucket {inf}"
                    )));
                }
            }
            [] => problems.push(describe("missing _count")),
            _ => problems.push(describe("multiple _count samples")),
        }
        match group.sum.as_slice() {
            [_] => {}
            [] => problems.push(describe("missing _sum")),
            _ => problems.push(describe("multiple _sum samples")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    fn doc_with_histogram(values_us: &[u64]) -> PromDoc {
        let h = Histogram::new();
        for &v in values_us {
            h.record_us(v);
        }
        let mut doc = PromDoc::new();
        doc.counter("ziggy_requests_total", &[("route", "characterize")], 7);
        doc.gauge("ziggy_uptime_seconds", &[], 12.5);
        doc.histogram_us(
            "ziggy_request_duration_seconds",
            &[("route", "characterize")],
            &h.snapshot(),
        );
        doc
    }

    #[test]
    fn render_parse_round_trip_preserves_structure() {
        let doc = doc_with_histogram(&[150, 4_000, 4_000, 250_000]);
        let text = doc.render();
        let parsed = PromDoc::parse(&text).expect("parses");
        assert_eq!(parsed, doc);
        assert!(parsed.lint().is_empty(), "{:?}", parsed.lint());
    }

    #[test]
    fn rendered_histogram_is_cumulative_in_seconds() {
        let text = doc_with_histogram(&[1_500, 900_000]).render();
        assert!(text.contains("# TYPE ziggy_request_duration_seconds histogram"));
        // 1.5 ms lands in the (1ms, 2ms] bucket → le="0.002".
        assert!(
            text.contains(
                r#"ziggy_request_duration_seconds_bucket{route="characterize",le="0.002"} 1"#
            ),
            "{text}"
        );
        assert!(
            text.contains(
                r#"ziggy_request_duration_seconds_bucket{route="characterize",le="+Inf"} 2"#
            ),
            "{text}"
        );
        assert!(
            text.contains(r#"ziggy_request_duration_seconds_count{route="characterize"} 2"#),
            "{text}"
        );
    }

    #[test]
    fn empty_histogram_renders_only_inf_sum_count() {
        let mut doc = PromDoc::new();
        doc.histogram_us("idle_seconds", &[], &Histogram::new().snapshot());
        let text = doc.render();
        assert_eq!(text.lines().count(), 4, "{text}");
        assert!(PromDoc::parse(&text).unwrap().lint().is_empty());
    }

    #[test]
    fn absorb_adds_the_shard_label_and_merges_families() {
        let mut router = PromDoc::new();
        router.counter("ziggy_requests_total", &[], 1);
        let backend = doc_with_histogram(&[100]);
        router.absorb(backend, Some(("shard", "shard-0")));
        let text = router.render();
        assert_eq!(text.matches("# TYPE ziggy_requests_total").count(), 1);
        assert!(
            text.contains(r#"ziggy_requests_total{route="characterize",shard="shard-0"} 7"#),
            "{text}"
        );
        let parsed = PromDoc::parse(&text).unwrap();
        assert!(parsed.lint().is_empty(), "{:?}", parsed.lint());
    }

    #[test]
    fn label_values_round_trip_escapes() {
        let mut doc = PromDoc::new();
        doc.gauge("g", &[("path", "a\"b\\c\nd")], 1.0);
        let parsed = PromDoc::parse(&doc.render()).unwrap();
        assert_eq!(
            parsed.families[0].samples[0].label("path"),
            Some("a\"b\\c\nd")
        );
    }

    #[test]
    fn lint_flags_broken_documents() {
        let broken = "\
# TYPE h histogram
h_bucket{le=\"0.1\"} 5
h_bucket{le=\"0.2\"} 3
h_bucket{le=\"+Inf\"} 9
h_sum 1.5
h_count 8
# TYPE c counter
c -1
";
        let doc = PromDoc::parse(broken).unwrap();
        let problems = doc.lint();
        assert!(
            problems.iter().any(|p| p.contains("not monotone")),
            "{problems:?}"
        );
        assert!(
            problems.iter().any(|p| p.contains("does not match +Inf")),
            "{problems:?}"
        );
        assert!(
            problems.iter().any(|p| p.contains("negative value")),
            "{problems:?}"
        );

        let missing_inf = "# TYPE h histogram\nh_bucket{le=\"0.1\"} 5\nh_sum 1\nh_count 5\n";
        let problems = PromDoc::parse(missing_inf).unwrap().lint();
        assert!(problems.iter().any(|p| p.contains("+Inf")), "{problems:?}");

        let bad_name = "bad-name 1\n";
        let problems = PromDoc::parse(bad_name).unwrap().lint();
        assert!(
            problems.iter().any(|p| p.contains("invalid metric name")),
            "{problems:?}"
        );
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(PromDoc::parse("# TYPE x teapot\n").is_err());
        assert!(PromDoc::parse("# TYPE x counter\n# TYPE x counter\n").is_err());
        assert!(PromDoc::parse("name{le=\"0.1\" 1\n").is_err());
        assert!(PromDoc::parse("name notanumber\n").is_err());
        assert!(PromDoc::parse("justaname\n").is_err());
    }

    #[test]
    fn exemplars_render_parse_round_trip_and_lint_clean() {
        let h = Histogram::new();
        h.record_us_traced(1_500, "abc123");
        let mut doc = PromDoc::new();
        doc.histogram_us("lat_seconds", &[("route", "characterize")], &h.snapshot());
        let text = doc.render();
        assert!(
            text.contains(
                r#"lat_seconds_bucket{route="characterize",le="0.002"} 1 # {trace_id="abc123"} 0.0015"#
            ),
            "{text}"
        );
        let parsed = PromDoc::parse(&text).expect("parses");
        assert_eq!(parsed, doc);
        assert!(parsed.lint().is_empty(), "{:?}", parsed.lint());
    }

    #[test]
    fn exemplars_survive_absorb_with_a_shard_label() {
        let h = Histogram::new();
        h.record_us_traced(100, "deadbeef");
        let mut backend = PromDoc::new();
        backend.histogram_us("lat_seconds", &[], &h.snapshot());
        let mut router = PromDoc::new();
        router.absorb(backend, Some(("shard", "shard-0")));
        let text = router.render();
        assert!(text.contains(r#"# {trace_id="deadbeef"} 0.0001"#), "{text}");
        assert!(PromDoc::parse(&text).unwrap().lint().is_empty());
    }

    #[test]
    fn lint_flags_misplaced_and_out_of_bucket_exemplars() {
        let text = "\
# TYPE h histogram
h_bucket{le=\"0.1\"} 1 # {trace_id=\"t\"} 5
h_bucket{le=\"+Inf\"} 1
h_sum 0.05
h_count 1
# TYPE c counter
c 1 # {trace_id=\"t\"} 1
";
        let problems = PromDoc::parse(text).unwrap().lint();
        assert!(
            problems.iter().any(|p| p.contains("above the bucket's le")),
            "{problems:?}"
        );
        assert!(
            problems.iter().any(|p| p.contains("only valid on _bucket")),
            "{problems:?}"
        );
    }

    #[test]
    fn parse_rejects_malformed_exemplars() {
        assert!(PromDoc::parse("# TYPE h histogram\nh_bucket{le=\"1\"} 1 # nolabels 2\n").is_err());
        assert!(PromDoc::parse("# TYPE h histogram\nh_bucket{le=\"1\"} 1 # {a=\"b\"}\n").is_err());
    }

    #[test]
    fn parse_tolerates_help_comments_and_timestamps() {
        let text = "# HELP c requests\n# TYPE c counter\nc{a=\"b\"} 4 1721930000123\n";
        let doc = PromDoc::parse(text).unwrap();
        assert_eq!(doc.families.len(), 1);
        assert_eq!(doc.families[0].samples[0].value, 4.0);
        assert!(doc.lint().is_empty());
    }
}
