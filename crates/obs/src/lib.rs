#![warn(missing_docs)]

//! `ziggy-obs` — the observability substrate shared by serve, fleet,
//! and bench.
//!
//! Everything here is dependency-free `std` so any crate in the
//! workspace (including the HTTP layer, which deliberately has no
//! external deps) can record telemetry without pulling anything in:
//!
//! * [`Histogram`] — a mergeable log-linear latency histogram with
//!   lock-free recording (relaxed atomics) and quantile estimation.
//!   The bucket ladder is fixed ({1..9}×10^k µs), so histograms filled
//!   on different shards [`Histogram::merge`] exactly — the router can
//!   scatter-gather per-backend distributions without resampling.
//! * [`trace`] — request-trace ids: minting, and sanitizing
//!   caller-supplied `X-Request-Id` values so they are header- and
//!   log-safe.
//! * [`prom`] — Prometheus text exposition: a [`prom::PromDoc`] that
//!   renders counters / gauges / histograms, *parses* exposition text
//!   back (so the router can relabel and re-serve backend scrapes, and
//!   CI can lint the output), and a [`prom::PromDoc::lint`] validating
//!   names, types, monotone bucket counts, and `_sum`/`_count`
//!   consistency.
//! * [`span`] — spans and the per-process [`FlightRecorder`]: a
//!   bounded, tail-biased ring of recently completed traces, with a
//!   thread-local context stack (the serving stack is
//!   thread-per-request) and `X-Span-Context` propagation across the
//!   fleet hop.
//! * [`LoopStats`] — rounds / failure-streak / duration telemetry for
//!   background loops (the fleet's repair loop and health prober).

pub mod hist;
pub mod prom;
pub mod span;
pub mod trace;

pub use hist::{bucket_bounds_us, bucket_width_us, Exemplar, Histogram, HistogramSnapshot};
pub use prom::{PromDoc, PromExemplar, PromFamily, PromKind, PromSample};
pub use span::{FlightRecorder, Span, SpanGuard, TraceEntry, SPAN_CONTEXT_HEADER};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A named set of histograms with a fixed, `'static` key space —
/// per-route request latency, keyed by a route class the caller
/// derives from the request. Lookups are a linear scan over a handful
/// of entries; recording stays lock-free.
#[derive(Debug)]
pub struct RouteHistograms {
    entries: Vec<(&'static str, Histogram)>,
}

impl RouteHistograms {
    /// A histogram per key. Keys are the full, closed set of route
    /// classes; [`RouteHistograms::record`] with an unknown key is a
    /// silent no-op (telemetry must never panic the data path).
    pub fn new(keys: &[&'static str]) -> Self {
        Self {
            entries: keys.iter().map(|&k| (k, Histogram::new())).collect(),
        }
    }

    /// Records one observation under `key`.
    pub fn record_us(&self, key: &str, us: u64) {
        if let Some((_, h)) = self.entries.iter().find(|(k, _)| *k == key) {
            h.record_us(us);
        }
    }

    /// Records one observation under `key`, retaining `trace_id` as
    /// the bucket's exemplar (see [`Histogram::record_us_traced`]).
    pub fn record_us_traced(&self, key: &str, us: u64, trace_id: &str) {
        if let Some((_, h)) = self.entries.iter().find(|(k, _)| *k == key) {
            h.record_us_traced(us, trace_id);
        }
    }

    /// Iterates `(key, histogram)` pairs in construction order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &Histogram)> {
        self.entries.iter().map(|(k, h)| (*k, h))
    }
}

/// Telemetry for a background loop (repair, prober): round counts, the
/// consecutive-failure streak, a duration histogram, and the time of
/// the last completed round — enough for a probe to tell a wedged loop
/// from an idle one.
#[derive(Debug, Default)]
pub struct LoopStats {
    rounds: AtomicU64,
    failures: AtomicU64,
    consecutive_failures: AtomicU64,
    durations: Histogram,
    last_round: Mutex<Option<Instant>>,
}

impl LoopStats {
    /// A fresh, all-zero stats block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed round: its duration and whether it
    /// succeeded. A success resets the consecutive-failure streak.
    pub fn record_round(&self, duration: Duration, ok: bool) {
        self.rounds.fetch_add(1, Ordering::Relaxed);
        if ok {
            self.consecutive_failures.store(0, Ordering::Relaxed);
        } else {
            self.failures.fetch_add(1, Ordering::Relaxed);
            self.consecutive_failures.fetch_add(1, Ordering::Relaxed);
        }
        self.durations.record(duration);
        if let Ok(mut last) = self.last_round.lock() {
            *last = Some(Instant::now());
        }
    }

    /// Total rounds recorded.
    pub fn rounds(&self) -> u64 {
        self.rounds.load(Ordering::Relaxed)
    }

    /// Total failed rounds.
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }

    /// Failed rounds since the last success (0 while healthy).
    pub fn consecutive_failures(&self) -> u64 {
        self.consecutive_failures.load(Ordering::Relaxed)
    }

    /// The per-round duration distribution.
    pub fn durations(&self) -> &Histogram {
        &self.durations
    }

    /// Time since the last completed round; `None` before the first.
    pub fn last_round_age(&self) -> Option<Duration> {
        self.last_round
            .lock()
            .ok()
            .and_then(|last| last.map(|t| t.elapsed()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_histograms_record_by_key_and_ignore_unknown() {
        let routes = RouteHistograms::new(&["a", "b"]);
        routes.record_us("a", 100);
        routes.record_us("a", 200);
        routes.record_us("nope", 1); // Silent no-op.
        let by_key: Vec<(&str, u64)> = routes.iter().map(|(k, h)| (k, h.count())).collect();
        assert_eq!(by_key, vec![("a", 2), ("b", 0)]);
    }

    #[test]
    fn loop_stats_track_streaks_and_age() {
        let stats = LoopStats::new();
        assert_eq!(stats.last_round_age(), None);
        stats.record_round(Duration::from_millis(2), true);
        stats.record_round(Duration::from_millis(3), false);
        stats.record_round(Duration::from_millis(3), false);
        assert_eq!(stats.rounds(), 3);
        assert_eq!(stats.failures(), 2);
        assert_eq!(stats.consecutive_failures(), 2);
        stats.record_round(Duration::from_millis(1), true);
        assert_eq!(stats.consecutive_failures(), 0);
        assert!(stats.last_round_age().unwrap() < Duration::from_secs(5));
        assert_eq!(stats.durations().count(), 4);
    }
}
