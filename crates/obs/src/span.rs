//! Spans and the in-process flight recorder.
//!
//! A [`Span`] is one timed step of a request: id, parent id, name,
//! start, duration, `key=value` attributes, and an error flag. Spans
//! record into a per-process [`FlightRecorder`] — a bounded ring of
//! recently completed traces, **tail-biased**: when the ring wraps,
//! fast-and-fine traces are evicted before slow or erroring ones, so
//! the traces an operator actually wants to look at survive longest.
//!
//! The serving stack is thread-per-request (a handler runs start to
//! finish on one worker thread), which makes span context a
//! thread-local stack instead of a parameter threaded through every
//! signature: the root [`SpanGuard`] pushes `(recorder, trace, span)`
//! onto the stack, [`child`] opens a sub-span under whatever is
//! current, and [`current`] reads the active ids for header
//! propagation. Code deep in the stack (the durable log's append path)
//! records spans without knowing who is serving the request.
//!
//! Across the fleet hop, context travels in the `X-Span-Context`
//! header as `trace:parent` — the router's upstream-leg span id
//! becomes the parent of the backend's root span, so the assembled
//! trace is one tree spanning both processes.

use std::cell::RefCell;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use crate::trace::{mint_trace_id, sanitize_trace_id};

/// The header carrying `trace:parent` span context across the fleet
/// hop (both halves sanitized like request ids).
pub const SPAN_CONTEXT_HEADER: &str = "X-Span-Context";

/// Default capacity of the committed-trace ring.
pub const DEFAULT_TRACE_CAPACITY: usize = 128;

/// Upper bound on spans retained per trace; later spans are dropped
/// (telemetry must stay bounded even for pathological requests).
pub const MAX_SPANS_PER_TRACE: usize = 256;

/// Upper bound on concurrently *open* traces tracked by the recorder;
/// beyond it the oldest open trace is force-committed.
const MAX_ACTIVE_TRACES: usize = 64;

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Trace this span belongs to (the request's `X-Request-Id`).
    pub trace_id: String,
    /// This span's id (16 hex chars, minted like trace ids).
    pub span_id: String,
    /// Parent span id; `None` for a hop-local root with no remote
    /// parent.
    pub parent_id: Option<String>,
    /// Span name, e.g. `serve.characterize` or `stage.view_search`.
    pub name: String,
    /// Wall-clock start (µs since the Unix epoch).
    pub start_unix_us: u64,
    /// Duration, µs.
    pub duration_us: u64,
    /// `key=value` attributes, in recording order.
    pub attrs: Vec<(String, String)>,
    /// Whether the step failed (4xx/5xx, IO error, …).
    pub error: bool,
}

/// One committed trace: its spans plus the summary fields the ring's
/// eviction policy and the `/debug/traces` listing need.
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// The trace id.
    pub trace_id: String,
    /// Root span name (e.g. `serve.request`).
    pub root_name: String,
    /// Root span's `route` attribute, if recorded (listing filter key).
    pub route: Option<String>,
    /// Wall-clock start of the root span (µs since the Unix epoch).
    pub start_unix_us: u64,
    /// Root span duration, µs.
    pub duration_us: u64,
    /// Whether any span in the trace errored.
    pub error: bool,
    /// Every span of the trace recorded in this process, root included.
    pub spans: Vec<Span>,
}

impl TraceEntry {
    /// Whether the ring's tail-biased eviction pins this trace (slow
    /// or erroring traces outlive fast-and-fine ones).
    fn pinned(&self, slow_us: u64) -> bool {
        self.error || self.duration_us >= slow_us
    }
}

struct ActiveTrace {
    spans: Vec<Span>,
    opened: Instant,
}

/// A per-process bounded ring of recently completed traces.
///
/// Open traces accumulate spans in a side map; when the root span
/// finishes, the whole trace commits into the ring. When the ring is
/// full, the oldest *non-pinned* (fast and error-free) trace is
/// evicted first; only when every resident trace is pinned does plain
/// FIFO apply.
pub struct FlightRecorder {
    capacity: usize,
    slow_us: u64,
    active: Mutex<HashMap<String, ActiveTrace>>,
    ring: Mutex<VecDeque<TraceEntry>>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity)
            .field("slow_us", &self.slow_us)
            .finish_non_exhaustive()
    }
}

fn now_unix_us() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

impl FlightRecorder {
    /// A recorder holding up to `capacity` committed traces, pinning
    /// traces at or past `slow_us` against eviction.
    pub fn new(capacity: usize, slow_us: u64) -> Self {
        Self {
            capacity: capacity.max(1),
            slow_us,
            active: Mutex::new(HashMap::new()),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// The slow-trace pin threshold, µs.
    pub fn slow_us(&self) -> u64 {
        self.slow_us
    }

    /// Registers `trace_id` in the active-trace map (evicting the
    /// longest-open trace when the map is full, exactly like [`root`]).
    fn ensure_active(&self, trace_id: &str) {
        let mut active = self.active.lock().expect("flight recorder active lock");
        if active.len() >= MAX_ACTIVE_TRACES {
            // Force-commit the longest-open trace (its root guard
            // leaked or is wedged); its spans beat losing them.
            let longest_open = active
                .iter()
                .max_by_key(|(_, t)| t.opened.elapsed())
                .map(|(k, _)| k.clone());
            if let Some(id) = longest_open {
                if let Some(t) = active.remove(&id) {
                    drop(active);
                    self.commit_loose(&id, t.spans);
                    active = self.active.lock().expect("flight recorder active lock");
                }
            }
        }
        active.entry(trace_id.to_string()).or_insert(ActiveTrace {
            spans: Vec::new(),
            opened: Instant::now(),
        });
    }

    /// Opens `trace_id` without touching thread-local span context —
    /// the event-loop entry point. A reactor thread interleaves many
    /// requests, so a per-thread guard stack cannot represent "the
    /// current request"; instead the data plane opens the trace here,
    /// records legs with [`record_finished`], and closes the trace
    /// with [`commit_root`].
    pub fn open_trace(&self, trace_id: &str) {
        self.ensure_active(trace_id);
    }

    /// Appends an already-finished span *preserving its caller-minted
    /// span id* — required when the id was propagated to another
    /// process (the router's upstream-leg span id travels in
    /// `X-Span-Context` and becomes the parent of the backend's root,
    /// so the recorded leg must carry that exact id). Lands in the
    /// open trace when one exists, else in the committed ring entry;
    /// spans for unknown traces are dropped.
    pub fn record_finished(&self, span: Span) {
        {
            let mut active = self.active.lock().expect("flight recorder active lock");
            if let Some(t) = active.get_mut(&span.trace_id) {
                if t.spans.len() < MAX_SPANS_PER_TRACE {
                    t.spans.push(span);
                }
                return;
            }
        }
        let mut ring = self.ring.lock().expect("flight recorder ring lock");
        if let Some(entry) = ring.iter_mut().find(|e| e.trace_id == span.trace_id) {
            if entry.spans.len() < MAX_SPANS_PER_TRACE {
                entry.error |= span.error;
                entry.spans.push(span);
            }
        }
    }

    /// Finishes `root` and commits its whole trace to the ring — the
    /// event-loop counterpart of a root [`SpanGuard`] dropping. Spans
    /// previously recorded under the same trace (via
    /// [`record_finished`] or [`record_span`]) ride along.
    pub fn commit_root(&self, root: Span) {
        self.finish_root(root);
    }

    /// Opens the root span of `trace_id` in this process and makes it
    /// the thread's current span context. `parent` is the remote
    /// parent span id carried by `X-Span-Context`, if any.
    pub fn root(self: &Arc<Self>, trace_id: &str, parent: Option<&str>, name: &str) -> SpanGuard {
        self.ensure_active(trace_id);
        let guard = SpanGuard {
            recorder: Arc::clone(self),
            trace_id: trace_id.to_string(),
            span_id: mint_trace_id(),
            parent_id: parent.map(str::to_string),
            name: name.to_string(),
            start: Instant::now(),
            start_unix_us: now_unix_us(),
            attrs: Vec::new(),
            error: false,
            root: true,
        };
        push_context(Arc::clone(self), &guard.trace_id, &guard.span_id);
        guard
    }

    /// Appends an already-finished span to its trace — the escape
    /// hatch for spans measured outside a guard (stage timings lifted
    /// from a report, a background flusher's fsync). Lands in the open
    /// trace when one exists, else in the committed ring entry; spans
    /// for unknown traces are dropped.
    #[allow(clippy::too_many_arguments)]
    pub fn record_span(
        &self,
        trace_id: &str,
        parent_id: Option<&str>,
        name: &str,
        start_unix_us: u64,
        duration_us: u64,
        attrs: &[(&str, String)],
        error: bool,
    ) {
        self.record_finished(Span {
            trace_id: trace_id.to_string(),
            span_id: mint_trace_id(),
            parent_id: parent_id.map(str::to_string),
            name: name.to_string(),
            start_unix_us,
            duration_us,
            attrs: attrs
                .iter()
                .map(|(k, v)| ((*k).to_string(), v.clone()))
                .collect(),
            error,
        });
    }

    fn finish_child(&self, span: Span) {
        let mut active = self.active.lock().expect("flight recorder active lock");
        if let Some(t) = active.get_mut(&span.trace_id) {
            if t.spans.len() < MAX_SPANS_PER_TRACE {
                t.spans.push(span);
            }
        }
    }

    fn finish_root(&self, root: Span) {
        let collected = self
            .active
            .lock()
            .expect("flight recorder active lock")
            .remove(&root.trace_id)
            .map(|t| t.spans)
            .unwrap_or_default();
        let route = root
            .attrs
            .iter()
            .find(|(k, _)| k == "route")
            .map(|(_, v)| v.clone());
        let mut entry = TraceEntry {
            trace_id: root.trace_id.clone(),
            root_name: root.name.clone(),
            route,
            start_unix_us: root.start_unix_us,
            duration_us: root.duration_us,
            error: root.error || collected.iter().any(|s| s.error),
            spans: Vec::with_capacity(collected.len() + 1),
        };
        entry.spans.push(root);
        entry.spans.extend(collected);
        self.commit(entry);
    }

    /// Commits spans whose root guard never closed (forced eviction
    /// from the active map).
    fn commit_loose(&self, trace_id: &str, spans: Vec<Span>) {
        let entry = TraceEntry {
            trace_id: trace_id.to_string(),
            root_name: spans
                .first()
                .map(|s| s.name.clone())
                .unwrap_or_else(|| "unknown".into()),
            route: None,
            start_unix_us: spans.first().map(|s| s.start_unix_us).unwrap_or(0),
            duration_us: spans.iter().map(|s| s.duration_us).max().unwrap_or(0),
            error: spans.iter().any(|s| s.error),
            spans,
        };
        self.commit(entry);
    }

    fn commit(&self, entry: TraceEntry) {
        let mut ring = self.ring.lock().expect("flight recorder ring lock");
        if ring.len() >= self.capacity {
            // Tail-biased eviction: the oldest fast-and-fine trace
            // goes first; FIFO only when everything resident is
            // pinned (slow or erroring).
            let victim = ring
                .iter()
                .position(|e| !e.pinned(self.slow_us))
                .unwrap_or(0);
            ring.remove(victim);
        }
        ring.push_back(entry);
    }

    /// The committed traces, newest first.
    pub fn recent(&self) -> Vec<TraceEntry> {
        let ring = self.ring.lock().expect("flight recorder ring lock");
        ring.iter().rev().cloned().collect()
    }

    /// One trace by id — committed entries first, then still-open ones
    /// (a root that hasn't finished yet shows its spans so far).
    pub fn trace(&self, trace_id: &str) -> Option<TraceEntry> {
        {
            let ring = self.ring.lock().expect("flight recorder ring lock");
            if let Some(entry) = ring.iter().find(|e| e.trace_id == trace_id) {
                return Some(entry.clone());
            }
        }
        let active = self.active.lock().expect("flight recorder active lock");
        active.get(trace_id).map(|t| TraceEntry {
            trace_id: trace_id.to_string(),
            root_name: "(in flight)".into(),
            route: None,
            start_unix_us: t.spans.first().map(|s| s.start_unix_us).unwrap_or(0),
            duration_us: 0,
            error: t.spans.iter().any(|s| s.error),
            spans: t.spans.clone(),
        })
    }
}

/// An open span, closed (and recorded) on drop.
///
/// Root guards (from [`FlightRecorder::root`]) also own the thread's
/// span-context frame; child guards (from [`child`]) nest under it.
pub struct SpanGuard {
    recorder: Arc<FlightRecorder>,
    trace_id: String,
    span_id: String,
    parent_id: Option<String>,
    name: String,
    start: Instant,
    start_unix_us: u64,
    attrs: Vec<(String, String)>,
    error: bool,
    root: bool,
}

impl SpanGuard {
    /// This span's id.
    pub fn span_id(&self) -> &str {
        &self.span_id
    }

    /// The trace this span belongs to.
    pub fn trace_id(&self) -> &str {
        &self.trace_id
    }

    /// Attaches a `key=value` attribute.
    pub fn attr(&mut self, key: &str, value: impl Into<String>) {
        self.attrs.push((key.to_string(), value.into()));
    }

    /// Marks the span as failed.
    pub fn set_error(&mut self, error: bool) {
        self.error = error;
    }

    /// Elapsed time since the span opened.
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let span = Span {
            trace_id: std::mem::take(&mut self.trace_id),
            span_id: std::mem::take(&mut self.span_id),
            parent_id: self.parent_id.take(),
            name: std::mem::take(&mut self.name),
            start_unix_us: self.start_unix_us,
            duration_us: self.start.elapsed().as_micros() as u64,
            attrs: std::mem::take(&mut self.attrs),
            error: self.error,
        };
        pop_context();
        if self.root {
            self.recorder.finish_root(span);
        } else {
            self.recorder.finish_child(span);
        }
    }
}

struct CtxFrame {
    recorder: Arc<FlightRecorder>,
    trace_id: String,
    span_id: String,
}

thread_local! {
    static CONTEXT: RefCell<Vec<CtxFrame>> = const { RefCell::new(Vec::new()) };
}

fn push_context(recorder: Arc<FlightRecorder>, trace_id: &str, span_id: &str) {
    CONTEXT.with(|ctx| {
        ctx.borrow_mut().push(CtxFrame {
            recorder,
            trace_id: trace_id.to_string(),
            span_id: span_id.to_string(),
        })
    });
}

fn pop_context() {
    CONTEXT.with(|ctx| {
        ctx.borrow_mut().pop();
    });
}

/// Opens a child span under the thread's current span context, or
/// returns `None` when no root is active on this thread (instrumented
/// code running outside a request records nothing).
pub fn child(name: &str) -> Option<SpanGuard> {
    let (recorder, trace_id, parent_id) = CONTEXT.with(|ctx| {
        ctx.borrow().last().map(|f| {
            (
                Arc::clone(&f.recorder),
                f.trace_id.clone(),
                f.span_id.clone(),
            )
        })
    })?;
    let guard = SpanGuard {
        recorder,
        trace_id,
        span_id: mint_trace_id(),
        parent_id: Some(parent_id),
        name: name.to_string(),
        start: Instant::now(),
        start_unix_us: now_unix_us(),
        attrs: Vec::new(),
        error: false,
        root: false,
    };
    push_context(Arc::clone(&guard.recorder), &guard.trace_id, &guard.span_id);
    Some(guard)
}

/// The thread's current `(trace_id, span_id)`, for header propagation
/// and out-of-band span recording; `None` outside a request.
pub fn current() -> Option<(String, String)> {
    CONTEXT.with(|ctx| {
        ctx.borrow()
            .last()
            .map(|f| (f.trace_id.clone(), f.span_id.clone()))
    })
}

/// Removes an adopted span-context frame when dropped; see [`adopt`].
pub struct AdoptGuard {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for AdoptGuard {
    fn drop(&mut self) {
        pop_context();
    }
}

/// Installs a span-context frame on *this* thread, so [`child`] spans
/// opened here nest under a root that lives on another thread. Pairs
/// with [`current_recorder`]: a request handler captures its frame,
/// fans work out to scoped threads, and each worker adopts the frame
/// for its lifetime (the guard pops it on drop) — that is how the
/// router's parallel ingest legs end up inside the request's trace.
pub fn adopt(recorder: Arc<FlightRecorder>, trace_id: &str, span_id: &str) -> AdoptGuard {
    push_context(recorder, trace_id, span_id);
    AdoptGuard {
        _not_send: std::marker::PhantomData,
    }
}

/// The thread's current context frame *including its recorder* —
/// for handing span recording to a background thread (the durable
/// flusher records its group-commit fsync under the trace of the
/// request that queued the append).
pub fn current_recorder() -> Option<(Arc<FlightRecorder>, String, String)> {
    CONTEXT.with(|ctx| {
        ctx.borrow().last().map(|f| {
            (
                Arc::clone(&f.recorder),
                f.trace_id.clone(),
                f.span_id.clone(),
            )
        })
    })
}

/// Renders the `X-Span-Context` value: `trace:parent`.
pub fn encode_span_context(trace_id: &str, span_id: &str) -> String {
    format!("{trace_id}:{span_id}")
}

/// Parses and sanitizes an `X-Span-Context` value back into
/// `(trace, parent)`; both halves must pass the request-id alphabet
/// check or the whole header is discarded.
pub fn parse_span_context(raw: &str) -> Option<(&str, &str)> {
    let (trace, parent) = raw.trim().split_once(':')?;
    Some((sanitize_trace_id(trace)?, sanitize_trace_id(parent)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn recorder() -> Arc<FlightRecorder> {
        Arc::new(FlightRecorder::new(4, 250_000))
    }

    #[test]
    fn root_and_children_assemble_one_trace() {
        let rec = recorder();
        {
            let mut root = rec.root("trace-1", None, "serve.request");
            root.attr("route", "characterize");
            {
                let mut c = child("serve.handler").expect("context active");
                c.attr("reuse", "3");
                let grandchild = child("stage.prepare").expect("context active");
                drop(grandchild);
                drop(c);
            }
            assert!(current().is_some());
        }
        assert!(current().is_none(), "context must unwind with the root");
        let entry = rec.trace("trace-1").expect("trace committed");
        assert_eq!(entry.root_name, "serve.request");
        assert_eq!(entry.route.as_deref(), Some("characterize"));
        assert_eq!(entry.spans.len(), 3);
        let root_id = &entry.spans[0].span_id;
        let handler = entry
            .spans
            .iter()
            .find(|s| s.name == "serve.handler")
            .unwrap();
        assert_eq!(handler.parent_id.as_ref(), Some(root_id));
        let stage = entry
            .spans
            .iter()
            .find(|s| s.name == "stage.prepare")
            .unwrap();
        assert_eq!(stage.parent_id.as_ref(), Some(&handler.span_id));
        assert!(!entry.error);
    }

    #[test]
    fn no_context_means_no_span() {
        assert!(child("orphan").is_none());
        assert!(current().is_none());
    }

    #[test]
    fn tail_biased_eviction_pins_slow_and_erroring_traces() {
        let rec = Arc::new(FlightRecorder::new(2, 1_000_000));
        {
            let mut g = rec.root("slow", None, "r");
            g.set_error(true); // Pinned via the error flag.
        }
        drop(rec.root("fast-1", None, "r"));
        drop(rec.root("fast-2", None, "r"));
        // Capacity 2: fast-1 must have been evicted, not `slow`.
        assert!(rec.trace("slow").is_some(), "pinned trace evicted");
        assert!(rec.trace("fast-1").is_none());
        assert!(rec.trace("fast-2").is_some());
        // All-pinned ring degrades to FIFO instead of growing.
        {
            let mut g = rec.root("err-1", None, "r");
            g.set_error(true);
        }
        {
            let mut g = rec.root("err-2", None, "r");
            g.set_error(true);
        }
        assert_eq!(rec.recent().len(), 2);
    }

    #[test]
    fn record_span_lands_in_committed_traces() {
        let rec = recorder();
        drop(rec.root("t", None, "serve.request"));
        rec.record_span(
            "t",
            None,
            "durable.fsync",
            now_unix_us(),
            1234,
            &[("batch", "3".to_string())],
            false,
        );
        let entry = rec.trace("t").unwrap();
        assert_eq!(entry.spans.len(), 2);
        let fsync = entry.spans.iter().find(|s| s.name == "durable.fsync");
        assert_eq!(fsync.unwrap().attrs, vec![("batch".into(), "3".into())]);
        // Unknown traces are dropped silently.
        rec.record_span("nope", None, "x", 0, 1, &[], false);
        assert!(rec.trace("nope").is_none());
    }

    #[test]
    fn manual_open_record_commit_assembles_event_loop_trace() {
        // The reactor path: no thread-local guards, caller-minted span
        // ids, interleaved traces on one thread.
        let rec = recorder();
        rec.open_trace("evt-a");
        rec.open_trace("evt-b");
        let start = now_unix_us();
        rec.record_finished(Span {
            trace_id: "evt-a".into(),
            span_id: "leg00000000000a".into(),
            parent_id: Some("root0000000000a".into()),
            name: "fleet.upstream".into(),
            start_unix_us: start,
            duration_us: 7,
            attrs: vec![("backend".into(), "shard-0".into())],
            error: false,
        });
        rec.commit_root(Span {
            trace_id: "evt-b".into(),
            span_id: "root0000000000b".into(),
            parent_id: None,
            name: "fleet.request".into(),
            start_unix_us: start,
            duration_us: 11,
            attrs: vec![("route".into(), "characterize".into())],
            error: false,
        });
        rec.commit_root(Span {
            trace_id: "evt-a".into(),
            span_id: "root0000000000a".into(),
            parent_id: None,
            name: "fleet.request".into(),
            start_unix_us: start,
            duration_us: 13,
            attrs: vec![("route".into(), "characterize".into())],
            error: false,
        });
        let a = rec.trace("evt-a").expect("trace a committed");
        assert_eq!(a.root_name, "fleet.request");
        assert_eq!(a.route.as_deref(), Some("characterize"));
        assert_eq!(a.spans.len(), 2);
        assert_eq!(a.spans[0].span_id, "root0000000000a");
        let leg = a.spans.iter().find(|s| s.name == "fleet.upstream").unwrap();
        // The caller-minted leg id survives verbatim (it was already
        // propagated to the backend as the remote parent).
        assert_eq!(leg.span_id, "leg00000000000a");
        assert_eq!(leg.parent_id.as_deref(), Some("root0000000000a"));
        let b = rec.trace("evt-b").expect("trace b committed");
        assert_eq!(b.spans.len(), 1);
        // Late spans for an already-committed trace still land.
        rec.record_finished(Span {
            trace_id: "evt-b".into(),
            span_id: "late0000000000b".into(),
            parent_id: Some("root0000000000b".into()),
            name: "fleet.upstream".into(),
            start_unix_us: start,
            duration_us: 3,
            attrs: Vec::new(),
            error: true,
        });
        let b = rec.trace("evt-b").unwrap();
        assert_eq!(b.spans.len(), 2);
        assert!(b.error, "late erroring span flips the trace error flag");
    }

    #[test]
    fn span_context_round_trips_and_rejects_hostile_values() {
        let v = encode_span_context("abc123", "def456");
        assert_eq!(parse_span_context(&v), Some(("abc123", "def456")));
        assert_eq!(parse_span_context("missing-colon"), None);
        assert_eq!(parse_span_context("bad header:ok"), None);
        assert_eq!(parse_span_context("ok:inject\r\nX-Evil: 1"), None);
        assert_eq!(parse_span_context(" t:p "), Some(("t", "p")));
    }

    #[test]
    fn durations_are_measured() {
        let rec = recorder();
        {
            let _g = rec.root("timed", None, "r");
            std::thread::sleep(Duration::from_millis(5));
        }
        let entry = rec.trace("timed").unwrap();
        assert!(entry.duration_us >= 4_000, "{}", entry.duration_us);
    }
}
