//! A mergeable log-linear latency histogram.
//!
//! The bucket ladder is **fixed**: sub-buckets {1..9} × 10^k µs for
//! decades k = 0..=7 (1 µs … 90 s, 72 finite buckets) plus one overflow
//! bucket. A fixed ladder buys two properties a tunable one cannot:
//! histograms recorded by different threads, processes, or shards merge
//! by plain bucket-wise addition, and an estimated quantile is provably
//! within **one bucket width** of the exact sorted-sample quantile
//! (both land in the same bucket by construction; the bucket in decade
//! k is 10^k µs wide, ≈11% relative error).
//!
//! Recording is lock-free — one binary search over the const bound
//! array plus four relaxed atomic adds — so it sits on the request hot
//! path of every served response.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Decades covered by the finite buckets (10^0 … 10^7 µs).
const DECADES: usize = 8;

/// Number of finite buckets.
pub const FINITE_BUCKETS: usize = DECADES * 9;

/// Index of the overflow bucket (values above the last finite bound).
pub const OVERFLOW_BUCKET: usize = FINITE_BUCKETS;

const fn build_bounds() -> [u64; FINITE_BUCKETS] {
    let mut out = [0u64; FINITE_BUCKETS];
    let mut k = 0;
    let mut scale = 1u64;
    while k < DECADES {
        let mut d = 1u64;
        while d <= 9 {
            out[k * 9 + (d as usize) - 1] = d * scale;
            d += 1;
        }
        scale *= 10;
        k += 1;
    }
    out
}

/// Inclusive upper bounds of the finite buckets, in µs:
/// 1, 2, …, 9, 10, 20, …, 90, 100, …, 9×10^7.
pub const BUCKET_BOUNDS_US: [u64; FINITE_BUCKETS] = build_bounds();

/// The inclusive upper bounds of the finite buckets (µs).
pub fn bucket_bounds_us() -> &'static [u64] {
    &BUCKET_BOUNDS_US
}

/// Index of the bucket holding `us` (overflow index included).
fn bucket_index(us: u64) -> usize {
    BUCKET_BOUNDS_US
        .partition_point(|&b| b < us)
        .min(OVERFLOW_BUCKET)
}

/// Width (µs) of the finite bucket containing `value`; `u64::MAX` for
/// values past the ladder (the overflow bucket is unbounded).
pub fn bucket_width_us(value: u64) -> u64 {
    let idx = BUCKET_BOUNDS_US.partition_point(|&b| b < value);
    if idx >= FINITE_BUCKETS {
        return u64::MAX;
    }
    let upper = BUCKET_BOUNDS_US[idx];
    let lower = if idx == 0 {
        0
    } else {
        BUCKET_BOUNDS_US[idx - 1]
    };
    upper - lower
}

/// A bucket's retained exemplar: the trace id and raw value (µs) of
/// the most recent *traced* sample that landed in the bucket, linking
/// the aggregate back to one replayable trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exemplar {
    /// The sample's trace id (`X-Request-Id`).
    pub trace_id: String,
    /// The sample's raw value, µs.
    pub value_us: u64,
}

/// A fixed-ladder log-linear histogram with atomic counters.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; FINITE_BUCKETS + 1],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
    /// Per-bucket exemplars, set only by the traced recording path —
    /// one short lock per *request*, never inside a measurement loop.
    exemplars: Mutex<Vec<Option<Exemplar>>>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
            exemplars: Mutex::new(vec![None; FINITE_BUCKETS + 1]),
        }
    }

    /// Records one observation of `us` microseconds (lock-free).
    pub fn record_us(&self, us: u64) {
        self.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Records one observation and retains `trace_id` as the bucket's
    /// exemplar (most recent sample wins).
    pub fn record_us_traced(&self, us: u64, trace_id: &str) {
        self.record_us(us);
        if let Ok(mut slots) = self.exemplars.lock() {
            slots[bucket_index(us)] = Some(Exemplar {
                trace_id: trace_id.to_string(),
                value_us: us,
            });
        }
    }

    /// Records one observed duration.
    pub fn record(&self, d: Duration) {
        self.record_us(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations (µs).
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Largest observation (µs); 0 when empty.
    pub fn max_us(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }

    /// Folds `other` into `self` bucket-wise — the scatter-gather
    /// primitive. Exact because both sides share the fixed ladder.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum_us
            .fetch_add(other.sum_us.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max_us
            .fetch_max(other.max_us.load(Ordering::Relaxed), Ordering::Relaxed);
        if let (Ok(mut mine), Ok(theirs)) = (self.exemplars.lock(), other.exemplars.lock()) {
            for (slot, incoming) in mine.iter_mut().zip(theirs.iter()) {
                if let Some(e) = incoming {
                    *slot = Some(e.clone());
                }
            }
        }
    }

    /// A point-in-time copy of the counters (buckets are read one by
    /// one with relaxed loads; concurrent recording may be torn across
    /// buckets, which is fine for telemetry).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count(),
            sum_us: self.sum_us(),
            max_us: self.max_us(),
            exemplars: self
                .exemplars
                .lock()
                .map(|slots| slots.clone())
                .unwrap_or_else(|_| vec![None; FINITE_BUCKETS + 1]),
        }
    }

    /// Estimated `q`-quantile in µs (see [`HistogramSnapshot::quantile_us`]).
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        self.snapshot().quantile_us(q)
    }
}

/// A point-in-time copy of a [`Histogram`]'s counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Raw (non-cumulative) per-bucket counts; the last entry is the
    /// overflow bucket.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observations (µs).
    pub sum_us: u64,
    /// Largest observation (µs); 0 when empty.
    pub max_us: u64,
    /// Per-bucket exemplars (same indexing as `buckets`); `None` for
    /// buckets that never saw a traced sample.
    pub exemplars: Vec<Option<Exemplar>>,
}

impl HistogramSnapshot {
    /// Estimated `q`-quantile in µs, or `None` when empty.
    ///
    /// Rank rule: the ⌈q·n⌉-th smallest sample (clamped to [1, n]) —
    /// the same rule the property tests apply to the exact sorted
    /// samples. The estimate is the upper bound of the bucket holding
    /// that rank (clamped to the observed max), so it is always ≥ the
    /// exact quantile and within one bucket width of it.
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                return Some(if i >= FINITE_BUCKETS {
                    self.max_us
                } else {
                    BUCKET_BOUNDS_US[i].min(self.max_us)
                });
            }
        }
        // Unreachable when count matches the bucket sums; degrade to max.
        Some(self.max_us)
    }

    /// Mean observation in µs (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_shape() {
        assert_eq!(BUCKET_BOUNDS_US[0], 1);
        assert_eq!(BUCKET_BOUNDS_US[8], 9);
        assert_eq!(BUCKET_BOUNDS_US[9], 10);
        assert_eq!(BUCKET_BOUNDS_US[FINITE_BUCKETS - 1], 90_000_000);
        assert!(BUCKET_BOUNDS_US.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn record_places_values_in_the_right_bucket() {
        let h = Histogram::new();
        h.record_us(0); // ≤ 1 → first bucket.
        h.record_us(1);
        h.record_us(10);
        h.record_us(11); // → bucket with bound 20.
        h.record_us(100_000_000); // past the ladder → overflow.
        let snap = h.snapshot();
        assert_eq!(snap.buckets[0], 2);
        assert_eq!(snap.buckets[9], 1);
        assert_eq!(snap.buckets[10], 1);
        assert_eq!(snap.buckets[OVERFLOW_BUCKET], 1);
        assert_eq!(snap.count, 5);
        assert_eq!(snap.max_us, 100_000_000);
    }

    #[test]
    fn quantiles_of_known_samples() {
        let h = Histogram::new();
        for us in [100, 200, 300, 400, 500, 600, 700, 800, 900, 1000] {
            h.record_us(us);
        }
        // Exact values sit on bucket bounds, so estimates are exact.
        assert_eq!(h.quantile_us(0.5), Some(500));
        assert_eq!(h.quantile_us(0.95), Some(1000));
        assert_eq!(h.quantile_us(1.0), Some(1000));
        assert_eq!(h.quantile_us(0.0), Some(100));
        assert_eq!(Histogram::new().quantile_us(0.5), None);
    }

    #[test]
    fn quantile_of_overflow_values_is_the_max() {
        let h = Histogram::new();
        h.record_us(95_000_000);
        h.record_us(120_000_000);
        assert_eq!(h.quantile_us(1.0), Some(120_000_000));
    }

    #[test]
    fn traced_records_retain_the_latest_exemplar_per_bucket() {
        let h = Histogram::new();
        h.record_us(500); // Untraced: no exemplar.
        h.record_us_traced(500, "first"); // Bucket with bound 500.
        h.record_us_traced(600, "second"); // Bucket with bound 600.
        h.record_us_traced(450, "newer"); // Bound-500 bucket again: replaces "first".
        let snap = h.snapshot();
        let at = |us: u64| {
            snap.exemplars[BUCKET_BOUNDS_US.partition_point(|&b| b < us)]
                .as_ref()
                .map(|e| e.trace_id.as_str())
        };
        assert_eq!(at(500), Some("newer"));
        assert_eq!(at(600), Some("second"));
        assert_eq!(at(700), None);

        // Merge carries exemplars across, newest side winning.
        let other = Histogram::new();
        other.record_us_traced(480, "merged");
        h.merge(&other);
        let snap = h.snapshot();
        assert_eq!(
            snap.exemplars[BUCKET_BOUNDS_US.partition_point(|&b| b < 500)]
                .as_ref()
                .map(|e| e.trace_id.as_str()),
            Some("merged")
        );
    }

    #[test]
    fn merge_adds_counts_and_keeps_the_max() {
        let (a, b) = (Histogram::new(), Histogram::new());
        a.record_us(10);
        a.record_us(20);
        b.record_us(30_000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum_us(), 30_030);
        assert_eq!(a.max_us(), 30_000);
        assert_eq!(a.quantile_us(1.0), Some(30_000));
    }
}
