//! Error type for the clustering layer.

use std::fmt;

/// Errors raised while constructing matrices or clustering.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// Fewer than the required number of observations.
    TooFewItems {
        /// Items required.
        needed: usize,
        /// Items supplied.
        got: usize,
    },
    /// A distance was negative or non-finite.
    InvalidDistance {
        /// Flattened pair index of the offending entry.
        index: usize,
        /// Its value.
        value: f64,
    },
    /// Condensed vector length does not match any `n(n−1)/2`.
    BadCondensedLength(usize),
    /// A cut parameter was out of range.
    InvalidCut(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::TooFewItems { needed, got } => {
                write!(f, "clustering needs at least {needed} items, got {got}")
            }
            ClusterError::InvalidDistance { index, value } => {
                write!(
                    f,
                    "distance #{index} = {value} must be finite and nonnegative"
                )
            }
            ClusterError::BadCondensedLength(len) => {
                write!(f, "condensed length {len} is not n(n-1)/2 for any n")
            }
            ClusterError::InvalidCut(msg) => write!(f, "invalid cut: {msg}"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ClusterError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(ClusterError::TooFewItems { needed: 2, got: 0 }
            .to_string()
            .contains("2"));
        assert!(ClusterError::BadCondensedLength(4)
            .to_string()
            .contains("4"));
        assert!(ClusterError::InvalidDistance {
            index: 1,
            value: -1.0
        }
        .to_string()
        .contains("-1"));
        assert!(ClusterError::InvalidCut("k = 0".into())
            .to_string()
            .contains("k = 0"));
    }
}
