//! Merge trees (dendrograms), cuts, cophenetic distances, and ASCII
//! rendering — the "visual support to help setting the parameter
//! MIN_tight" that the paper attributes to complete-linkage clustering.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::{ClusterError, Result};

/// One agglomeration step. Cluster ids follow the scipy convention:
/// leaves are `0..n`; the `k`-th merge creates cluster `n + k`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Merge {
    /// Id of the first merged cluster.
    pub left: usize,
    /// Id of the second merged cluster.
    pub right: usize,
    /// Linkage distance at which the merge happened.
    pub height: f64,
    /// Number of leaves in the merged cluster.
    pub size: usize,
}

/// A complete agglomeration history over `n` leaves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dendrogram {
    n_leaves: usize,
    merges: Vec<Merge>,
}

impl Dendrogram {
    /// Wraps a merge list, validating counts and ids.
    pub fn new(n_leaves: usize, merges: Vec<Merge>) -> Result<Self> {
        if n_leaves < 2 {
            return Err(ClusterError::TooFewItems {
                needed: 2,
                got: n_leaves,
            });
        }
        if merges.len() != n_leaves - 1 {
            return Err(ClusterError::InvalidCut(format!(
                "expected {} merges for {} leaves, got {}",
                n_leaves - 1,
                n_leaves,
                merges.len()
            )));
        }
        Ok(Self { n_leaves, merges })
    }

    /// Number of leaves (items).
    pub fn n_leaves(&self) -> usize {
        self.n_leaves
    }

    /// The merge history in order.
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Leaf indices contained in cluster `id` (leaf ids return themselves).
    pub fn leaves_of(&self, id: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(c) = stack.pop() {
            if c < self.n_leaves {
                out.push(c);
            } else {
                let m = &self.merges[c - self.n_leaves];
                stack.push(m.left);
                stack.push(m.right);
            }
        }
        out.sort_unstable();
        out
    }

    /// Cuts the tree at `height`: clusters are the maximal subtrees whose
    /// merge height is ≤ `height`. Returns leaf groups, each sorted, the
    /// groups ordered by their smallest leaf.
    pub fn cut_at_height(&self, height: f64) -> Vec<Vec<usize>> {
        // A union-find over leaves, applying merges with height ≤ cut.
        let mut parent: Vec<usize> = (0..self.n_leaves).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for m in &self.merges {
            if m.height <= height {
                let ls = self.leaves_of(m.left);
                let rs = self.leaves_of(m.right);
                let ra = find(&mut parent, ls[0]);
                let rb = find(&mut parent, rs[0]);
                if ra != rb {
                    parent[ra] = rb;
                }
            }
        }
        let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
        for leaf in 0..self.n_leaves {
            let root = find(&mut parent, leaf);
            groups.entry(root).or_default().push(leaf);
        }
        let mut out: Vec<Vec<usize>> = groups.into_values().collect();
        for g in &mut out {
            g.sort_unstable();
        }
        out.sort_by_key(|g| g[0]);
        out
    }

    /// Cuts the tree into exactly `k` clusters (undoing the last `k − 1`
    /// merges). `k` must be in `1..=n_leaves`.
    pub fn cut_k(&self, k: usize) -> Result<Vec<Vec<usize>>> {
        if k == 0 || k > self.n_leaves {
            return Err(ClusterError::InvalidCut(format!(
                "k = {k} outside 1..={}",
                self.n_leaves
            )));
        }
        if k == self.n_leaves {
            return Ok((0..self.n_leaves).map(|i| vec![i]).collect());
        }
        // Replaying the first n − k merges leaves exactly k clusters.
        let mut parent: Vec<usize> = (0..self.n_leaves).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for m in self.merges.iter().take(self.n_leaves - k) {
            let ls = self.leaves_of(m.left);
            let rs = self.leaves_of(m.right);
            let ra = find(&mut parent, ls[0]);
            let rb = find(&mut parent, rs[0]);
            if ra != rb {
                parent[ra] = rb;
            }
        }
        let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
        for leaf in 0..self.n_leaves {
            let root = find(&mut parent, leaf);
            groups.entry(root).or_default().push(leaf);
        }
        let mut out: Vec<Vec<usize>> = groups.into_values().collect();
        for g in &mut out {
            g.sort_unstable();
        }
        out.sort_by_key(|g| g[0]);
        Ok(out)
    }

    /// Cophenetic distance between two leaves: the height of their lowest
    /// common merge.
    pub fn cophenetic(&self, a: usize, b: usize) -> f64 {
        if a == b {
            return 0.0;
        }
        for m in &self.merges {
            let leaves = self.leaves_of_merge_cached(m);
            if leaves.contains(&a) && leaves.contains(&b) {
                return m.height;
            }
        }
        f64::INFINITY
    }

    fn leaves_of_merge_cached(&self, m: &Merge) -> Vec<usize> {
        let mut l = self.leaves_of(m.left);
        l.extend(self.leaves_of(m.right));
        l
    }

    /// Renders a compact ASCII dendrogram listing each merge with an
    /// indented height bar — the "visual support" for choosing MIN_tight.
    /// `labels` maps leaf index → display name (falls back to `#i`).
    pub fn render_ascii(&self, labels: &[String]) -> String {
        let name = |id: usize| -> String {
            if id < self.n_leaves {
                labels.get(id).cloned().unwrap_or_else(|| format!("#{id}"))
            } else {
                format!("cluster{}", id - self.n_leaves)
            }
        };
        let max_h = self
            .merges
            .iter()
            .map(|m| m.height)
            .fold(0.0, f64::max)
            .max(1e-12);
        let mut out = String::new();
        out.push_str("height   merge\n");
        for (k, m) in self.merges.iter().enumerate() {
            let bar_len = ((m.height / max_h) * 40.0).round() as usize;
            let bar: String = std::iter::repeat_n('─', bar_len.max(1)).collect();
            out.push_str(&format!(
                "{:>7.4} {} cluster{} = {} + {} ({} leaves)\n",
                m.height,
                bar,
                k,
                name(m.left),
                name(m.right),
                m.size
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::DistanceMatrix;
    use crate::linkage::{hierarchical, Linkage};

    fn sample() -> Dendrogram {
        // Points on a line at 0, 1, 2, 10 with complete linkage:
        // merges (0,1)@1 → c0; (c0,2)@2 → c1; (c1,3)@10 → c2.
        let pts = [0.0f64, 1.0, 2.0, 10.0];
        let dm = DistanceMatrix::from_fn(4, |i, j| (pts[i] - pts[j]).abs()).unwrap();
        hierarchical(&dm, Linkage::Complete).unwrap()
    }

    #[test]
    fn validation() {
        assert!(Dendrogram::new(1, vec![]).is_err());
        assert!(Dendrogram::new(3, vec![]).is_err());
    }

    #[test]
    fn leaves_of_clusters() {
        let d = sample();
        assert_eq!(d.leaves_of(0), vec![0]);
        assert_eq!(d.leaves_of(4), vec![0, 1]); // first merge.
        assert_eq!(d.leaves_of(5), vec![0, 1, 2]);
        assert_eq!(d.leaves_of(6), vec![0, 1, 2, 3]);
    }

    #[test]
    fn cut_at_height_thresholds() {
        let d = sample();
        assert_eq!(
            d.cut_at_height(0.5),
            vec![vec![0], vec![1], vec![2], vec![3]]
        );
        assert_eq!(d.cut_at_height(1.0), vec![vec![0, 1], vec![2], vec![3]]);
        assert_eq!(d.cut_at_height(2.0), vec![vec![0, 1, 2], vec![3]]);
        assert_eq!(d.cut_at_height(100.0), vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn cut_k_counts() {
        let d = sample();
        assert_eq!(d.cut_k(4).unwrap().len(), 4);
        assert_eq!(d.cut_k(3).unwrap(), vec![vec![0, 1], vec![2], vec![3]]);
        assert_eq!(d.cut_k(2).unwrap(), vec![vec![0, 1, 2], vec![3]]);
        assert_eq!(d.cut_k(1).unwrap().len(), 1);
        assert!(d.cut_k(0).is_err());
        assert!(d.cut_k(5).is_err());
    }

    #[test]
    fn cuts_partition_leaves() {
        let d = sample();
        for h in [0.0, 0.5, 1.0, 1.5, 2.0, 5.0, 10.0] {
            let groups = d.cut_at_height(h);
            let mut all: Vec<usize> = groups.iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(all, vec![0, 1, 2, 3], "cut at {h} is not a partition");
        }
    }

    #[test]
    fn cophenetic_distances() {
        let d = sample();
        assert_eq!(d.cophenetic(0, 1), 1.0);
        assert_eq!(d.cophenetic(0, 2), 2.0);
        assert_eq!(d.cophenetic(1, 3), 10.0);
        assert_eq!(d.cophenetic(2, 2), 0.0);
    }

    #[test]
    fn complete_linkage_cut_satisfies_max_pairwise_bound() {
        // The property Ziggy relies on: after cutting at h, every group has
        // all pairwise distances <= h.
        let pts: Vec<f64> = vec![0.0, 0.5, 0.9, 5.0, 5.2, 9.0, 9.1, 9.3];
        let dm = DistanceMatrix::from_fn(pts.len(), |i, j| (pts[i] - pts[j]).abs()).unwrap();
        let dend = hierarchical(&dm, Linkage::Complete).unwrap();
        for h in [0.3, 0.5, 1.0, 2.0, 4.5] {
            for group in dend.cut_at_height(h) {
                for (ai, &a) in group.iter().enumerate() {
                    for &b in &group[ai + 1..] {
                        assert!(
                            dm.get(a, b) <= h + 1e-12,
                            "pair ({a},{b}) violates the bound at h={h}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn ascii_rendering_mentions_labels() {
        let d = sample();
        let labels: Vec<String> = ["pop", "density", "rent", "age"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let art = d.render_ascii(&labels);
        assert!(art.contains("pop"));
        assert!(art.contains("density"));
        assert!(art.lines().count() >= 4);
    }
}
