#![warn(missing_docs)]

//! Agglomerative hierarchical clustering — Ziggy's candidate-view
//! generator.
//!
//! The paper partitions the column-dependency graph "with a clique search
//! or clustering algorithm. In our implementation, we used complete
//! linkage clustering. This method is simple, well established, and it
//! provides a dendrogram, i.e., visual support to help setting the
//! parameter." (§3, *View Search*.)
//!
//! Complete linkage has the property Ziggy relies on: a cluster that forms
//! at height `h` has **all** pairwise distances ≤ `h`. With distance
//! `1 − S` (where `S` is the dependence measure), cutting the dendrogram
//! at `1 − MIN_tight` yields exactly the maximal column groups satisfying
//! the tightness constraint of Equation 2.
//!
//! * [`distance`] — condensed (upper-triangular) distance matrices.
//! * [`linkage`] — single / complete / average agglomeration via
//!   Lance–Williams updates.
//! * [`dendrogram`] — the merge tree, cuts by height or cluster count,
//!   cophenetic distances, and an ASCII rendering.

pub mod dendrogram;
pub mod distance;
pub mod error;
pub mod linkage;

pub use dendrogram::{Dendrogram, Merge};
pub use distance::DistanceMatrix;
pub use error::ClusterError;
pub use linkage::{hierarchical, Linkage};
