//! Condensed pairwise distance matrices.
//!
//! For `n` items only the `n(n−1)/2` upper-triangular entries are stored,
//! in the usual row-major pair order `(0,1), (0,2), …, (n−2,n−1)`.

use serde::{Deserialize, Serialize};

use crate::error::{ClusterError, Result};

/// A symmetric pairwise distance matrix in condensed form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistanceMatrix {
    n: usize,
    data: Vec<f64>,
}

/// Flattened index of the unordered pair `(i, j)` with `i < j`.
pub fn condensed_index(n: usize, i: usize, j: usize) -> usize {
    debug_assert!(i < j && j < n);
    // Offset of row i, then the position of j within the row.
    i * n - i * (i + 1) / 2 + (j - i - 1)
}

impl DistanceMatrix {
    /// Builds a matrix by evaluating `f(i, j)` for every pair `i < j`.
    /// Distances must be finite and nonnegative.
    pub fn from_fn(n: usize, f: impl Fn(usize, usize) -> f64) -> Result<Self> {
        if n < 2 {
            return Err(ClusterError::TooFewItems { needed: 2, got: n });
        }
        let mut data = Vec::with_capacity(n * (n - 1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                let d = f(i, j);
                if !d.is_finite() || d < 0.0 {
                    return Err(ClusterError::InvalidDistance {
                        index: data.len(),
                        value: d,
                    });
                }
                data.push(d);
            }
        }
        Ok(Self { n, data })
    }

    /// Wraps an existing condensed vector, validating the length.
    pub fn from_condensed(data: Vec<f64>) -> Result<Self> {
        // Solve n(n−1)/2 = len.
        let len = data.len();
        let n = (1.0 + (1.0 + 8.0 * len as f64).sqrt()) / 2.0;
        let n_int = n.round() as usize;
        if n_int < 2 || n_int * (n_int - 1) / 2 != len {
            return Err(ClusterError::BadCondensedLength(len));
        }
        for (index, &d) in data.iter().enumerate() {
            if !d.is_finite() || d < 0.0 {
                return Err(ClusterError::InvalidDistance { index, value: d });
            }
        }
        Ok(Self { n: n_int, data })
    }

    /// Euclidean distances between rows of a points-by-features matrix.
    pub fn euclidean(points: &[Vec<f64>]) -> Result<Self> {
        Self::from_fn(points.len(), |i, j| {
            points[i]
                .iter()
                .zip(&points[j])
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt()
        })
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when there are no items (never constructed, kept for API
    /// symmetry).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Distance between items `i` and `j` (0 on the diagonal).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of range");
        if i == j {
            return 0.0;
        }
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        self.data[condensed_index(self.n, a, b)]
    }

    /// The raw condensed storage.
    pub fn condensed(&self) -> &[f64] {
        &self.data
    }

    /// Largest pairwise distance.
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn condensed_index_layout() {
        // n = 4: pairs (0,1)(0,2)(0,3)(1,2)(1,3)(2,3) → indices 0..6.
        assert_eq!(condensed_index(4, 0, 1), 0);
        assert_eq!(condensed_index(4, 0, 3), 2);
        assert_eq!(condensed_index(4, 1, 2), 3);
        assert_eq!(condensed_index(4, 2, 3), 5);
    }

    #[test]
    fn from_fn_and_symmetry() {
        let m = DistanceMatrix::from_fn(4, |i, j| (i + j) as f64).unwrap();
        assert_eq!(m.len(), 4);
        assert_eq!(m.get(1, 3), 4.0);
        assert_eq!(m.get(3, 1), 4.0);
        assert_eq!(m.get(2, 2), 0.0);
    }

    #[test]
    fn rejects_bad_distances() {
        assert!(DistanceMatrix::from_fn(3, |_, _| -1.0).is_err());
        assert!(DistanceMatrix::from_fn(3, |_, _| f64::NAN).is_err());
        assert!(DistanceMatrix::from_fn(1, |_, _| 0.0).is_err());
    }

    #[test]
    fn from_condensed_validates_length() {
        assert!(DistanceMatrix::from_condensed(vec![1.0]).is_ok()); // n=2
        assert!(DistanceMatrix::from_condensed(vec![1.0, 2.0, 3.0]).is_ok()); // n=3
        assert!(DistanceMatrix::from_condensed(vec![1.0, 2.0]).is_err());
        assert!(DistanceMatrix::from_condensed(vec![-1.0]).is_err());
    }

    #[test]
    fn euclidean_distances() {
        let pts = vec![vec![0.0, 0.0], vec![3.0, 4.0], vec![0.0, 1.0]];
        let m = DistanceMatrix::euclidean(&pts).unwrap();
        assert!((m.get(0, 1) - 5.0).abs() < 1e-12);
        assert!((m.get(0, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_distance() {
        let m = DistanceMatrix::from_fn(3, |i, j| (i * 10 + j) as f64).unwrap();
        assert_eq!(m.max(), 12.0);
    }
}
