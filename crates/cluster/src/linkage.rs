//! Agglomerative clustering via Lance–Williams distance updates.

use serde::{Deserialize, Serialize};

use crate::dendrogram::{Dendrogram, Merge};
use crate::distance::DistanceMatrix;
use crate::error::Result;

/// Linkage criterion: how the distance between clusters is derived from
/// item distances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Linkage {
    /// Minimum pairwise distance (chaining-prone).
    Single,
    /// Maximum pairwise distance — the paper's choice, because a cluster
    /// formed at height `h` then has *all* pairwise distances ≤ `h`,
    /// which is exactly Ziggy's tightness constraint.
    Complete,
    /// Unweighted average pairwise distance (UPGMA).
    Average,
}

impl Linkage {
    /// Lance–Williams update: distance from the merged cluster `a ∪ b` to
    /// another cluster `c`, given the previous distances and sizes.
    fn update(self, d_ac: f64, d_bc: f64, size_a: usize, size_b: usize) -> f64 {
        match self {
            Linkage::Single => d_ac.min(d_bc),
            Linkage::Complete => d_ac.max(d_bc),
            Linkage::Average => {
                let (na, nb) = (size_a as f64, size_b as f64);
                (na * d_ac + nb * d_bc) / (na + nb)
            }
        }
    }
}

/// Runs agglomerative clustering over a distance matrix, producing the
/// full dendrogram (`n − 1` merges, scipy-style cluster numbering: leaves
/// are `0..n`, the `k`-th merge creates cluster `n + k`).
///
/// Complexity is `O(n²)` memory and `O(n³)` time in the worst case — more
/// than adequate for Ziggy's use (items are table *columns*, typically a
/// few hundred).
pub fn hierarchical(dist: &DistanceMatrix, linkage: Linkage) -> Result<Dendrogram> {
    let n = dist.len();
    // Working copy of pairwise distances between *active* clusters.
    let mut d: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..n).map(|j| dist.get(i, j)).collect())
        .collect();
    // active[i]: cluster id currently occupying slot i (usize::MAX = dead).
    let mut cluster_id: Vec<usize> = (0..n).collect();
    let mut size: Vec<usize> = vec![1; n];
    let mut alive: Vec<bool> = vec![true; n];
    let mut merges = Vec::with_capacity(n - 1);

    for step in 0..(n - 1) {
        // Find the closest active pair.
        let mut best = (usize::MAX, usize::MAX, f64::INFINITY);
        for i in 0..n {
            if !alive[i] {
                continue;
            }
            for j in (i + 1)..n {
                if !alive[j] {
                    continue;
                }
                if d[i][j] < best.2 {
                    best = (i, j, d[i][j]);
                }
            }
        }
        let (a, b, height) = best;
        debug_assert!(a != usize::MAX, "no active pair found");

        merges.push(Merge {
            left: cluster_id[a],
            right: cluster_id[b],
            height,
            size: size[a] + size[b],
        });

        // Slot a becomes the merged cluster; slot b dies.
        for c in 0..n {
            if !alive[c] || c == a || c == b {
                continue;
            }
            let updated = linkage.update(d[a][c], d[b][c], size[a], size[b]);
            d[a][c] = updated;
            d[c][a] = updated;
        }
        cluster_id[a] = n + step;
        size[a] += size[b];
        alive[b] = false;
    }

    Dendrogram::new(n, merges)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three tight points and one far outlier on a line.
    fn line_matrix() -> DistanceMatrix {
        let pts = [0.0f64, 1.0, 2.0, 10.0];
        DistanceMatrix::from_fn(pts.len(), |i, j| (pts[i] - pts[j]).abs()).unwrap()
    }

    #[test]
    fn merge_count_and_final_size() {
        let dend = hierarchical(&line_matrix(), Linkage::Complete).unwrap();
        assert_eq!(dend.merges().len(), 3);
        assert_eq!(dend.merges().last().unwrap().size, 4);
    }

    #[test]
    fn outlier_joins_last() {
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let dend = hierarchical(&line_matrix(), linkage).unwrap();
            let last = dend.merges().last().unwrap();
            // The final merge absorbs the singleton containing leaf 3.
            let leaves_right = dend.leaves_of(last.right);
            let leaves_left = dend.leaves_of(last.left);
            assert!(
                leaves_right == vec![3] || leaves_left == vec![3],
                "{linkage:?}: outlier must join last"
            );
        }
    }

    #[test]
    fn complete_linkage_heights_are_max_pairwise() {
        let dend = hierarchical(&line_matrix(), Linkage::Complete).unwrap();
        // First merge: {0,1} at 1; second: {0,1,2} at max(2,1)=2;
        // final: everything at max distance 10.
        let hs: Vec<f64> = dend.merges().iter().map(|m| m.height).collect();
        assert_eq!(hs, vec![1.0, 2.0, 10.0]);
    }

    #[test]
    fn single_linkage_chains() {
        let dend = hierarchical(&line_matrix(), Linkage::Single).unwrap();
        // Single linkage: {0,1} at 1, then +2 at 1, then +3 at 8.
        let hs: Vec<f64> = dend.merges().iter().map(|m| m.height).collect();
        assert_eq!(hs, vec![1.0, 1.0, 8.0]);
    }

    #[test]
    fn average_linkage_between_single_and_complete() {
        let d = line_matrix();
        let hs = |l: Linkage| hierarchical(&d, l).unwrap().merges().last().unwrap().height;
        let s = hs(Linkage::Single);
        let c = hs(Linkage::Complete);
        let a = hs(Linkage::Average);
        assert!(
            s <= a && a <= c,
            "single {s} <= average {a} <= complete {c}"
        );
    }

    #[test]
    fn merge_heights_monotone_for_complete_and_average() {
        // Monotonicity holds for single/complete/average (no inversions).
        let pts: Vec<Vec<f64>> = (0..12)
            .map(|i| vec![(i as f64 * 1.7).sin() * 5.0, (i as f64 * 0.9).cos() * 3.0])
            .collect();
        let dm = DistanceMatrix::euclidean(&pts).unwrap();
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let dend = hierarchical(&dm, linkage).unwrap();
            let hs: Vec<f64> = dend.merges().iter().map(|m| m.height).collect();
            for w in hs.windows(2) {
                assert!(
                    w[1] >= w[0] - 1e-12,
                    "{linkage:?} produced an inversion: {hs:?}"
                );
            }
        }
    }

    #[test]
    fn two_items() {
        let dm = DistanceMatrix::from_condensed(vec![4.2]).unwrap();
        let dend = hierarchical(&dm, Linkage::Complete).unwrap();
        assert_eq!(dend.merges().len(), 1);
        assert_eq!(dend.merges()[0].height, 4.2);
    }
}
