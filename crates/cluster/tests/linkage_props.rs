//! Property-based tests for the clustering substrate: linkage
//! monotonicity, the complete-linkage tightness guarantee, cut
//! consistency.

use proptest::prelude::*;
use ziggy_cluster::{hierarchical, DistanceMatrix, Linkage};

fn random_points() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-100.0..100.0f64, 2..4), 3..18).prop_filter(
        "equal dims",
        |pts| {
            let d = pts[0].len();
            pts.iter().all(|p| p.len() == d)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merge heights never decrease (no inversions) for all linkages.
    #[test]
    fn merge_heights_monotone(points in random_points()) {
        let dm = DistanceMatrix::euclidean(&points).unwrap();
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let dend = hierarchical(&dm, linkage).unwrap();
            let hs: Vec<f64> = dend.merges().iter().map(|m| m.height).collect();
            for w in hs.windows(2) {
                prop_assert!(w[1] >= w[0] - 1e-9, "{linkage:?} inversion: {hs:?}");
            }
        }
    }

    /// The complete-linkage guarantee Ziggy relies on: cutting at any
    /// height yields groups whose max pairwise distance is ≤ the cut.
    #[test]
    fn complete_linkage_tightness_guarantee(points in random_points(), frac in 0.0..1.0f64) {
        let dm = DistanceMatrix::euclidean(&points).unwrap();
        let dend = hierarchical(&dm, Linkage::Complete).unwrap();
        let h = frac * dm.max();
        for group in dend.cut_at_height(h) {
            for (i, &a) in group.iter().enumerate() {
                for &b in &group[i + 1..] {
                    prop_assert!(
                        dm.get(a, b) <= h + 1e-9,
                        "pair ({a},{b}) at {} violates cut {h}",
                        dm.get(a, b)
                    );
                }
            }
        }
    }

    /// Every cut is a partition of the leaves.
    #[test]
    fn cuts_partition(points in random_points(), frac in 0.0..1.2f64) {
        let n = points.len();
        let dm = DistanceMatrix::euclidean(&points).unwrap();
        let dend = hierarchical(&dm, Linkage::Average).unwrap();
        let groups = dend.cut_at_height(frac * dm.max());
        let mut all: Vec<usize> = groups.iter().flatten().copied().collect();
        all.sort_unstable();
        let expected: Vec<usize> = (0..n).collect();
        prop_assert_eq!(all, expected);
    }

    /// cut_k returns exactly k groups for every feasible k.
    #[test]
    fn cut_k_exact(points in random_points()) {
        let n = points.len();
        let dm = DistanceMatrix::euclidean(&points).unwrap();
        let dend = hierarchical(&dm, Linkage::Complete).unwrap();
        for k in 1..=n {
            let groups = dend.cut_k(k).unwrap();
            prop_assert_eq!(groups.len(), k);
            let total: usize = groups.iter().map(|g| g.len()).sum();
            prop_assert_eq!(total, n);
        }
    }

    /// Cophenetic distance dominates single-linkage and is dominated by
    /// complete-linkage merge heights... at minimum it upper-bounds the
    /// original distance for single linkage and lower-bounds nothing
    /// degenerate: check the classic bound coph >= d is NOT generally
    /// true; instead check coph is symmetric and zero on the diagonal.
    #[test]
    fn cophenetic_basic_properties(points in random_points()) {
        let dm = DistanceMatrix::euclidean(&points).unwrap();
        let dend = hierarchical(&dm, Linkage::Complete).unwrap();
        let n = points.len();
        for i in 0..n.min(6) {
            prop_assert_eq!(dend.cophenetic(i, i), 0.0);
            for j in 0..n.min(6) {
                prop_assert_eq!(dend.cophenetic(i, j), dend.cophenetic(j, i));
                if i != j {
                    // Complete linkage: the merge joining i and j has
                    // height >= their direct distance.
                    prop_assert!(dend.cophenetic(i, j) >= dm.get(i, j) - 1e-9);
                }
            }
        }
    }

    /// Single linkage heights lower-bound complete linkage heights at
    /// every merge step (classic dominance).
    #[test]
    fn single_below_complete(points in random_points()) {
        let dm = DistanceMatrix::euclidean(&points).unwrap();
        let single = hierarchical(&dm, Linkage::Single).unwrap();
        let complete = hierarchical(&dm, Linkage::Complete).unwrap();
        // Compare the final (root) merge heights.
        let s = single.merges().last().unwrap().height;
        let c = complete.merges().last().unwrap().height;
        prop_assert!(s <= c + 1e-9);
    }
}
