//! Property-based tests for the statistics substrate: distribution
//! identities, effect-size symmetries, correction monotonicity.

use proptest::prelude::*;
use ziggy_stats::{
    adjust_p_values, aggregate_p_values, hedges_g, log_std_ratio, mean_difference, Aggregation,
    ChiSquared, ContinuousDistribution, Correction, FisherF, Normal, StudentT, UniMoments,
};

fn sample_vec() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3..1e3f64, 8..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// CDF is monotone and bounded for arbitrary parameters.
    #[test]
    fn normal_cdf_monotone(mu in -50.0..50.0f64, sigma in 0.01..30.0f64, a in -100.0..100.0f64, b in -100.0..100.0f64) {
        let d = Normal::new(mu, sigma).unwrap();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(d.cdf(lo) <= d.cdf(hi) + 1e-12);
        prop_assert!((0.0..=1.0).contains(&d.cdf(a)));
        prop_assert!((d.cdf(a) + d.sf(a) - 1.0).abs() < 1e-9);
    }

    /// Quantile∘CDF is the identity (within tolerance) for all four
    /// distributions at random parameters.
    #[test]
    fn quantile_round_trips(p in 0.001..0.999f64, df1 in 1.0..40.0f64, df2 in 1.0..40.0f64) {
        let n = Normal::standard();
        prop_assert!((n.cdf(n.quantile(p).unwrap()) - p).abs() < 1e-8);
        let c = ChiSquared::new(df1).unwrap();
        prop_assert!((c.cdf(c.quantile(p).unwrap()) - p).abs() < 1e-7);
        let t = StudentT::new(df1).unwrap();
        prop_assert!((t.cdf(t.quantile(p).unwrap()) - p).abs() < 1e-7);
        let f = FisherF::new(df1, df2).unwrap();
        prop_assert!((f.cdf(f.quantile(p).unwrap()) - p).abs() < 1e-7);
    }

    /// t distribution symmetry: cdf(−x) = 1 − cdf(x).
    #[test]
    fn t_symmetry(x in -20.0..20.0f64, df in 0.5..60.0f64) {
        let t = StudentT::new(df).unwrap();
        prop_assert!((t.cdf(-x) - (1.0 - t.cdf(x))).abs() < 1e-10);
    }

    /// Effect sizes are antisymmetric in their arguments.
    #[test]
    fn effect_antisymmetry(a in sample_vec(), b in sample_vec()) {
        let ma = UniMoments::from_slice(&a);
        let mb = UniMoments::from_slice(&b);
        if let (Ok(ab), Ok(ba)) = (mean_difference(&ma, &mb), mean_difference(&mb, &ma)) {
            prop_assert!((ab.value + ba.value).abs() < 1e-9);
            prop_assert!((ab.p_value - ba.p_value).abs() < 1e-9);
        }
        if let (Ok(ab), Ok(ba)) = (log_std_ratio(&ma, &mb), log_std_ratio(&mb, &ma)) {
            prop_assert!((ab.value + ba.value).abs() < 1e-9);
        }
    }

    /// Hedges' g is a strict shrinkage of Cohen's d for finite samples.
    #[test]
    fn hedges_shrinks(a in sample_vec(), b in sample_vec()) {
        let ma = UniMoments::from_slice(&a);
        let mb = UniMoments::from_slice(&b);
        if let (Ok(d), Ok(g)) = (mean_difference(&ma, &mb), hedges_g(&ma, &mb)) {
            prop_assert!(g.value.abs() <= d.value.abs() + 1e-12);
        }
    }

    /// Effect of a location shift: shifting one sample up strictly
    /// increases the standardized mean difference.
    #[test]
    fn shift_increases_effect(a in sample_vec(), delta in 0.5..50.0f64) {
        let ma = UniMoments::from_slice(&a);
        let shifted: Vec<f64> = a.iter().map(|x| x + delta).collect();
        let ms = UniMoments::from_slice(&shifted);
        if let (Ok(base), Ok(up)) = (mean_difference(&ma, &ma), mean_difference(&ms, &ma)) {
            prop_assert!(up.value > base.value);
        }
    }

    /// Corrections: Holm ≤ Bonferroni pointwise, both ≥ raw p.
    #[test]
    fn correction_ordering(ps in prop::collection::vec(0.0..1.0f64, 1..12)) {
        let bonf = adjust_p_values(&ps, Correction::Bonferroni).unwrap();
        let holm = adjust_p_values(&ps, Correction::Holm).unwrap();
        for ((raw, b), h) in ps.iter().zip(&bonf).zip(&holm) {
            prop_assert!(h <= b);
            prop_assert!(*b >= *raw - 1e-15);
            prop_assert!(*h >= *raw - 1e-15);
            prop_assert!((0.0..=1.0).contains(h));
        }
    }

    /// All aggregations stay within [0, 1] and MinP lower-bounds
    /// BonferroniMin.
    #[test]
    fn aggregation_bounds(ps in prop::collection::vec(0.0..1.0f64, 1..12)) {
        for scheme in [
            Aggregation::MinP,
            Aggregation::BonferroniMin,
            Aggregation::Fisher,
            Aggregation::Stouffer,
        ] {
            let v = aggregate_p_values(&ps, scheme).unwrap();
            prop_assert!((0.0..=1.0).contains(&v), "{scheme:?} gave {v}");
        }
        let min = aggregate_p_values(&ps, Aggregation::MinP).unwrap();
        let bonf = aggregate_p_values(&ps, Aggregation::BonferroniMin).unwrap();
        prop_assert!(min <= bonf + 1e-15);
    }

    /// Moment merge is associative-ish: bulk == merge of any split.
    #[test]
    fn moment_merge_split_invariance(values in sample_vec(), split in 0usize..60) {
        let split = split.min(values.len());
        let bulk = UniMoments::from_slice(&values);
        let mut left = UniMoments::from_slice(&values[..split]);
        let right = UniMoments::from_slice(&values[split..]);
        left.merge(&right);
        prop_assert_eq!(left.count(), bulk.count());
        if bulk.count() > 0 {
            prop_assert!((left.mean() - bulk.mean()).abs() < 1e-8);
        }
        if bulk.count() > 1 {
            prop_assert!((left.variance().unwrap() - bulk.variance().unwrap()).abs() < 1e-6);
        }
    }
}
