//! Error type shared by all statistical routines.

use std::fmt;

/// Errors raised by statistical computations.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// Not enough observations to compute the requested statistic.
    InsufficientData {
        /// Human-readable name of the statistic.
        what: &'static str,
        /// Observations required.
        needed: usize,
        /// Observations available.
        got: usize,
    },
    /// A parameter was outside its legal domain (e.g. negative variance,
    /// degrees of freedom ≤ 0, probability outside `[0, 1]`).
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
        /// Description of the legal domain.
        expected: &'static str,
    },
    /// Two paired inputs had mismatched lengths.
    LengthMismatch {
        /// Length of the first input.
        left: usize,
        /// Length of the second input.
        right: usize,
    },
    /// The computation is undefined for the given data (e.g. correlation of
    /// a constant column).
    Degenerate(&'static str),
    /// An iterative routine failed to converge.
    NoConvergence(&'static str),
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::InsufficientData { what, needed, got } => {
                write!(f, "{what}: needs at least {needed} observations, got {got}")
            }
            StatsError::InvalidParameter {
                name,
                value,
                expected,
            } => {
                write!(f, "parameter {name} = {value} invalid: expected {expected}")
            }
            StatsError::LengthMismatch { left, right } => {
                write!(
                    f,
                    "paired inputs have mismatched lengths {left} and {right}"
                )
            }
            StatsError::Degenerate(msg) => write!(f, "degenerate input: {msg}"),
            StatsError::NoConvergence(what) => write!(f, "{what} failed to converge"),
        }
    }
}

impl std::error::Error for StatsError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, StatsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_insufficient_data() {
        let e = StatsError::InsufficientData {
            what: "variance",
            needed: 2,
            got: 1,
        };
        assert_eq!(
            e.to_string(),
            "variance: needs at least 2 observations, got 1"
        );
    }

    #[test]
    fn display_invalid_parameter() {
        let e = StatsError::InvalidParameter {
            name: "df",
            value: -1.0,
            expected: "df > 0",
        };
        assert!(e.to_string().contains("df = -1"));
        assert!(e.to_string().contains("df > 0"));
    }

    #[test]
    fn display_length_mismatch() {
        let e = StatsError::LengthMismatch { left: 3, right: 5 };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('5'));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(StatsError::Degenerate("constant column"));
        assert!(e.to_string().contains("constant column"));
    }
}
