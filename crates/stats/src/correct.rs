//! Multiple-comparison corrections and p-value aggregation.
//!
//! Ziggy's post-processing tests every Zig-Component of a view separately
//! and then combines the per-component confidences into one robustness
//! score for the view — "it retains the lowest value, or it uses more
//! advanced aggregation schemes such as the Bonferroni correction".

use serde::{Deserialize, Serialize};

use crate::dist::{ContinuousDistribution, Normal};
use crate::error::{Result, StatsError};
use crate::special::inverse_normal_cdf;

/// Family-wise correction applied to a set of p-values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Correction {
    /// No adjustment.
    None,
    /// Bonferroni: multiply each p by the family size (capped at 1).
    Bonferroni,
    /// Holm's step-down procedure (uniformly more powerful than Bonferroni
    /// while controlling the same family-wise error rate).
    Holm,
}

/// Scheme for collapsing a view's per-component p-values into one score.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Aggregation {
    /// Keep the smallest p-value (the paper's default "lowest value").
    MinP,
    /// Bonferroni-adjusted minimum: `min(1, k · min p)`.
    BonferroniMin,
    /// Fisher's method: `−2 Σ ln p ~ χ²(2k)`.
    Fisher,
    /// Stouffer's method: `Σ Φ⁻¹(1 − pᵢ) / √k`.
    Stouffer,
}

fn validate_ps(ps: &[f64]) -> Result<()> {
    if ps.is_empty() {
        return Err(StatsError::InsufficientData {
            what: "p-value set",
            needed: 1,
            got: 0,
        });
    }
    for &p in ps {
        if !(0.0..=1.0).contains(&p) || p.is_nan() {
            return Err(StatsError::InvalidParameter {
                name: "p",
                value: p,
                expected: "0 <= p <= 1",
            });
        }
    }
    Ok(())
}

/// Adjusts a family of p-values, preserving input order.
pub fn adjust_p_values(ps: &[f64], method: Correction) -> Result<Vec<f64>> {
    validate_ps(ps)?;
    let k = ps.len() as f64;
    match method {
        Correction::None => Ok(ps.to_vec()),
        Correction::Bonferroni => Ok(ps.iter().map(|&p| (p * k).min(1.0)).collect()),
        Correction::Holm => {
            let mut idx: Vec<usize> = (0..ps.len()).collect();
            idx.sort_by(|&a, &b| ps[a].partial_cmp(&ps[b]).expect("validated p-values"));
            let mut adjusted = vec![0.0; ps.len()];
            let mut running_max: f64 = 0.0;
            for (rank, &i) in idx.iter().enumerate() {
                let factor = (ps.len() - rank) as f64;
                let adj = (ps[i] * factor).min(1.0);
                running_max = running_max.max(adj);
                adjusted[i] = running_max;
            }
            Ok(adjusted)
        }
    }
}

/// Aggregates a view's component p-values into one robustness p-value.
pub fn aggregate_p_values(ps: &[f64], scheme: Aggregation) -> Result<f64> {
    validate_ps(ps)?;
    let k = ps.len() as f64;
    match scheme {
        Aggregation::MinP => Ok(ps.iter().copied().fold(f64::INFINITY, f64::min)),
        Aggregation::BonferroniMin => {
            let min = ps.iter().copied().fold(f64::INFINITY, f64::min);
            Ok((min * k).min(1.0))
        }
        Aggregation::Fisher => {
            // Guard against log(0); clamp to the smallest positive double.
            let stat: f64 = ps
                .iter()
                .map(|&p| -2.0 * p.max(f64::MIN_POSITIVE).ln())
                .sum();
            let chi = crate::dist::ChiSquared::new(2.0 * k)?;
            Ok(chi.sf(stat))
        }
        Aggregation::Stouffer => {
            let mut z_sum = 0.0;
            for &p in ps {
                // Φ⁻¹(1 − p): large positive z for small p.
                let clamped = p.clamp(1e-300, 1.0 - 1e-16);
                z_sum += inverse_normal_cdf(1.0 - clamped)?;
            }
            let z = z_sum / k.sqrt();
            Ok(Normal::standard().sf(z))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn bonferroni_multiplies_and_caps() {
        let adj = adjust_p_values(&[0.01, 0.2, 0.5], Correction::Bonferroni).unwrap();
        close(adj[0], 0.03, 1e-12);
        close(adj[1], 0.6, 1e-12);
        close(adj[2], 1.0, 1e-12);
    }

    #[test]
    fn holm_matches_reference() {
        // R: p.adjust(c(0.01, 0.04, 0.03, 0.005), "holm")
        //    = 0.03, 0.06, 0.06, 0.02.
        let adj = adjust_p_values(&[0.01, 0.04, 0.03, 0.005], Correction::Holm).unwrap();
        close(adj[0], 0.03, 1e-12);
        close(adj[1], 0.06, 1e-12);
        close(adj[2], 0.06, 1e-12);
        close(adj[3], 0.02, 1e-12);
    }

    #[test]
    fn holm_never_exceeds_bonferroni() {
        let ps = [0.001, 0.011, 0.03, 0.045, 0.2, 0.7];
        let holm = adjust_p_values(&ps, Correction::Holm).unwrap();
        let bonf = adjust_p_values(&ps, Correction::Bonferroni).unwrap();
        for (h, b) in holm.iter().zip(&bonf) {
            assert!(h <= b, "Holm must dominate Bonferroni");
        }
    }

    #[test]
    fn none_is_identity() {
        let ps = [0.3, 0.01];
        assert_eq!(adjust_p_values(&ps, Correction::None).unwrap(), ps.to_vec());
    }

    #[test]
    fn adjust_validates_input() {
        assert!(adjust_p_values(&[], Correction::Bonferroni).is_err());
        assert!(adjust_p_values(&[1.5], Correction::Holm).is_err());
        assert!(adjust_p_values(&[-0.1], Correction::None).is_err());
        assert!(adjust_p_values(&[f64::NAN], Correction::Holm).is_err());
    }

    #[test]
    fn min_p_and_bonferroni_min() {
        let ps = [0.02, 0.5, 0.9];
        close(
            aggregate_p_values(&ps, Aggregation::MinP).unwrap(),
            0.02,
            1e-12,
        );
        close(
            aggregate_p_values(&ps, Aggregation::BonferroniMin).unwrap(),
            0.06,
            1e-12,
        );
    }

    #[test]
    fn fisher_reference() {
        // Fisher's statistic for (0.1, 0.2): −2(ln .1 + ln .2) = 7.824;
        // χ²(4) upper tail ≈ 0.0983.
        let p = aggregate_p_values(&[0.1, 0.2], Aggregation::Fisher).unwrap();
        close(p, 0.098_3, 1e-3);
    }

    #[test]
    fn stouffer_symmetric_null() {
        // All p = 0.5 → z = 0 → aggregate 0.5.
        let p = aggregate_p_values(&[0.5, 0.5, 0.5], Aggregation::Stouffer).unwrap();
        close(p, 0.5, 1e-9);
    }

    #[test]
    fn aggregation_rewards_consistent_evidence() {
        // Several moderately small p-values: Fisher/Stouffer amplify,
        // Bonferroni-min does not.
        let ps = [0.04, 0.05, 0.05, 0.06];
        let fisher = aggregate_p_values(&ps, Aggregation::Fisher).unwrap();
        let stouffer = aggregate_p_values(&ps, Aggregation::Stouffer).unwrap();
        let bonf = aggregate_p_values(&ps, Aggregation::BonferroniMin).unwrap();
        assert!(fisher < bonf);
        assert!(stouffer < bonf);
    }

    #[test]
    fn aggregation_handles_extreme_p() {
        for scheme in [
            Aggregation::MinP,
            Aggregation::BonferroniMin,
            Aggregation::Fisher,
            Aggregation::Stouffer,
        ] {
            let p = aggregate_p_values(&[0.0, 1.0, 0.5], scheme).unwrap();
            assert!((0.0..=1.0).contains(&p), "{scheme:?} produced {p}");
        }
    }

    #[test]
    fn single_p_value_aggregates_to_itself() {
        for scheme in [Aggregation::MinP, Aggregation::BonferroniMin] {
            close(aggregate_p_values(&[0.07], scheme).unwrap(), 0.07, 1e-12);
        }
        // Fisher with one p: −2 ln p ~ χ²(2) ⇒ returns p itself.
        close(
            aggregate_p_values(&[0.07], Aggregation::Fisher).unwrap(),
            0.07,
            1e-9,
        );
        close(
            aggregate_p_values(&[0.07], Aggregation::Stouffer).unwrap(),
            0.07,
            1e-9,
        );
    }
}
