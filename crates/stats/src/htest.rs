//! Hypothesis tests used by Ziggy's robustness (post-processing) stage and
//! by the test suite to cross-validate the effect-size machinery.

use serde::{Deserialize, Serialize};

use crate::dist::{ChiSquared, ContinuousDistribution, FisherF, Normal, StudentT};
use crate::effect::fisher_z;
use crate::error::{Result, StatsError};
use crate::moments::UniMoments;

/// Outcome of a hypothesis test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TestResult {
    /// The test statistic (t, F, χ², D, or z depending on the test).
    pub statistic: f64,
    /// Two-sided p-value (one-sided where noted on the test function).
    pub p_value: f64,
    /// Degrees of freedom when meaningful; NaN otherwise.
    pub df: f64,
}

impl TestResult {
    /// True when the p-value falls below `alpha`.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value.is_finite() && self.p_value < alpha
    }
}

/// Welch's unequal-variance t-test for a difference in means; two-sided.
pub fn welch_t_test(a: &UniMoments, b: &UniMoments) -> Result<TestResult> {
    if a.count() < 2 || b.count() < 2 {
        return Err(StatsError::InsufficientData {
            what: "Welch t-test",
            needed: 2,
            got: a.count().min(b.count()) as usize,
        });
    }
    let (na, nb) = (a.count() as f64, b.count() as f64);
    let (va, vb) = (a.variance()?, b.variance()?);
    let se2 = va / na + vb / nb;
    if se2 <= 0.0 {
        return if (a.mean() - b.mean()).abs() < f64::EPSILON {
            Ok(TestResult {
                statistic: 0.0,
                p_value: 1.0,
                df: na + nb - 2.0,
            })
        } else {
            Err(StatsError::Degenerate(
                "Welch t-test with zero variance on both sides",
            ))
        };
    }
    let t = (a.mean() - b.mean()) / se2.sqrt();
    // Welch–Satterthwaite degrees of freedom.
    let df = se2 * se2 / ((va / na).powi(2) / (na - 1.0) + (vb / nb).powi(2) / (nb - 1.0));
    let p = StudentT::new(df)?.two_sided_p(t);
    Ok(TestResult {
        statistic: t,
        p_value: p,
        df,
    })
}

/// Variance-ratio F test `s_a² / s_b²`; two-sided.
pub fn variance_ratio_test(a: &UniMoments, b: &UniMoments) -> Result<TestResult> {
    if a.count() < 2 || b.count() < 2 {
        return Err(StatsError::InsufficientData {
            what: "variance-ratio F test",
            needed: 2,
            got: a.count().min(b.count()) as usize,
        });
    }
    let (va, vb) = (a.variance()?, b.variance()?);
    if va <= 0.0 || vb <= 0.0 {
        return Err(StatsError::Degenerate("F test with a constant sample"));
    }
    let f = va / vb;
    let d1 = a.count() as f64 - 1.0;
    let d2 = b.count() as f64 - 1.0;
    let dist = FisherF::new(d1, d2)?;
    let tail = dist.cdf(f).min(dist.sf(f));
    Ok(TestResult {
        statistic: f,
        p_value: (2.0 * tail).min(1.0),
        df: d1,
    })
}

/// Fisher-z test for the equality of two correlation coefficients.
pub fn fisher_z_test(r_a: f64, n_a: u64, r_b: f64, n_b: u64) -> Result<TestResult> {
    if n_a < 4 || n_b < 4 {
        return Err(StatsError::InsufficientData {
            what: "Fisher z test",
            needed: 4,
            got: n_a.min(n_b) as usize,
        });
    }
    for (name, r) in [("r_a", r_a), ("r_b", r_b)] {
        if !(-1.0..=1.0).contains(&r) || r.is_nan() {
            return Err(StatsError::InvalidParameter {
                name,
                value: r,
                expected: "-1 <= r <= 1",
            });
        }
    }
    let se = (1.0 / (n_a as f64 - 3.0) + 1.0 / (n_b as f64 - 3.0)).sqrt();
    let z = (fisher_z(r_a) - fisher_z(r_b)) / se;
    Ok(TestResult {
        statistic: z,
        p_value: Normal::two_sided_p(z),
        df: f64::NAN,
    })
}

/// Chi-squared goodness-of-fit test of observed counts against expected
/// *proportions* (which must sum to ~1). One-sided (upper tail), as usual.
pub fn chi2_gof_test(observed: &[u64], expected_props: &[f64]) -> Result<TestResult> {
    if observed.len() != expected_props.len() {
        return Err(StatsError::LengthMismatch {
            left: observed.len(),
            right: expected_props.len(),
        });
    }
    let n: u64 = observed.iter().sum();
    if n == 0 {
        return Err(StatsError::InsufficientData {
            what: "chi² GOF",
            needed: 1,
            got: 0,
        });
    }
    let prop_sum: f64 = expected_props.iter().sum();
    if (prop_sum - 1.0).abs() > 1e-6 {
        return Err(StatsError::InvalidParameter {
            name: "expected_props",
            value: prop_sum,
            expected: "proportions summing to 1",
        });
    }
    let mut chi2 = 0.0;
    let mut cells = 0usize;
    for (&o, &p) in observed.iter().zip(expected_props) {
        if p <= 0.0 {
            if o > 0 {
                return Err(StatsError::Degenerate(
                    "observed count in a zero-probability cell",
                ));
            }
            continue;
        }
        cells += 1;
        let e = p * n as f64;
        chi2 += (o as f64 - e).powi(2) / e;
    }
    if cells < 2 {
        return Err(StatsError::Degenerate("chi² GOF over fewer than two cells"));
    }
    let df = (cells - 1) as f64;
    Ok(TestResult {
        statistic: chi2,
        p_value: ChiSquared::new(df)?.sf(chi2),
        df,
    })
}

/// Chi-squared test of independence on an `r × c` contingency table given in
/// row-major order. One-sided (upper tail).
pub fn chi2_independence_test(table: &[Vec<u64>]) -> Result<TestResult> {
    let rows = table.len();
    if rows < 2 {
        return Err(StatsError::InsufficientData {
            what: "chi² independence",
            needed: 2,
            got: rows,
        });
    }
    let cols = table[0].len();
    if cols < 2 {
        return Err(StatsError::InsufficientData {
            what: "chi² independence",
            needed: 2,
            got: cols,
        });
    }
    if table.iter().any(|r| r.len() != cols) {
        return Err(StatsError::Degenerate("ragged contingency table"));
    }
    let row_sums: Vec<u64> = table.iter().map(|r| r.iter().sum()).collect();
    let col_sums: Vec<u64> = (0..cols)
        .map(|j| table.iter().map(|r| r[j]).sum())
        .collect();
    let n: u64 = row_sums.iter().sum();
    if n == 0 {
        return Err(StatsError::InsufficientData {
            what: "chi² independence",
            needed: 1,
            got: 0,
        });
    }
    // Drop empty rows/columns from the degrees of freedom.
    let eff_rows = row_sums.iter().filter(|&&s| s > 0).count();
    let eff_cols = col_sums.iter().filter(|&&s| s > 0).count();
    if eff_rows < 2 || eff_cols < 2 {
        return Err(StatsError::Degenerate(
            "contingency table with a single populated margin",
        ));
    }
    let mut chi2 = 0.0;
    for i in 0..rows {
        for j in 0..cols {
            if row_sums[i] == 0 || col_sums[j] == 0 {
                continue;
            }
            let e = row_sums[i] as f64 * col_sums[j] as f64 / n as f64;
            chi2 += (table[i][j] as f64 - e).powi(2) / e;
        }
    }
    let df = ((eff_rows - 1) * (eff_cols - 1)) as f64;
    Ok(TestResult {
        statistic: chi2,
        p_value: ChiSquared::new(df)?.sf(chi2),
        df,
    })
}

/// Two-sample Kolmogorov–Smirnov test with the asymptotic Kolmogorov
/// distribution for the p-value.
pub fn ks_test(a: &[f64], b: &[f64]) -> Result<TestResult> {
    let mut xa: Vec<f64> = a.iter().copied().filter(|v| v.is_finite()).collect();
    let mut xb: Vec<f64> = b.iter().copied().filter(|v| v.is_finite()).collect();
    if xa.is_empty() || xb.is_empty() {
        return Err(StatsError::InsufficientData {
            what: "KS test",
            needed: 1,
            got: xa.len().min(xb.len()),
        });
    }
    xa.sort_by(|p, q| p.partial_cmp(q).expect("finite"));
    xb.sort_by(|p, q| p.partial_cmp(q).expect("finite"));
    let (na, nb) = (xa.len(), xb.len());
    let mut i = 0;
    let mut j = 0;
    let mut d: f64 = 0.0;
    while i < na && j < nb {
        let x = xa[i].min(xb[j]);
        while i < na && xa[i] <= x {
            i += 1;
        }
        while j < nb && xb[j] <= x {
            j += 1;
        }
        let fa = i as f64 / na as f64;
        let fb = j as f64 / nb as f64;
        d = d.max((fa - fb).abs());
    }
    let ne = (na as f64 * nb as f64) / (na as f64 + nb as f64);
    let lambda = (ne.sqrt() + 0.12 + 0.11 / ne.sqrt()) * d;
    Ok(TestResult {
        statistic: d,
        p_value: kolmogorov_sf(lambda),
        df: f64::NAN,
    })
}

/// Survival function of the Kolmogorov distribution,
/// `Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2k²λ²}`.
fn kolmogorov_sf(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64).powi(2) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-16 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    fn m(vals: &[f64]) -> UniMoments {
        UniMoments::from_slice(vals)
    }

    #[test]
    fn welch_identical_samples() {
        let a = m(&[1.0, 2.0, 3.0, 4.0]);
        let t = welch_t_test(&a, &a).unwrap();
        close(t.statistic, 0.0, 1e-12);
        close(t.p_value, 1.0, 1e-9);
    }

    #[test]
    fn welch_reference_value() {
        // R: t.test(c(1,2,3,4,5), c(3,4,5,6,7)) → t = −2, df = 8, p = 0.0805.
        let a = m(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let b = m(&[3.0, 4.0, 5.0, 6.0, 7.0]);
        let t = welch_t_test(&a, &b).unwrap();
        close(t.statistic, -2.0, 1e-10);
        close(t.df, 8.0, 1e-9);
        close(t.p_value, 0.080_516, 1e-5);
    }

    #[test]
    fn welch_unequal_variances_df_shrinks() {
        let a = m(&[0.0, 0.1, 0.2, 0.0, 0.1, 0.2]);
        let b = m(&[0.0, 10.0, -10.0, 5.0, -5.0, 8.0]);
        let t = welch_t_test(&a, &b).unwrap();
        assert!(t.df < 10.0, "df must collapse toward the noisy sample");
    }

    #[test]
    fn welch_insufficient() {
        assert!(welch_t_test(&m(&[1.0]), &m(&[1.0, 2.0])).is_err());
    }

    #[test]
    fn f_test_reference() {
        // var.test(c(1,2,3,4,5), c(2,4,6,8,10)): F = 0.25, p = 0.2080.
        let a = m(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let b = m(&[2.0, 4.0, 6.0, 8.0, 10.0]);
        let r = variance_ratio_test(&a, &b).unwrap();
        close(r.statistic, 0.25, 1e-12);
        close(r.p_value, 0.208, 1e-3);
    }

    #[test]
    fn f_test_symmetric_in_p() {
        let a = m(&[1.0, 3.0, 5.0, 9.0]);
        let b = m(&[2.0, 2.5, 3.0, 3.5]);
        let ab = variance_ratio_test(&a, &b).unwrap();
        let ba = variance_ratio_test(&b, &a).unwrap();
        close(ab.p_value, ba.p_value, 1e-10);
    }

    #[test]
    fn fisher_z_test_basics() {
        let r = fisher_z_test(0.8, 103, 0.8, 203).unwrap();
        close(r.statistic, 0.0, 1e-12);
        let strong = fisher_z_test(0.9, 100, 0.0, 100).unwrap();
        assert!(strong.p_value < 1e-10);
    }

    #[test]
    fn chi2_gof_uniform_fit() {
        let r = chi2_gof_test(&[25, 25, 25, 25], &[0.25; 4]).unwrap();
        close(r.statistic, 0.0, 1e-12);
        close(r.p_value, 1.0, 1e-9);
        assert_eq!(r.df, 3.0);
    }

    #[test]
    fn chi2_gof_reference() {
        // Observed [50, 30, 20] vs uniform: χ² = (10²+ (−3.33…)² …)/e …
        // e = 100/3; χ² = (50−e)²/e + (30−e)²/e + (20−e)²/e = 14.0.
        let r = chi2_gof_test(&[50, 30, 20], &[1.0 / 3.0; 3]).unwrap();
        close(r.statistic, 14.0, 1e-9);
        assert!(r.p_value < 0.001);
    }

    #[test]
    fn chi2_gof_zero_probability_cell() {
        assert!(chi2_gof_test(&[5, 5], &[1.0, 0.0]).is_err());
        // Zero-probability cell with zero observed is tolerated.
        let ok = chi2_gof_test(&[5, 5, 0], &[0.5, 0.5, 0.0]).unwrap();
        assert_eq!(ok.df, 1.0);
    }

    #[test]
    fn chi2_independence_independent_table() {
        // Perfectly proportional rows → χ² = 0.
        let t = chi2_independence_test(&[vec![10, 20], vec![30, 60]]).unwrap();
        close(t.statistic, 0.0, 1e-9);
        close(t.p_value, 1.0, 1e-6);
    }

    #[test]
    fn chi2_independence_dependent_table() {
        let t = chi2_independence_test(&[vec![50, 0], vec![0, 50]]).unwrap();
        close(t.statistic, 100.0, 1e-9);
        assert!(t.p_value < 1e-10);
    }

    #[test]
    fn chi2_independence_validation() {
        assert!(chi2_independence_test(&[vec![1, 2]]).is_err());
        assert!(chi2_independence_test(&[vec![1], vec![2]]).is_err());
        assert!(chi2_independence_test(&[vec![1, 2], vec![3]]).is_err());
        assert!(chi2_independence_test(&[vec![0, 0], vec![0, 0]]).is_err());
    }

    #[test]
    fn ks_identical_samples() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let r = ks_test(&a, &a).unwrap();
        close(r.statistic, 0.0, 1e-12);
        assert!(r.p_value > 0.99);
    }

    #[test]
    fn ks_disjoint_samples() {
        let a: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..50).map(|i| 1000.0 + i as f64).collect();
        let r = ks_test(&a, &b).unwrap();
        close(r.statistic, 1.0, 1e-12);
        assert!(r.p_value < 1e-10);
    }

    #[test]
    fn ks_shifted_distribution_detected() {
        let a: Vec<f64> = (0..200).map(|i| (i as f64 * 0.7).sin()).collect();
        let b: Vec<f64> = (0..200).map(|i| (i as f64 * 0.7).sin() + 1.0).collect();
        let r = ks_test(&a, &b).unwrap();
        assert!(r.p_value < 0.01);
    }

    #[test]
    fn ks_empty_errors() {
        assert!(ks_test(&[], &[1.0]).is_err());
        assert!(ks_test(&[f64::NAN], &[1.0]).is_err());
    }

    #[test]
    fn kolmogorov_sf_reference() {
        // Q(0.83) ≈ 0.4963 (classic table); Q → 1 at 0, → 0 at ∞.
        close(kolmogorov_sf(0.83), 0.496, 2e-3);
        assert_eq!(kolmogorov_sf(0.0), 1.0);
        assert!(kolmogorov_sf(5.0) < 1e-10);
    }
}
