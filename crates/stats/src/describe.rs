//! Single-pass descriptive summaries.
//!
//! [`Summary`] accumulates count, mean, variance (via Welford's numerically
//! stable recurrence), skewness, kurtosis and extrema in one pass, ignoring
//! non-finite values — the store encodes SQL NULLs as NaN.

use serde::{Deserialize, Serialize};

use crate::error::{Result, StatsError};

/// Streaming descriptive summary of a numeric sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    m3: f64,
    m4: f64,
    min: f64,
    max: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Self::new()
    }
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            m3: 0.0,
            m4: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds a summary from a slice, skipping non-finite entries.
    pub fn from_slice(values: &[f64]) -> Self {
        let mut s = Self::new();
        for &v in values {
            s.push(v);
        }
        s
    }

    /// Adds one observation; non-finite values (NULL encoding) are skipped.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        let n1 = self.n as f64;
        self.n += 1;
        let n = self.n as f64;
        let delta = x - self.mean;
        let delta_n = delta / n;
        let delta_n2 = delta_n * delta_n;
        let term1 = delta * delta_n * n1;
        self.mean += delta_n;
        self.m4 += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * self.m2
            - 4.0 * delta_n * self.m3;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merges another summary into this one (parallel combine).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let (na, nb) = (self.n as f64, other.n as f64);
        let n = na + nb;
        let delta = other.mean - self.mean;
        let delta2 = delta * delta;
        let delta3 = delta2 * delta;
        let delta4 = delta2 * delta2;
        let mean = self.mean + delta * nb / n;
        let m2 = self.m2 + other.m2 + delta2 * na * nb / n;
        let m3 = self.m3
            + other.m3
            + delta3 * na * nb * (na - nb) / (n * n)
            + 3.0 * delta * (na * other.m2 - nb * self.m2) / n;
        let m4 = self.m4
            + other.m4
            + delta4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n)
            + 6.0 * delta2 * (na * na * other.m2 + nb * nb * self.m2) / (n * n)
            + 4.0 * delta * (na * other.m3 - nb * self.m3) / n;
        self.n += other.n;
        self.mean = mean;
        self.m2 = m2;
        self.m3 = m3;
        self.m4 = m4;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of finite observations seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean; NaN when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (`n − 1` denominator).
    pub fn variance(&self) -> Result<f64> {
        if self.n < 2 {
            return Err(StatsError::InsufficientData {
                what: "sample variance",
                needed: 2,
                got: self.n as usize,
            });
        }
        Ok((self.m2 / (self.n as f64 - 1.0)).max(0.0))
    }

    /// Population variance (`n` denominator).
    pub fn population_variance(&self) -> Result<f64> {
        if self.n < 1 {
            return Err(StatsError::InsufficientData {
                what: "population variance",
                needed: 1,
                got: 0,
            });
        }
        Ok((self.m2 / self.n as f64).max(0.0))
    }

    /// Unbiased sample standard deviation.
    pub fn std_dev(&self) -> Result<f64> {
        Ok(self.variance()?.sqrt())
    }

    /// Sample skewness (`g1`, biased moment estimator).
    pub fn skewness(&self) -> Result<f64> {
        if self.n < 3 {
            return Err(StatsError::InsufficientData {
                what: "skewness",
                needed: 3,
                got: self.n as usize,
            });
        }
        let n = self.n as f64;
        let var = self.m2 / n;
        if var <= 0.0 {
            return Err(StatsError::Degenerate("skewness of a constant sample"));
        }
        Ok((self.m3 / n) / var.powf(1.5))
    }

    /// Excess kurtosis (`g2`, biased moment estimator).
    pub fn kurtosis(&self) -> Result<f64> {
        if self.n < 4 {
            return Err(StatsError::InsufficientData {
                what: "kurtosis",
                needed: 4,
                got: self.n as usize,
            });
        }
        let n = self.n as f64;
        let var = self.m2 / n;
        if var <= 0.0 {
            return Err(StatsError::Degenerate("kurtosis of a constant sample"));
        }
        Ok((self.m4 / n) / (var * var) - 3.0)
    }

    /// Smallest finite observation; NaN when empty.
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest finite observation; NaN when empty.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Range `max − min`; NaN when empty.
    pub fn range(&self) -> f64 {
        self.max() - self.min()
    }
}

/// Computes the `q`-quantile (`0 ≤ q ≤ 1`) with linear interpolation
/// (type-7, the R default). Non-finite values are excluded.
pub fn quantile(values: &[f64], q: f64) -> Result<f64> {
    if !(0.0..=1.0).contains(&q) {
        return Err(StatsError::InvalidParameter {
            name: "q",
            value: q,
            expected: "0 <= q <= 1",
        });
    }
    let mut finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return Err(StatsError::InsufficientData {
            what: "quantile",
            needed: 1,
            got: 0,
        });
    }
    finite.sort_by(|a, b| a.partial_cmp(b).expect("finite values are comparable"));
    let h = q * (finite.len() as f64 - 1.0);
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        Ok(finite[lo])
    } else {
        let frac = h - lo as f64;
        Ok(finite[lo] * (1.0 - frac) + finite[hi] * frac)
    }
}

/// Median shortcut for [`quantile`] with `q = 0.5`.
pub fn median(values: &[f64]) -> Result<f64> {
    quantile(values, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert!(s.mean().is_nan());
        assert!(s.min().is_nan());
        assert!(s.variance().is_err());
    }

    #[test]
    fn known_small_sample() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        close(s.mean(), 5.0, 1e-12);
        close(s.population_variance().unwrap(), 4.0, 1e-12);
        close(s.variance().unwrap(), 32.0 / 7.0, 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn skewness_and_kurtosis_of_symmetric_sample() {
        let s = Summary::from_slice(&[-2.0, -1.0, 0.0, 1.0, 2.0]);
        close(s.skewness().unwrap(), 0.0, 1e-12);
        // Uniform-ish discrete sample: m4/m2² − 3 = (68/5)/(2·2) − 3 = 0.4·8.5 − 3.
        close(s.kurtosis().unwrap(), (34.0 / 5.0) / 4.0 - 3.0, 1e-12);
    }

    #[test]
    fn skewed_sample_sign() {
        let s = Summary::from_slice(&[1.0, 1.0, 1.0, 1.0, 100.0]);
        assert!(s.skewness().unwrap() > 1.0);
    }

    #[test]
    fn nan_and_infinity_skipped() {
        let s = Summary::from_slice(&[1.0, f64::NAN, 2.0, f64::INFINITY, 3.0, f64::NEG_INFINITY]);
        assert_eq!(s.count(), 3);
        close(s.mean(), 2.0, 1e-12);
    }

    #[test]
    fn constant_sample_degenerate_higher_moments() {
        let s = Summary::from_slice(&[5.0; 10]);
        close(s.variance().unwrap(), 0.0, 1e-12);
        assert!(matches!(s.skewness(), Err(StatsError::Degenerate(_))));
        assert!(matches!(s.kurtosis(), Err(StatsError::Degenerate(_))));
    }

    #[test]
    fn merge_equals_bulk() {
        let all: Vec<f64> = (0..100)
            .map(|i| (i as f64) * 0.37 - 3.0 + ((i * i) % 17) as f64)
            .collect();
        let bulk = Summary::from_slice(&all);
        let mut left = Summary::from_slice(&all[..33]);
        let right = Summary::from_slice(&all[33..]);
        left.merge(&right);
        close(left.mean(), bulk.mean(), 1e-10);
        close(left.variance().unwrap(), bulk.variance().unwrap(), 1e-9);
        close(left.skewness().unwrap(), bulk.skewness().unwrap(), 1e-9);
        close(left.kurtosis().unwrap(), bulk.kurtosis().unwrap(), 1e-9);
        assert_eq!(left.count(), bulk.count());
        assert_eq!(left.min(), bulk.min());
        assert_eq!(left.max(), bulk.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = Summary::from_slice(&[1.0, 2.0, 3.0]);
        let before = s;
        s.merge(&Summary::new());
        assert_eq!(s, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn quantile_interpolation() {
        let v = [1.0, 2.0, 3.0, 4.0];
        close(quantile(&v, 0.0).unwrap(), 1.0, 1e-12);
        close(quantile(&v, 1.0).unwrap(), 4.0, 1e-12);
        close(quantile(&v, 0.5).unwrap(), 2.5, 1e-12);
        close(quantile(&v, 0.25).unwrap(), 1.75, 1e-12);
    }

    #[test]
    fn median_odd_even() {
        close(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0, 1e-12);
        close(median(&[4.0, 1.0, 2.0, 3.0]).unwrap(), 2.5, 1e-12);
    }

    #[test]
    fn quantile_rejects_bad_q_and_empty() {
        assert!(quantile(&[1.0], 1.5).is_err());
        assert!(quantile(&[], 0.5).is_err());
        assert!(quantile(&[f64::NAN], 0.5).is_err());
    }
}
