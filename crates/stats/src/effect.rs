//! Effect sizes — the raw material of Ziggy's Zig-Components.
//!
//! The paper grounds its dissimilarity indicators in the meta-analysis
//! literature (Hedges & Olkin, *Statistical Methods for Meta-Analysis*,
//! 1985): each Zig-Component is an effect size comparing the user's
//! selection (`inside`) against the rest of the table (`outside`), together
//! with an asymptotic standard error that the post-processing stage turns
//! into a significance level.
//!
//! Provided effects:
//!
//! * [`mean_difference`] — Cohen's d (standardized mean difference).
//! * [`hedges_g`] — Cohen's d with the small-sample bias correction `J`.
//! * [`log_std_ratio`] — log ratio of standard deviations.
//! * [`correlation_difference`] — difference of Fisher-z–transformed
//!   correlation coefficients.
//! * [`cohens_w`] — frequency divergence for categorical columns.

use serde::{Deserialize, Serialize};

use crate::dist::{ChiSquared, ContinuousDistribution, Normal};
use crate::error::{Result, StatsError};
use crate::moments::UniMoments;

/// An effect size with its asymptotic standard error and two-sided p-value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EffectSize {
    /// Signed magnitude of the effect (units depend on the effect family).
    pub value: f64,
    /// Asymptotic standard error; NaN when no closed form applies.
    pub se: f64,
    /// Two-sided p-value of the null "no difference".
    pub p_value: f64,
}

impl EffectSize {
    /// Builds an effect from a value and standard error, deriving the
    /// p-value from the asymptotic normal `value / se`.
    pub fn from_z(value: f64, se: f64) -> Self {
        let p = if se > 0.0 && se.is_finite() {
            Normal::two_sided_p(value / se)
        } else if value == 0.0 {
            1.0
        } else {
            f64::NAN
        };
        Self {
            value,
            se,
            p_value: p,
        }
    }

    /// z-statistic `value / se`; NaN when the SE is unusable.
    pub fn z(&self) -> f64 {
        if self.se > 0.0 && self.se.is_finite() {
            self.value / self.se
        } else {
            f64::NAN
        }
    }

    /// 95% normal-theory confidence interval `(lo, hi)`.
    pub fn ci95(&self) -> (f64, f64) {
        const Z975: f64 = 1.959_963_984_540_054;
        (self.value - Z975 * self.se, self.value + Z975 * self.se)
    }

    /// True when the p-value falls below `alpha`.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value.is_finite() && self.p_value < alpha
    }
}

fn require_counts(inside: &UniMoments, outside: &UniMoments, what: &'static str) -> Result<()> {
    if inside.count() < 2 {
        return Err(StatsError::InsufficientData {
            what,
            needed: 2,
            got: inside.count() as usize,
        });
    }
    if outside.count() < 2 {
        return Err(StatsError::InsufficientData {
            what,
            needed: 2,
            got: outside.count() as usize,
        });
    }
    Ok(())
}

/// Cohen's d: `(mean_in − mean_out) / s_pooled`.
///
/// Positive values mean the selection sits *above* the rest of the data.
/// SE uses the standard large-sample approximation
/// `√(1/n_i + 1/n_o + d²/(2(n_i + n_o)))`.
pub fn mean_difference(inside: &UniMoments, outside: &UniMoments) -> Result<EffectSize> {
    require_counts(inside, outside, "Cohen's d")?;
    let (ni, no) = (inside.count() as f64, outside.count() as f64);
    let vi = inside.variance()?;
    let vo = outside.variance()?;
    let pooled = ((ni - 1.0) * vi + (no - 1.0) * vo) / (ni + no - 2.0);
    if pooled <= 0.0 {
        // Both sides constant: identical means ⇒ no effect; different means
        // ⇒ an infinite standardized difference, reported as degenerate.
        return if (inside.mean() - outside.mean()).abs() < f64::EPSILON {
            Ok(EffectSize {
                value: 0.0,
                se: f64::NAN,
                p_value: 1.0,
            })
        } else {
            Err(StatsError::Degenerate(
                "standardized mean difference with zero pooled variance",
            ))
        };
    }
    let d = (inside.mean() - outside.mean()) / pooled.sqrt();
    let se = (1.0 / ni + 1.0 / no + d * d / (2.0 * (ni + no))).sqrt();
    Ok(EffectSize::from_z(d, se))
}

/// Hedges' g: Cohen's d corrected for small-sample bias with
/// `J(df) = 1 − 3 / (4·df − 1)`, `df = n_i + n_o − 2` (Hedges & Olkin).
pub fn hedges_g(inside: &UniMoments, outside: &UniMoments) -> Result<EffectSize> {
    let d = mean_difference(inside, outside)?;
    let (ni, no) = (inside.count() as f64, outside.count() as f64);
    let df = ni + no - 2.0;
    let j = 1.0 - 3.0 / (4.0 * df - 1.0);
    let g = d.value * j;
    // Hedges & Olkin large-sample variance of g.
    let var = (ni + no) / (ni * no) + g * g / (2.0 * (ni + no));
    Ok(EffectSize::from_z(g, var.sqrt()))
}

/// Log ratio of standard deviations `ln(s_in / s_out)`.
///
/// Zero when the dispersions agree; negative when the selection is *tighter*
/// than the rest. SE is the classic `√(1/(2(n_i−1)) + 1/(2(n_o−1)))`.
pub fn log_std_ratio(inside: &UniMoments, outside: &UniMoments) -> Result<EffectSize> {
    require_counts(inside, outside, "log std-dev ratio")?;
    let si = inside.std_dev()?;
    let so = outside.std_dev()?;
    if si <= 0.0 || so <= 0.0 {
        return Err(StatsError::Degenerate(
            "log std-dev ratio with a constant sample",
        ));
    }
    let (ni, no) = (inside.count() as f64, outside.count() as f64);
    let value = (si / so).ln();
    let se = (1.0 / (2.0 * (ni - 1.0)) + 1.0 / (2.0 * (no - 1.0))).sqrt();
    Ok(EffectSize::from_z(value, se))
}

/// Fisher z transform `atanh(r)`, clamping away from ±1.
pub fn fisher_z(r: f64) -> f64 {
    let r = r.clamp(-0.999_999_999, 0.999_999_999);
    r.atanh()
}

/// Difference of correlation coefficients via Fisher's z:
/// `atanh(r_in) − atanh(r_out)`, SE `√(1/(n_i−3) + 1/(n_o−3))`.
pub fn correlation_difference(
    r_inside: f64,
    n_inside: u64,
    r_outside: f64,
    n_outside: u64,
) -> Result<EffectSize> {
    for (name, r) in [("r_inside", r_inside), ("r_outside", r_outside)] {
        if !(-1.0..=1.0).contains(&r) || r.is_nan() {
            return Err(StatsError::InvalidParameter {
                name,
                value: r,
                expected: "-1 <= r <= 1",
            });
        }
    }
    if n_inside < 4 || n_outside < 4 {
        return Err(StatsError::InsufficientData {
            what: "correlation difference",
            needed: 4,
            got: n_inside.min(n_outside) as usize,
        });
    }
    let value = fisher_z(r_inside) - fisher_z(r_outside);
    let se = (1.0 / (n_inside as f64 - 3.0) + 1.0 / (n_outside as f64 - 3.0)).sqrt();
    Ok(EffectSize::from_z(value, se))
}

/// Cohen's w for categorical columns: `√(Σ (p_in − p_out)² / p_out)` where
/// the complement's proportions play the role of the expected distribution.
///
/// The p-value comes from the chi-squared statistic `n_in · w²` with
/// `k − 1` degrees of freedom (goodness-of-fit against the complement).
/// Categories absent from *both* sides are dropped; categories absent only
/// from the complement are smoothed with half a pseudo-count to keep the
/// statistic finite.
pub fn cohens_w(inside_counts: &[u64], outside_counts: &[u64]) -> Result<EffectSize> {
    if inside_counts.len() != outside_counts.len() {
        return Err(StatsError::LengthMismatch {
            left: inside_counts.len(),
            right: outside_counts.len(),
        });
    }
    let n_in: u64 = inside_counts.iter().sum();
    let n_out: u64 = outside_counts.iter().sum();
    if n_in == 0 || n_out == 0 {
        return Err(StatsError::InsufficientData {
            what: "Cohen's w",
            needed: 1,
            got: 0,
        });
    }
    let mut w2 = 0.0;
    let mut active = 0usize;
    for (&ci, &co) in inside_counts.iter().zip(outside_counts) {
        if ci == 0 && co == 0 {
            continue;
        }
        active += 1;
        let p_in = ci as f64 / n_in as f64;
        // Smooth empty complement cells with half a pseudo-count.
        let p_out = if co == 0 {
            0.5 / n_out as f64
        } else {
            co as f64 / n_out as f64
        };
        let diff = p_in - p_out;
        w2 += diff * diff / p_out;
    }
    if active < 2 {
        return Err(StatsError::Degenerate(
            "Cohen's w over fewer than two categories",
        ));
    }
    let w = w2.sqrt();
    let df = (active - 1) as f64;
    let chi2 = n_in as f64 * w2;
    let p = ChiSquared::new(df)?.sf(chi2);
    // Delta-method SE of w from the noncentral χ² variance approximation.
    let se = if w > 0.0 {
        ((2.0 * df + 4.0 * chi2) / (2.0 * n_in as f64)).sqrt() / (2.0 * w * (n_in as f64).sqrt())
    } else {
        f64::NAN
    };
    Ok(EffectSize {
        value: w,
        se,
        p_value: p,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    fn moments_of(vals: &[f64]) -> UniMoments {
        UniMoments::from_slice(vals)
    }

    #[test]
    fn cohens_d_direction_and_magnitude() {
        // inside shifted +1 SD above outside.
        let inside = moments_of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let outside = moments_of(&[0.0, 1.0, 2.0, 3.0, 4.0]);
        let e = mean_difference(&inside, &outside).unwrap();
        // Pooled sd = sqrt(2.5); d = 1/sqrt(2.5).
        close(e.value, 1.0 / 2.5f64.sqrt(), 1e-12);
        assert!(e.value > 0.0);
    }

    #[test]
    fn cohens_d_zero_for_identical_samples() {
        let a = moments_of(&[1.0, 2.0, 3.0]);
        let e = mean_difference(&a, &a).unwrap();
        close(e.value, 0.0, 1e-12);
        close(e.p_value, 1.0, 1e-9);
    }

    #[test]
    fn cohens_d_antisymmetric() {
        let a = moments_of(&[5.0, 6.0, 7.0, 8.0]);
        let b = moments_of(&[1.0, 2.0, 3.0, 4.0]);
        let ab = mean_difference(&a, &b).unwrap();
        let ba = mean_difference(&b, &a).unwrap();
        close(ab.value, -ba.value, 1e-12);
        close(ab.p_value, ba.p_value, 1e-12);
    }

    #[test]
    fn cohens_d_insufficient_data() {
        let tiny = moments_of(&[1.0]);
        let ok = moments_of(&[1.0, 2.0, 3.0]);
        assert!(mean_difference(&tiny, &ok).is_err());
        assert!(mean_difference(&ok, &tiny).is_err());
    }

    #[test]
    fn cohens_d_constant_sides() {
        let c1 = moments_of(&[2.0, 2.0, 2.0]);
        let c2 = moments_of(&[3.0, 3.0, 3.0]);
        // Same constant ⇒ zero effect.
        let same = mean_difference(&c1, &c1).unwrap();
        close(same.value, 0.0, 1e-12);
        // Different constants ⇒ degenerate.
        assert!(matches!(
            mean_difference(&c1, &c2),
            Err(StatsError::Degenerate(_))
        ));
    }

    #[test]
    fn hedges_g_shrinks_d() {
        let inside = moments_of(&[3.0, 4.0, 5.0, 6.0]);
        let outside = moments_of(&[1.0, 2.0, 3.0, 4.0]);
        let d = mean_difference(&inside, &outside).unwrap();
        let g = hedges_g(&inside, &outside).unwrap();
        assert!(g.value.abs() < d.value.abs());
        // J(df=6) = 1 − 3/23.
        close(g.value, d.value * (1.0 - 3.0 / 23.0), 1e-12);
    }

    #[test]
    fn hedges_g_large_samples_converges_to_d() {
        let a: Vec<f64> = (0..5000).map(|i| (i % 100) as f64 + 1.0).collect();
        let b: Vec<f64> = (0..5000).map(|i| (i % 100) as f64).collect();
        let d = mean_difference(&moments_of(&a), &moments_of(&b)).unwrap();
        let g = hedges_g(&moments_of(&a), &moments_of(&b)).unwrap();
        close(d.value, g.value, 1e-3);
    }

    #[test]
    fn log_std_ratio_signs() {
        let narrow = moments_of(&[4.9, 5.0, 5.1, 5.0, 4.95, 5.05]);
        let wide = moments_of(&[1.0, 5.0, 9.0, 3.0, 7.0, 5.0]);
        let e = log_std_ratio(&narrow, &wide).unwrap();
        assert!(
            e.value < 0.0,
            "tighter selection must give negative log ratio"
        );
        let e2 = log_std_ratio(&wide, &narrow).unwrap();
        close(e.value, -e2.value, 1e-12);
    }

    #[test]
    fn log_std_ratio_equal_dispersion() {
        let a = moments_of(&[1.0, 2.0, 3.0]);
        let b = moments_of(&[11.0, 12.0, 13.0]);
        let e = log_std_ratio(&a, &b).unwrap();
        close(e.value, 0.0, 1e-12);
        close(e.p_value, 1.0, 1e-9);
    }

    #[test]
    fn log_std_ratio_constant_errors() {
        let c = moments_of(&[2.0, 2.0, 2.0]);
        let v = moments_of(&[1.0, 2.0, 3.0]);
        assert!(log_std_ratio(&c, &v).is_err());
    }

    #[test]
    fn correlation_difference_basics() {
        let e = correlation_difference(0.9, 100, 0.1, 400).unwrap();
        assert!(e.value > 0.0);
        assert!(
            e.p_value < 0.001,
            "strong correlation shift must be significant"
        );
        let same = correlation_difference(0.5, 50, 0.5, 50).unwrap();
        close(same.value, 0.0, 1e-12);
    }

    #[test]
    fn correlation_difference_clamps_extremes() {
        // r = ±1 must not produce infinities.
        let e = correlation_difference(1.0, 20, -1.0, 20).unwrap();
        assert!(e.value.is_finite());
        assert!(e.p_value < 1e-10);
    }

    #[test]
    fn correlation_difference_input_validation() {
        assert!(correlation_difference(1.5, 10, 0.0, 10).is_err());
        assert!(correlation_difference(0.0, 3, 0.0, 10).is_err());
        assert!(correlation_difference(f64::NAN, 10, 0.0, 10).is_err());
    }

    #[test]
    fn fisher_z_known_values() {
        close(fisher_z(0.0), 0.0, 1e-15);
        close(fisher_z(0.5), 0.549_306_144_334_054_8, 1e-12);
        assert!(fisher_z(1.0).is_finite());
    }

    #[test]
    fn cohens_w_identical_distributions() {
        let e = cohens_w(&[50, 30, 20], &[500, 300, 200]).unwrap();
        close(e.value, 0.0, 1e-12);
        assert!(e.p_value > 0.99);
    }

    #[test]
    fn cohens_w_detects_shift() {
        // Selection concentrated in category 0; complement uniform.
        let e = cohens_w(&[90, 5, 5], &[1000, 1000, 1000]).unwrap();
        assert!(e.value > 0.5);
        assert!(e.p_value < 1e-6);
    }

    #[test]
    fn cohens_w_skips_jointly_empty_categories() {
        let with_gap = cohens_w(&[50, 0, 50], &[400, 0, 600]).unwrap();
        let without = cohens_w(&[50, 50], &[400, 600]).unwrap();
        close(with_gap.value, without.value, 1e-12);
    }

    #[test]
    fn cohens_w_validation() {
        assert!(cohens_w(&[1, 2], &[1, 2, 3]).is_err());
        assert!(cohens_w(&[0, 0], &[1, 2]).is_err());
        assert!(cohens_w(&[5, 0], &[9, 0]).is_err());
    }

    #[test]
    fn effect_ci_contains_value() {
        let e = EffectSize::from_z(0.8, 0.2);
        let (lo, hi) = e.ci95();
        assert!(lo < 0.8 && 0.8 < hi);
        close(hi - 0.8, 0.8 - lo, 1e-12);
    }

    #[test]
    fn significance_threshold() {
        let strong = EffectSize::from_z(1.0, 0.1);
        assert!(strong.significant_at(0.05));
        let weak = EffectSize::from_z(0.05, 0.5);
        assert!(!weak.significant_at(0.05));
    }
}
