//! Rank transforms with tie handling, used by Spearman correlation.

/// Assigns average ranks (1-based) to `values`. Ties receive the mean of the
/// ranks they span (the "fractional ranking" used by Spearman's ρ).
/// Non-finite values receive rank NaN and do not displace finite ranks.
pub fn average_ranks(values: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..values.len())
        .filter(|&i| values[i].is_finite())
        .collect();
    order.sort_by(|&a, &b| {
        values[a]
            .partial_cmp(&values[b])
            .expect("finite values compare")
    });

    let mut ranks = vec![f64::NAN; values.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        // Ranks i+1 ..= j+1 (1-based) tie; assign their average.
        let avg = (i + j + 2) as f64 / 2.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Counts tie groups and the tie-correction term `Σ (t³ − t)` used in
/// rank-statistic variance formulas, over finite values only.
pub fn tie_correction(values: &[f64]) -> f64 {
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
    let mut corr = 0.0;
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i;
        while j + 1 < sorted.len() && sorted[j + 1] == sorted[i] {
            j += 1;
        }
        let t = (j - i + 1) as f64;
        corr += t * t * t - t;
        i = j + 1;
    }
    corr
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_ranks() {
        assert_eq!(average_ranks(&[30.0, 10.0, 20.0]), vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn tied_ranks_averaged() {
        // 10, 20, 20, 30 → ranks 1, 2.5, 2.5, 4.
        assert_eq!(
            average_ranks(&[10.0, 20.0, 20.0, 30.0]),
            vec![1.0, 2.5, 2.5, 4.0]
        );
    }

    #[test]
    fn all_tied() {
        assert_eq!(average_ranks(&[5.0, 5.0, 5.0]), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn nan_gets_nan_rank() {
        let r = average_ranks(&[2.0, f64::NAN, 1.0]);
        assert_eq!(r[0], 2.0);
        assert!(r[1].is_nan());
        assert_eq!(r[2], 1.0);
    }

    #[test]
    fn empty_input() {
        assert!(average_ranks(&[]).is_empty());
        assert_eq!(tie_correction(&[]), 0.0);
    }

    #[test]
    fn tie_correction_values() {
        // No ties → 0.
        assert_eq!(tie_correction(&[1.0, 2.0, 3.0]), 0.0);
        // One pair: 2³ − 2 = 6.
        assert_eq!(tie_correction(&[1.0, 2.0, 2.0]), 6.0);
        // Triple: 3³ − 3 = 24.
        assert_eq!(tie_correction(&[7.0, 7.0, 7.0]), 24.0);
    }

    #[test]
    fn ranks_sum_invariant() {
        // Sum of ranks of n finite values is n(n+1)/2 regardless of ties.
        let v = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0, 5.0, 3.0];
        let total: f64 = average_ranks(&v).iter().sum();
        assert!((total - 55.0).abs() < 1e-12);
    }
}
