//! Binning utilities: equi-width histograms for numeric columns and
//! frequency tables for categorical columns. Both feed the discretized
//! dependence measures (mutual information) and the categorical
//! Zig-Components (frequency divergence).

use serde::{Deserialize, Serialize};

use crate::error::{Result, StatsError};

/// Equi-width histogram over a fixed `[lo, hi]` range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram with `bins` equal-width buckets spanning
    /// `[lo, hi]`. Values outside the range clamp into the edge buckets, so
    /// histograms built over subsets with the *same* range stay comparable.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self> {
        if bins == 0 {
            return Err(StatsError::InvalidParameter {
                name: "bins",
                value: 0.0,
                expected: "bins >= 1",
            });
        }
        if !(lo.is_finite() && hi.is_finite()) || lo >= hi {
            return Err(StatsError::InvalidParameter {
                name: "range",
                value: hi - lo,
                expected: "finite lo < hi",
            });
        }
        Ok(Self {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        })
    }

    /// Builds a histogram over a slice with the range taken from the data.
    /// Falls back to a single degenerate bucket when all values are equal.
    pub fn from_data(values: &[f64], bins: usize) -> Result<Self> {
        let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        if finite.is_empty() {
            return Err(StatsError::InsufficientData {
                what: "histogram",
                needed: 1,
                got: 0,
            });
        }
        let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut h = if lo < hi {
            Self::new(lo, hi, bins)?
        } else {
            // Constant column: widen artificially so indexing stays valid.
            Self::new(lo - 0.5, hi + 0.5, bins)?
        };
        for v in finite {
            h.push(v);
        }
        Ok(h)
    }

    /// Adds one observation; non-finite values are skipped.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        let idx = self.bin_index(x);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Bucket index for `x` (clamped to the edge buckets).
    pub fn bin_index(&self, x: f64) -> usize {
        let bins = self.counts.len();
        let frac = (x - self.lo) / (self.hi - self.lo);
        let idx = (frac * bins as f64).floor();
        (idx.max(0.0) as usize).min(bins - 1)
    }

    /// Per-bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations binned.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of buckets.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Lower edge of the range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper edge of the range.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Bucket proportions; an empty histogram yields all zeros.
    pub fn proportions(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// `[lo, hi)` edges of bucket `i` (the last bucket is closed).
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }
}

/// Computes `k` equi-depth (quantile) cut points for discretization,
/// returning strictly increasing interior boundaries (duplicates collapse,
/// so heavily tied data can yield fewer boundaries).
pub fn equi_depth_edges(values: &[f64], k: usize) -> Result<Vec<f64>> {
    if k < 2 {
        return Err(StatsError::InvalidParameter {
            name: "k",
            value: k as f64,
            expected: "k >= 2 buckets",
        });
    }
    let mut finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return Err(StatsError::InsufficientData {
            what: "equi-depth edges",
            needed: 1,
            got: 0,
        });
    }
    finite.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
    let mut edges = Vec::with_capacity(k - 1);
    for i in 1..k {
        let q = i as f64 / k as f64;
        let h = q * (finite.len() as f64 - 1.0);
        let lo = h.floor() as usize;
        let frac = h - lo as f64;
        let v = if lo + 1 < finite.len() {
            finite[lo] * (1.0 - frac) + finite[lo + 1] * frac
        } else {
            finite[lo]
        };
        if edges.last().is_none_or(|&last| v > last) {
            edges.push(v);
        }
    }
    Ok(edges)
}

/// Discretizes a value against sorted interior `edges`, producing bucket ids
/// `0..=edges.len()`. NaN maps to `None`.
pub fn discretize(x: f64, edges: &[f64]) -> Option<usize> {
    if !x.is_finite() {
        return None;
    }
    Some(edges.partition_point(|&e| e <= x))
}

/// Frequency table over small categorical domains (dictionary codes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrequencyTable {
    counts: Vec<u64>,
    total: u64,
}

impl FrequencyTable {
    /// Creates a table over a domain of `cardinality` codes.
    pub fn new(cardinality: usize) -> Self {
        Self {
            counts: vec![0; cardinality],
            total: 0,
        }
    }

    /// Builds a table from dictionary codes; `None` encodes NULL and is
    /// skipped. Codes beyond `cardinality` are ignored defensively.
    pub fn from_codes(codes: impl IntoIterator<Item = Option<u32>>, cardinality: usize) -> Self {
        let mut t = Self::new(cardinality);
        for c in codes.into_iter().flatten() {
            t.push(c);
        }
        t
    }

    /// Counts one occurrence of `code`.
    pub fn push(&mut self, code: u32) {
        if let Some(slot) = self.counts.get_mut(code as usize) {
            *slot += 1;
            self.total += 1;
        }
    }

    /// Per-code counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total non-null observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Domain size.
    pub fn cardinality(&self) -> usize {
        self.counts.len()
    }

    /// Per-code proportions; all zeros when empty.
    pub fn proportions(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Derives the complement table `self − other` (requires `other` to be a
    /// per-code subset).
    pub fn subtract(&self, other: &FrequencyTable) -> Result<FrequencyTable> {
        if self.counts.len() != other.counts.len() {
            return Err(StatsError::LengthMismatch {
                left: self.counts.len(),
                right: other.counts.len(),
            });
        }
        let mut counts = Vec::with_capacity(self.counts.len());
        for (&a, &b) in self.counts.iter().zip(&other.counts) {
            if b > a {
                return Err(StatsError::InvalidParameter {
                    name: "subset count",
                    value: b as f64,
                    expected: "subset counts <= superset counts",
                });
            }
            counts.push(a - b);
        }
        Ok(FrequencyTable {
            counts,
            total: self.total - other.total,
        })
    }

    /// Merges another table into this one.
    pub fn merge(&mut self, other: &FrequencyTable) -> Result<()> {
        if self.counts.len() != other.counts.len() {
            return Err(StatsError::LengthMismatch {
                left: self.counts.len(),
                right: other.counts.len(),
            });
        }
        for (a, &b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_basic_binning() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        for &v in &[0.5, 1.5, 2.5, 9.9, 5.0] {
            h.push(v);
        }
        assert_eq!(h.counts(), &[2, 1, 1, 0, 1]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.push(-5.0);
        h.push(7.0);
        assert_eq!(h.counts(), &[1, 1]);
    }

    #[test]
    fn histogram_upper_edge_in_last_bin() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        h.push(10.0);
        assert_eq!(h.counts()[4], 1);
    }

    #[test]
    fn histogram_rejects_bad_params() {
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(2.0, 1.0, 4).is_err());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_err());
    }

    #[test]
    fn histogram_from_data_constant_column() {
        let h = Histogram::from_data(&[3.0, 3.0, 3.0], 4).unwrap();
        assert_eq!(h.total(), 3);
        assert_eq!(h.counts().iter().sum::<u64>(), 3);
    }

    #[test]
    fn histogram_from_data_empty_errors() {
        assert!(Histogram::from_data(&[], 4).is_err());
        assert!(Histogram::from_data(&[f64::NAN], 4).is_err());
    }

    #[test]
    fn histogram_proportions_sum_to_one() {
        let h = Histogram::from_data(&[1.0, 2.0, 3.0, 4.0, 5.0], 3).unwrap();
        let s: f64 = h.proportions().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_bin_edges() {
        let h = Histogram::new(0.0, 10.0, 5).unwrap();
        assert_eq!(h.bin_edges(0), (0.0, 2.0));
        assert_eq!(h.bin_edges(4), (8.0, 10.0));
    }

    #[test]
    fn equi_depth_edges_quartiles() {
        let v: Vec<f64> = (1..=8).map(|i| i as f64).collect();
        let e = equi_depth_edges(&v, 4).unwrap();
        assert_eq!(e.len(), 3);
        assert!((e[1] - 4.5).abs() < 1e-12);
    }

    #[test]
    fn equi_depth_collapses_duplicates() {
        let v = [1.0, 1.0, 1.0, 1.0, 1.0, 9.0];
        let e = equi_depth_edges(&v, 4).unwrap();
        // Most quantiles land on 1.0; duplicates collapse.
        let mut sorted = e.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        sorted.dedup();
        assert_eq!(e.len(), sorted.len());
    }

    #[test]
    fn discretize_against_edges() {
        let edges = [2.0, 5.0];
        assert_eq!(discretize(1.0, &edges), Some(0));
        assert_eq!(discretize(2.0, &edges), Some(1));
        assert_eq!(discretize(4.9, &edges), Some(1));
        assert_eq!(discretize(5.0, &edges), Some(2));
        assert_eq!(discretize(f64::NAN, &edges), None);
    }

    #[test]
    fn frequency_table_counts_and_subtract() {
        let whole = FrequencyTable::from_codes([Some(0), Some(1), Some(1), Some(2), None], 3);
        assert_eq!(whole.counts(), &[1, 2, 1]);
        assert_eq!(whole.total(), 4);
        let subset = FrequencyTable::from_codes([Some(1), Some(2)], 3);
        let rest = whole.subtract(&subset).unwrap();
        assert_eq!(rest.counts(), &[1, 1, 0]);
        assert_eq!(rest.total(), 2);
    }

    #[test]
    fn frequency_table_subtract_rejects_non_subset() {
        let a = FrequencyTable::from_codes([Some(0)], 2);
        let b = FrequencyTable::from_codes([Some(0), Some(0)], 2);
        assert!(a.subtract(&b).is_err());
        let c = FrequencyTable::new(3);
        assert!(a.subtract(&c).is_err());
    }

    #[test]
    fn frequency_table_merge() {
        let mut a = FrequencyTable::from_codes([Some(0), Some(1)], 2);
        let b = FrequencyTable::from_codes([Some(1), Some(1)], 2);
        a.merge(&b).unwrap();
        assert_eq!(a.counts(), &[1, 3]);
        assert_eq!(a.total(), 4);
    }

    #[test]
    fn frequency_table_ignores_out_of_domain() {
        let t = FrequencyTable::from_codes([Some(0), Some(9)], 2);
        assert_eq!(t.counts(), &[1, 0]);
        assert_eq!(t.total(), 1);
    }
}
