//! Special functions underpinning the distribution layer.
//!
//! Everything is implemented from scratch in pure Rust:
//!
//! * [`ln_gamma`] — Lanczos approximation (g = 7, 9 terms), relative error
//!   below 1e-13 over the positive reals.
//! * [`reg_gamma_p`] / [`reg_gamma_q`] — regularized incomplete gamma via
//!   the classic series / continued-fraction split at `x = a + 1`.
//! * [`erf`] / [`erfc`] — expressed through the incomplete gamma function,
//!   inheriting its near-machine accuracy.
//! * [`reg_inc_beta`] — regularized incomplete beta via Lentz's algorithm.
//! * [`inverse_normal_cdf`] — Acklam's rational approximation polished with
//!   one Halley step, accurate to ~1e-15.

use crate::error::{Result, StatsError};

/// Lanczos coefficients for g = 7 (Godfrey / Numerical Recipes variant).
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function for `x > 0`.
///
/// Uses the Lanczos approximation with reflection for `x < 0.5`.
pub fn ln_gamma(x: f64) -> f64 {
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        pi.ln() - (pi * x).sin().abs().ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut acc = LANCZOS_COEF[0];
        for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
            acc += c / (x + i as f64);
        }
        let t = x + LANCZOS_G + 0.5;
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
    }
}

/// Maximum iterations for series / continued-fraction evaluation.
const MAX_ITER: usize = 500;
/// Convergence tolerance relative to the accumulated value.
const EPS: f64 = 1e-15;
/// Smallest representable pivot for Lentz's algorithm.
const TINY: f64 = 1e-300;

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// `P(a, x) = γ(a, x) / Γ(a)`, with `P(a, 0) = 0` and `P(a, ∞) = 1`.
pub fn reg_gamma_p(a: f64, x: f64) -> Result<f64> {
    if a <= 0.0 || a.is_nan() {
        return Err(StatsError::InvalidParameter {
            name: "a",
            value: a,
            expected: "a > 0",
        });
    }
    if x < 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "x",
            value: x,
            expected: "x >= 0",
        });
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        Ok(1.0 - gamma_q_cont_frac(a, x)?)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
pub fn reg_gamma_q(a: f64, x: f64) -> Result<f64> {
    if a <= 0.0 || a.is_nan() {
        return Err(StatsError::InvalidParameter {
            name: "a",
            value: a,
            expected: "a > 0",
        });
    }
    if x < 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "x",
            value: x,
            expected: "x >= 0",
        });
    }
    if x == 0.0 {
        return Ok(1.0);
    }
    if x < a + 1.0 {
        Ok(1.0 - gamma_p_series(a, x)?)
    } else {
        gamma_q_cont_frac(a, x)
    }
}

/// Series expansion of `P(a, x)`, effective for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> Result<f64> {
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut ap = a;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * EPS {
            let log_prefix = a * x.ln() - x - ln_gamma(a);
            return Ok((sum * log_prefix.exp()).clamp(0.0, 1.0));
        }
    }
    Err(StatsError::NoConvergence("incomplete gamma series"))
}

/// Continued-fraction expansion of `Q(a, x)` (modified Lentz), effective for
/// `x ≥ a + 1`.
fn gamma_q_cont_frac(a: f64, x: f64) -> Result<f64> {
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            let log_prefix = a * x.ln() - x - ln_gamma(a);
            return Ok((h * log_prefix.exp()).clamp(0.0, 1.0));
        }
    }
    Err(StatsError::NoConvergence(
        "incomplete gamma continued fraction",
    ))
}

/// Error function, computed through the incomplete gamma relation
/// `erf(x) = sign(x) · P(1/2, x²)`.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let p = reg_gamma_p(0.5, x * x).unwrap_or(1.0);
    if x > 0.0 {
        p
    } else {
        -p
    }
}

/// Complementary error function `erfc(x) = 1 − erf(x)`, accurate in the
/// far tail where `1 − erf(x)` would cancel.
pub fn erfc(x: f64) -> f64 {
    if x >= 0.0 {
        reg_gamma_q(0.5, x * x).unwrap_or(0.0)
    } else {
        2.0 - erfc(-x)
    }
}

/// Regularized incomplete beta function `I_x(a, b)` via the continued
/// fraction of Numerical Recipes (`betacf`), symmetrized for stability.
pub fn reg_inc_beta(a: f64, b: f64, x: f64) -> Result<f64> {
    if a <= 0.0 || a.is_nan() {
        return Err(StatsError::InvalidParameter {
            name: "a",
            value: a,
            expected: "a > 0",
        });
    }
    if b <= 0.0 || b.is_nan() {
        return Err(StatsError::InvalidParameter {
            name: "b",
            value: b,
            expected: "b > 0",
        });
    }
    if !(0.0..=1.0).contains(&x) {
        return Err(StatsError::InvalidParameter {
            name: "x",
            value: x,
            expected: "0 <= x <= 1",
        });
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x == 1.0 {
        return Ok(1.0);
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the continued fraction directly where it converges fast.
    if x < (a + 1.0) / (a + b + 2.0) {
        Ok((front * beta_cont_frac(a, b, x)? / a).clamp(0.0, 1.0))
    } else {
        Ok((1.0 - front * beta_cont_frac(b, a, 1.0 - x)? / b).clamp(0.0, 1.0))
    }
}

/// Lentz evaluation of the incomplete-beta continued fraction.
fn beta_cont_frac(a: f64, b: f64, x: f64) -> Result<f64> {
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            return Ok(h);
        }
    }
    Err(StatsError::NoConvergence(
        "incomplete beta continued fraction",
    ))
}

/// Inverse of the standard normal CDF (the probit function).
///
/// Acklam's rational approximation followed by one Halley refinement step,
/// giving close to full double precision.
pub fn inverse_normal_cdf(p: f64) -> Result<f64> {
    if !(0.0..=1.0).contains(&p) {
        return Err(StatsError::InvalidParameter {
            name: "p",
            value: p,
            expected: "0 <= p <= 1",
        });
    }
    if p == 0.0 {
        return Ok(f64::NEG_INFINITY);
    }
    if p == 1.0 {
        return Ok(f64::INFINITY);
    }

    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley step: u = (Φ(x) − p) / φ(x); x ← x − u / (1 + x·u/2).
    let e = 0.5 * erfc(-x / std::f64::consts::SQRT_2) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    Ok(x - u / (1.0 + x * u / 2.0))
}

/// Natural log of the beta function `B(a, b)`.
pub fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn ln_gamma_integers_match_factorials() {
        // Γ(n) = (n−1)!
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            close(ln_gamma(n as f64), fact.ln(), 1e-10);
            fact *= n as f64;
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π.
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12);
        // Γ(3/2) = √π / 2.
        close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-12,
        );
    }

    #[test]
    fn ln_gamma_reflection_region() {
        // Γ(0.25) ≈ 3.625609908.
        close(ln_gamma(0.25), 3.625_609_908_221_908f64.ln(), 1e-10);
    }

    #[test]
    fn gamma_p_known_values() {
        // P(1, x) = 1 − e^{−x}.
        for &x in &[0.1, 0.5, 1.0, 2.0, 5.0, 10.0] {
            close(reg_gamma_p(1.0, x).unwrap(), 1.0 - (-x).exp(), 1e-12);
        }
        // P(a, 0) = 0.
        assert_eq!(reg_gamma_p(3.0, 0.0).unwrap(), 0.0);
    }

    #[test]
    fn gamma_p_q_complement() {
        for &a in &[0.3, 1.0, 2.5, 10.0, 100.0] {
            for &x in &[0.01, 0.5, 1.0, 3.0, 10.0, 150.0] {
                let p = reg_gamma_p(a, x).unwrap();
                let q = reg_gamma_q(a, x).unwrap();
                close(p + q, 1.0, 1e-12);
            }
        }
    }

    #[test]
    fn gamma_p_rejects_bad_params() {
        assert!(reg_gamma_p(0.0, 1.0).is_err());
        assert!(reg_gamma_p(-1.0, 1.0).is_err());
        assert!(reg_gamma_p(1.0, -0.5).is_err());
    }

    #[test]
    fn erf_reference_values() {
        // Reference values from Abramowitz & Stegun.
        close(erf(0.0), 0.0, 1e-15);
        close(erf(0.5), 0.520_499_877_813_046_5, 1e-12);
        close(erf(1.0), 0.842_700_792_949_714_9, 1e-12);
        close(erf(2.0), 0.995_322_265_018_952_7, 1e-12);
        close(erf(-1.0), -0.842_700_792_949_714_9, 1e-12);
    }

    #[test]
    fn erfc_far_tail_no_cancellation() {
        // erfc(5) ≈ 1.5374597944280349e-12; naive 1−erf(5) loses digits.
        let v = erfc(5.0);
        close(v / 1.537_459_794_428_035e-12, 1.0, 1e-8);
        // Symmetry erfc(−x) = 2 − erfc(x).
        close(erfc(-2.0), 2.0 - erfc(2.0), 1e-14);
    }

    #[test]
    fn inc_beta_known_values() {
        // I_x(1, 1) = x (uniform CDF).
        for &x in &[0.0, 0.25, 0.5, 0.75, 1.0] {
            close(reg_inc_beta(1.0, 1.0, x).unwrap(), x, 1e-12);
        }
        // I_x(2, 2) = x²(3 − 2x).
        for &x in &[0.1, 0.3, 0.5, 0.9] {
            close(
                reg_inc_beta(2.0, 2.0, x).unwrap(),
                x * x * (3.0 - 2.0 * x),
                1e-12,
            );
        }
        // Symmetry: I_x(a, b) = 1 − I_{1−x}(b, a).
        close(
            reg_inc_beta(3.5, 1.2, 0.3).unwrap(),
            1.0 - reg_inc_beta(1.2, 3.5, 0.7).unwrap(),
            1e-12,
        );
    }

    #[test]
    fn inc_beta_rejects_bad_params() {
        assert!(reg_inc_beta(0.0, 1.0, 0.5).is_err());
        assert!(reg_inc_beta(1.0, -2.0, 0.5).is_err());
        assert!(reg_inc_beta(1.0, 1.0, 1.5).is_err());
        assert!(reg_inc_beta(1.0, 1.0, -0.1).is_err());
    }

    #[test]
    fn inverse_normal_reference_values() {
        close(inverse_normal_cdf(0.5).unwrap(), 0.0, 1e-14);
        close(
            inverse_normal_cdf(0.975).unwrap(),
            1.959_963_984_540_054,
            1e-9,
        );
        close(
            inverse_normal_cdf(0.025).unwrap(),
            -1.959_963_984_540_054,
            1e-9,
        );
        close(
            inverse_normal_cdf(0.841_344_746_068_543).unwrap(),
            1.0,
            1e-9,
        );
    }

    #[test]
    fn inverse_normal_round_trip() {
        for i in 1..200 {
            let p = i as f64 / 200.0;
            let x = inverse_normal_cdf(p).unwrap();
            let back = 0.5 * erfc(-x / std::f64::consts::SQRT_2);
            close(back, p, 1e-12);
        }
    }

    #[test]
    fn inverse_normal_edges() {
        assert_eq!(inverse_normal_cdf(0.0).unwrap(), f64::NEG_INFINITY);
        assert_eq!(inverse_normal_cdf(1.0).unwrap(), f64::INFINITY);
        assert!(inverse_normal_cdf(-0.1).is_err());
        assert!(inverse_normal_cdf(1.1).is_err());
    }

    #[test]
    fn ln_beta_matches_gamma() {
        close(ln_beta(2.0, 3.0), (1.0f64 / 12.0).ln(), 1e-12);
    }
}
