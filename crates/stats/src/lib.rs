#![warn(missing_docs)]

//! Statistics substrate for the Ziggy reproduction.
//!
//! Ziggy (Sellam & Kersten, PVLDB'16) measures how much a user's selection
//! diverges from the rest of a table using *effect sizes* from the
//! meta-analysis literature (Hedges & Olkin), tests their significance with
//! asymptotic bounds, and groups columns by statistical dependence. The
//! original prototype delegated this machinery to R; this crate rebuilds it
//! from scratch:
//!
//! * [`special`] — log-gamma, error function, regularized incomplete
//!   gamma/beta, inverse normal CDF.
//! * [`dist`] — normal, chi-squared, Student-t and Fisher F distributions
//!   (PDF, CDF, survival, quantile).
//! * [`describe`] — single-pass descriptive summaries (Welford).
//! * [`moments`] — mergeable *and subtractable* power-sum moment sketches,
//!   the basis of Ziggy's shared-computation optimization (complement
//!   statistics are derived as whole-table minus selection).
//! * [`effect`] — the Zig-Component effect sizes: standardized mean
//!   difference (Cohen's d / Hedges' g), log standard-deviation ratio,
//!   Fisher-z correlation difference, Cohen's w frequency divergence.
//! * [`htest`] — Welch t, variance-ratio F, Fisher-z, chi-squared and
//!   Kolmogorov–Smirnov tests.
//! * [`correct`] — Bonferroni/Holm multiplicity corrections and p-value
//!   aggregation schemes used by Ziggy's post-processing stage.
//! * [`dependence`] — Pearson, Spearman, mutual information, Cramér's V and
//!   the correlation ratio, unified behind one measure enum (the paper's
//!   `S` in the tightness constraint).
//! * [`histogram`] — equi-width/equi-depth binning and frequency tables.
//! * [`rank`] — average-rank transforms with tie handling.

pub mod correct;
pub mod dependence;
pub mod describe;
pub mod dist;
pub mod effect;
pub mod error;
pub mod histogram;
pub mod htest;
pub mod moments;
pub mod rank;
pub mod special;

pub use correct::{adjust_p_values, aggregate_p_values, Aggregation, Correction};
pub use dependence::{correlation_ratio, cramers_v_counts, mutual_information, pearson, spearman};
pub use describe::Summary;
pub use dist::{ChiSquared, ContinuousDistribution, FisherF, Normal, StudentT};
pub use effect::{
    cohens_w, correlation_difference, hedges_g, log_std_ratio, mean_difference, EffectSize,
};
pub use error::StatsError;
pub use histogram::{FrequencyTable, Histogram};
pub use htest::{
    chi2_gof_test, chi2_independence_test, fisher_z_test, ks_test, variance_ratio_test,
    welch_t_test, TestResult,
};
pub use moments::{PairMoments, UniMoments};
