//! Statistical dependence measures — the paper's `S` in the *tightness*
//! constraint (Equation 2): a view is only admissible when every pair of
//! its columns is sufficiently interdependent.
//!
//! * [`pearson`] / [`spearman`] — linear and rank correlation for
//!   numeric–numeric pairs.
//! * [`mutual_information`] — discretized MI, normalized to `[0, 1]`.
//! * [`cramers_v_counts`] — Cramér's V for categorical–categorical pairs.
//! * [`correlation_ratio`] — η for categorical–numeric pairs.

use crate::error::{Result, StatsError};
use crate::moments::PairMoments;
use crate::rank::average_ranks;

/// Pearson correlation over jointly finite entries of two parallel slices.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Result<f64> {
    PairMoments::from_slices(xs, ys)?.correlation()
}

/// Spearman rank correlation (Pearson over average ranks, tie-aware).
pub fn spearman(xs: &[f64], ys: &[f64]) -> Result<f64> {
    if xs.len() != ys.len() {
        return Err(StatsError::LengthMismatch {
            left: xs.len(),
            right: ys.len(),
        });
    }
    // Rank only the jointly finite rows so the two rank vectors align.
    let joint: Vec<(f64, f64)> = xs
        .iter()
        .zip(ys)
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .map(|(&x, &y)| (x, y))
        .collect();
    if joint.len() < 2 {
        return Err(StatsError::InsufficientData {
            what: "Spearman correlation",
            needed: 2,
            got: joint.len(),
        });
    }
    let xr = average_ranks(&joint.iter().map(|p| p.0).collect::<Vec<_>>());
    let yr = average_ranks(&joint.iter().map(|p| p.1).collect::<Vec<_>>());
    pearson(&xr, &yr)
}

/// Mutual information between two discretized variables, given the joint
/// contingency `table` (row-major). Returns MI in nats.
pub fn mutual_information_from_table(table: &[Vec<u64>]) -> Result<f64> {
    let rows = table.len();
    if rows == 0 || table[0].is_empty() {
        return Err(StatsError::InsufficientData {
            what: "mutual information",
            needed: 1,
            got: 0,
        });
    }
    let cols = table[0].len();
    if table.iter().any(|r| r.len() != cols) {
        return Err(StatsError::Degenerate("ragged contingency table"));
    }
    let n: u64 = table.iter().flatten().sum();
    if n == 0 {
        return Err(StatsError::InsufficientData {
            what: "mutual information",
            needed: 1,
            got: 0,
        });
    }
    let nf = n as f64;
    let row_sums: Vec<f64> = table.iter().map(|r| r.iter().sum::<u64>() as f64).collect();
    let col_sums: Vec<f64> = (0..cols)
        .map(|j| table.iter().map(|r| r[j]).sum::<u64>() as f64)
        .collect();
    let mut mi = 0.0;
    for i in 0..rows {
        for j in 0..cols {
            let nij = table[i][j] as f64;
            if nij == 0.0 {
                continue;
            }
            mi += (nij / nf) * ((nij * nf) / (row_sums[i] * col_sums[j])).ln();
        }
    }
    Ok(mi.max(0.0))
}

/// Normalized mutual information between two numeric slices, discretized
/// into `bins × bins` equi-width cells. Normalization divides by
/// `min(H(X), H(Y))`, mapping independence to ~0 and a bijection to 1.
pub fn mutual_information(xs: &[f64], ys: &[f64], bins: usize) -> Result<f64> {
    if xs.len() != ys.len() {
        return Err(StatsError::LengthMismatch {
            left: xs.len(),
            right: ys.len(),
        });
    }
    if bins < 2 {
        return Err(StatsError::InvalidParameter {
            name: "bins",
            value: bins as f64,
            expected: "bins >= 2",
        });
    }
    let joint: Vec<(f64, f64)> = xs
        .iter()
        .zip(ys)
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .map(|(&x, &y)| (x, y))
        .collect();
    if joint.len() < 2 {
        return Err(StatsError::InsufficientData {
            what: "mutual information",
            needed: 2,
            got: joint.len(),
        });
    }
    let (mut xlo, mut xhi) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut ylo, mut yhi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &joint {
        xlo = xlo.min(x);
        xhi = xhi.max(x);
        ylo = ylo.min(y);
        yhi = yhi.max(y);
    }
    if xlo >= xhi || ylo >= yhi {
        return Err(StatsError::Degenerate(
            "mutual information with a constant margin",
        ));
    }
    let mut table = vec![vec![0u64; bins]; bins];
    let index = |v: f64, lo: f64, hi: f64| -> usize {
        (((v - lo) / (hi - lo) * bins as f64).floor().max(0.0) as usize).min(bins - 1)
    };
    for &(x, y) in &joint {
        table[index(x, xlo, xhi)][index(y, ylo, yhi)] += 1;
    }
    let mi = mutual_information_from_table(&table)?;
    let n = joint.len() as f64;
    let entropy = |sums: Vec<f64>| -> f64 {
        sums.iter()
            .filter(|&&s| s > 0.0)
            .map(|&s| {
                let p = s / n;
                -p * p.ln()
            })
            .sum()
    };
    let hx = entropy(table.iter().map(|r| r.iter().sum::<u64>() as f64).collect());
    let hy = entropy(
        (0..bins)
            .map(|j| table.iter().map(|r| r[j]).sum::<u64>() as f64)
            .collect(),
    );
    let h_min = hx.min(hy);
    if h_min <= 0.0 {
        return Err(StatsError::Degenerate(
            "mutual information with a zero-entropy margin",
        ));
    }
    Ok((mi / h_min).clamp(0.0, 1.0))
}

/// Cramér's V from a contingency table of raw counts (row-major).
pub fn cramers_v_counts(table: &[Vec<u64>]) -> Result<f64> {
    let test = crate::htest::chi2_independence_test(table)?;
    let n: u64 = table.iter().flatten().sum();
    let rows = table.iter().filter(|r| r.iter().any(|&c| c > 0)).count();
    let cols_total = table[0].len();
    let cols = (0..cols_total)
        .filter(|&j| table.iter().any(|r| r[j] > 0))
        .count();
    let k = rows.min(cols);
    if k < 2 {
        return Err(StatsError::Degenerate(
            "Cramér's V with a single populated margin",
        ));
    }
    Ok((test.statistic / (n as f64 * (k as f64 - 1.0)))
        .sqrt()
        .clamp(0.0, 1.0))
}

/// Correlation ratio η between a categorical grouping (dictionary codes,
/// `None` = NULL) and a numeric column: √(between-group SS / total SS).
pub fn correlation_ratio(codes: &[Option<u32>], values: &[f64], cardinality: usize) -> Result<f64> {
    if codes.len() != values.len() {
        return Err(StatsError::LengthMismatch {
            left: codes.len(),
            right: values.len(),
        });
    }
    let mut sums = vec![0.0f64; cardinality];
    let mut counts = vec![0u64; cardinality];
    let mut total_sum = 0.0;
    let mut total_sq = 0.0;
    let mut n = 0u64;
    for (c, &v) in codes.iter().zip(values) {
        let Some(c) = c else { continue };
        if !v.is_finite() || (*c as usize) >= cardinality {
            continue;
        }
        sums[*c as usize] += v;
        counts[*c as usize] += 1;
        total_sum += v;
        total_sq += v * v;
        n += 1;
    }
    if n < 2 {
        return Err(StatsError::InsufficientData {
            what: "correlation ratio",
            needed: 2,
            got: n as usize,
        });
    }
    let grand_mean = total_sum / n as f64;
    let total_ss = total_sq - n as f64 * grand_mean * grand_mean;
    if total_ss <= 0.0 {
        return Err(StatsError::Degenerate(
            "correlation ratio of a constant numeric column",
        ));
    }
    let mut between_ss = 0.0;
    for (s, &c) in sums.iter().zip(&counts) {
        if c == 0 {
            continue;
        }
        let gm = s / c as f64;
        between_ss += c as f64 * (gm - grand_mean).powi(2);
    }
    Ok((between_ss / total_ss).sqrt().clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn pearson_perfect_lines() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        close(pearson(&xs, &[3.0, 5.0, 7.0, 9.0]).unwrap(), 1.0, 1e-12);
        close(pearson(&xs, &[9.0, 7.0, 5.0, 3.0]).unwrap(), -1.0, 1e-12);
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [1.0, 8.0, 27.0, 64.0, 125.0];
        // Nonlinear but monotone: Spearman = 1, Pearson < 1.
        close(spearman(&xs, &ys).unwrap(), 1.0, 1e-12);
        assert!(pearson(&xs, &ys).unwrap() < 1.0);
    }

    #[test]
    fn spearman_with_ties() {
        let xs = [1.0, 2.0, 2.0, 3.0];
        let ys = [10.0, 20.0, 20.0, 30.0];
        close(spearman(&xs, &ys).unwrap(), 1.0, 1e-12);
    }

    #[test]
    fn spearman_skips_nan_rows() {
        let xs = [1.0, f64::NAN, 3.0, 4.0, 5.0];
        let ys = [2.0, 9.0, 6.0, 8.0, 10.0];
        let s = spearman(&xs, &ys).unwrap();
        close(s, 1.0, 1e-12);
    }

    #[test]
    fn mutual_information_independent_vs_dependent() {
        let n = 2000;
        // Deterministic pseudo-random but independent-ish pair.
        let xs: Vec<f64> = (0..n).map(|i| ((i * 7919) % 1000) as f64).collect();
        let ys: Vec<f64> = (0..n).map(|i| ((i * 104729 + 17) % 1000) as f64).collect();
        let indep = mutual_information(&xs, &ys, 8).unwrap();
        let dep = mutual_information(&xs, &xs, 8).unwrap();
        assert!(dep > 0.99, "self-MI should normalize to 1, got {dep}");
        assert!(indep < 0.15, "independent MI should be near 0, got {indep}");
    }

    #[test]
    fn mutual_information_validation() {
        assert!(mutual_information(&[1.0], &[1.0, 2.0], 4).is_err());
        assert!(mutual_information(&[1.0, 2.0], &[1.0, 2.0], 1).is_err());
        assert!(mutual_information(&[1.0, 1.0], &[1.0, 2.0], 4).is_err());
    }

    #[test]
    fn mi_from_table_perfect_dependence() {
        // Diagonal table: MI = ln 2.
        let mi = mutual_information_from_table(&[vec![50, 0], vec![0, 50]]).unwrap();
        close(mi, std::f64::consts::LN_2, 1e-9);
    }

    #[test]
    fn mi_from_table_independence() {
        let mi = mutual_information_from_table(&[vec![25, 25], vec![25, 25]]).unwrap();
        close(mi, 0.0, 1e-12);
    }

    #[test]
    fn cramers_v_extremes() {
        close(
            cramers_v_counts(&[vec![50, 0], vec![0, 50]]).unwrap(),
            1.0,
            1e-9,
        );
        close(
            cramers_v_counts(&[vec![25, 25], vec![25, 25]]).unwrap(),
            0.0,
            1e-9,
        );
    }

    #[test]
    fn cramers_v_rectangular_table() {
        // 2×3 table with strong association.
        let v = cramers_v_counts(&[vec![40, 5, 5], vec![5, 25, 20]]).unwrap();
        assert!(v > 0.4 && v <= 1.0);
    }

    #[test]
    fn correlation_ratio_group_separation() {
        // Two perfectly separated groups → η = 1.
        let codes = [Some(0), Some(0), Some(1), Some(1)].to_vec();
        let vals = [1.0, 1.0, 9.0, 9.0];
        close(correlation_ratio(&codes, &vals, 2).unwrap(), 1.0, 1e-12);
        // Identical group means → η = 0.
        let vals_same = [1.0, 9.0, 1.0, 9.0];
        close(
            correlation_ratio(&codes, &vals_same, 2).unwrap(),
            0.0,
            1e-12,
        );
    }

    #[test]
    fn correlation_ratio_skips_nulls_and_nans() {
        let codes = [Some(0), None, Some(1), Some(1), Some(0)].to_vec();
        let vals = [1.0, 100.0, 9.0, f64::NAN, 1.0];
        let eta = correlation_ratio(&codes, &vals, 2).unwrap();
        close(eta, 1.0, 1e-12);
    }

    #[test]
    fn correlation_ratio_validation() {
        assert!(correlation_ratio(&[Some(0)], &[1.0, 2.0], 2).is_err());
        assert!(correlation_ratio(&[Some(0), Some(0)], &[5.0, 5.0], 2).is_err());
    }
}
