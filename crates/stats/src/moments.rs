//! Mergeable *and subtractable* moment sketches.
//!
//! Ziggy's preparation stage is dominated by scanning the table to compute
//! per-column and per-column-pair statistics for both the user's selection
//! and its complement. The full paper shares computation between queries;
//! this module provides the enabling primitive: power-sum sketches that
//! support group subtraction, so the complement's statistics are derived as
//! `whole_table − selection` without a second scan.
//!
//! Sums are Kahan-compensated to keep subtraction well conditioned.

use serde::{Deserialize, Serialize};

use crate::error::{Result, StatsError};

/// Kahan-compensated accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
struct Kahan {
    sum: f64,
    comp: f64,
}

impl Kahan {
    fn add(&mut self, x: f64) {
        let y = x - self.comp;
        let t = self.sum + y;
        self.comp = (t - self.sum) - y;
        self.sum = t;
    }

    fn value(&self) -> f64 {
        self.sum
    }
}

/// Univariate power-sum sketch: count, Σx, Σx².
///
/// Supports `merge` (parallel combine) and `subtract` (complement
/// derivation). Non-finite inputs (the NULL encoding) are skipped.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct UniMoments {
    n: u64,
    sum: Kahan,
    sum_sq: Kahan,
}

impl UniMoments {
    /// Creates an empty sketch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a sketch over a slice, skipping non-finite values.
    pub fn from_slice(values: &[f64]) -> Self {
        let mut m = Self::new();
        for &v in values {
            m.push(v);
        }
        m
    }

    /// Builds a sketch over the masked subset of a column: row `i`
    /// contributes iff `mask(i)` is true.
    ///
    /// This is the naive per-row reference; hot paths use the word-wise
    /// [`UniMoments::from_mask_words`] kernel instead.
    pub fn from_masked(values: &[f64], mask: impl Fn(usize) -> bool) -> Self {
        let mut m = Self::new();
        for (i, &v) in values.iter().enumerate() {
            if mask(i) {
                m.push(v);
            }
        }
        m
    }

    /// Word-wise masked kernel: builds the sketch from packed mask words
    /// (64 rows per word, LSB-first; row `wi * 64 + bit` is selected when
    /// bit `bit` of `words[wi]` is set). Bits at positions `>= values.len()`
    /// must be zero — `ziggy-store`'s `Bitmask` guarantees this.
    ///
    /// All-zero words are skipped in one compare, full words take a
    /// straight-line loop over the 64-row block, and partial words walk
    /// set bits with `trailing_zeros` — no per-row closure call, bounds
    /// check, or branch on a `Vec<usize>` of row ids. Accumulation is
    /// per-word into plain partial sums folded into the Kahan totals once
    /// per word, so the result matches the per-row reference to floating
    /// round-off (property-tested in `tests/property_tests.rs`).
    pub fn from_mask_words(values: &[f64], words: &[u64]) -> Self {
        assert!(
            words.len() >= values.len().div_ceil(64),
            "mask words too short: {} words for {} values",
            words.len(),
            values.len()
        );
        let mut m = Self::new();
        for (wi, &word) in words.iter().enumerate() {
            if word == 0 {
                continue;
            }
            let base = wi * 64;
            let chunk = &values[base..values.len().min(base + 64)];
            let mut n = 0u64;
            let mut sum = 0.0f64;
            let mut sum_sq = 0.0f64;
            if word == u64::MAX && chunk.len() == 64 {
                for &v in chunk {
                    let keep = v.is_finite();
                    n += keep as u64;
                    let v = if keep { v } else { 0.0 };
                    sum += v;
                    sum_sq += v * v;
                }
            } else {
                let mut bits = word;
                while bits != 0 {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let v = chunk[tz];
                    if v.is_finite() {
                        n += 1;
                        sum += v;
                        sum_sq += v * v;
                    }
                }
            }
            m.n += n;
            m.sum.add(sum);
            m.sum_sq.add(sum_sq);
        }
        m
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.n += 1;
        self.sum.add(x);
        self.sum_sq.add(x * x);
    }

    /// Merges another sketch (disjoint row sets assumed).
    pub fn merge(&mut self, other: &UniMoments) {
        self.n += other.n;
        self.sum.add(other.sum.value());
        self.sum_sq.add(other.sum_sq.value());
    }

    /// Derives `self − other`, the sketch of the complement rows. `other`
    /// must sketch a subset of the rows sketched by `self`.
    pub fn subtract(&self, other: &UniMoments) -> Result<UniMoments> {
        if other.n > self.n {
            return Err(StatsError::InvalidParameter {
                name: "subset count",
                value: other.n as f64,
                expected: "subset n <= superset n",
            });
        }
        let mut sum = Kahan::default();
        sum.add(self.sum.value());
        sum.add(-other.sum.value());
        let mut sum_sq = Kahan::default();
        sum_sq.add(self.sum_sq.value());
        sum_sq.add(-other.sum_sq.value());
        // Σx² is nonnegative by construction; clamp tiny negative residue.
        if sum_sq.sum < 0.0 {
            sum_sq = Kahan {
                sum: 0.0,
                comp: 0.0,
            };
        }
        Ok(UniMoments {
            n: self.n - other.n,
            sum,
            sum_sq,
        })
    }

    /// Number of finite observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Σx over finite observations.
    pub fn sum(&self) -> f64 {
        self.sum.value()
    }

    /// Σx² over finite observations.
    pub fn sum_sq(&self) -> f64 {
        self.sum_sq.value()
    }

    /// Sample mean; NaN when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.sum.value() / self.n as f64
        }
    }

    /// Unbiased sample variance.
    pub fn variance(&self) -> Result<f64> {
        if self.n < 2 {
            return Err(StatsError::InsufficientData {
                what: "sample variance",
                needed: 2,
                got: self.n as usize,
            });
        }
        let n = self.n as f64;
        let centered = self.sum_sq.value() - self.sum.value() * self.sum.value() / n;
        Ok((centered / (n - 1.0)).max(0.0))
    }

    /// Unbiased sample standard deviation.
    pub fn std_dev(&self) -> Result<f64> {
        Ok(self.variance()?.sqrt())
    }
}

/// Bivariate power-sum sketch over pairs `(x, y)`: count, Σx, Σy, Σx², Σy²,
/// Σxy, restricted to rows where *both* values are finite.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PairMoments {
    n: u64,
    sum_x: Kahan,
    sum_y: Kahan,
    sum_xx: Kahan,
    sum_yy: Kahan,
    sum_xy: Kahan,
}

impl PairMoments {
    /// Creates an empty sketch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a sketch over two parallel slices.
    pub fn from_slices(xs: &[f64], ys: &[f64]) -> Result<Self> {
        if xs.len() != ys.len() {
            return Err(StatsError::LengthMismatch {
                left: xs.len(),
                right: ys.len(),
            });
        }
        let mut m = Self::new();
        for (&x, &y) in xs.iter().zip(ys) {
            m.push(x, y);
        }
        Ok(m)
    }

    /// Builds a sketch over the masked subset of two parallel columns.
    ///
    /// This is the naive per-row reference; hot paths use the word-wise
    /// [`PairMoments::from_mask_words`] kernel instead.
    pub fn from_masked(xs: &[f64], ys: &[f64], mask: impl Fn(usize) -> bool) -> Result<Self> {
        if xs.len() != ys.len() {
            return Err(StatsError::LengthMismatch {
                left: xs.len(),
                right: ys.len(),
            });
        }
        let mut m = Self::new();
        for i in 0..xs.len() {
            if mask(i) {
                m.push(xs[i], ys[i]);
            }
        }
        Ok(m)
    }

    /// Word-wise masked kernel over two parallel columns; the bivariate
    /// analogue of [`UniMoments::from_mask_words`] (same packed-word
    /// contract, same per-word accumulation scheme). Rows count only when
    /// both coordinates are finite, exactly like [`PairMoments::push`].
    pub fn from_mask_words(xs: &[f64], ys: &[f64], words: &[u64]) -> Result<Self> {
        if xs.len() != ys.len() {
            return Err(StatsError::LengthMismatch {
                left: xs.len(),
                right: ys.len(),
            });
        }
        assert!(
            words.len() >= xs.len().div_ceil(64),
            "mask words too short: {} words for {} values",
            words.len(),
            xs.len()
        );
        let mut m = Self::new();
        for (wi, &word) in words.iter().enumerate() {
            if word == 0 {
                continue;
            }
            let base = wi * 64;
            let end = xs.len().min(base + 64);
            let (cx, cy) = (&xs[base..end], &ys[base..end]);
            let mut n = 0u64;
            let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (0.0, 0.0, 0.0, 0.0, 0.0);
            let mut fold = |x: f64, y: f64| {
                let keep = x.is_finite() && y.is_finite();
                n += keep as u64;
                let (x, y) = if keep { (x, y) } else { (0.0, 0.0) };
                sx += x;
                sy += y;
                sxx += x * x;
                syy += y * y;
                sxy += x * y;
            };
            if word == u64::MAX && cx.len() == 64 {
                for (&x, &y) in cx.iter().zip(cy) {
                    fold(x, y);
                }
            } else {
                let mut bits = word;
                while bits != 0 {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    fold(cx[tz], cy[tz]);
                }
            }
            m.n += n;
            m.sum_x.add(sx);
            m.sum_y.add(sy);
            m.sum_xx.add(sxx);
            m.sum_yy.add(syy);
            m.sum_xy.add(sxy);
        }
        Ok(m)
    }

    /// Adds one pair; skipped unless both coordinates are finite.
    pub fn push(&mut self, x: f64, y: f64) {
        if !x.is_finite() || !y.is_finite() {
            return;
        }
        self.n += 1;
        self.sum_x.add(x);
        self.sum_y.add(y);
        self.sum_xx.add(x * x);
        self.sum_yy.add(y * y);
        self.sum_xy.add(x * y);
    }

    /// Merges another sketch (disjoint row sets assumed).
    pub fn merge(&mut self, other: &PairMoments) {
        self.n += other.n;
        self.sum_x.add(other.sum_x.value());
        self.sum_y.add(other.sum_y.value());
        self.sum_xx.add(other.sum_xx.value());
        self.sum_yy.add(other.sum_yy.value());
        self.sum_xy.add(other.sum_xy.value());
    }

    /// Derives `self − other` for complement statistics.
    pub fn subtract(&self, other: &PairMoments) -> Result<PairMoments> {
        if other.n > self.n {
            return Err(StatsError::InvalidParameter {
                name: "subset count",
                value: other.n as f64,
                expected: "subset n <= superset n",
            });
        }
        fn sub(a: &Kahan, b: &Kahan) -> Kahan {
            let mut k = Kahan::default();
            k.add(a.value());
            k.add(-b.value());
            k
        }
        let mut sum_xx = sub(&self.sum_xx, &other.sum_xx);
        let mut sum_yy = sub(&self.sum_yy, &other.sum_yy);
        if sum_xx.sum < 0.0 {
            sum_xx = Kahan::default();
        }
        if sum_yy.sum < 0.0 {
            sum_yy = Kahan::default();
        }
        Ok(PairMoments {
            n: self.n - other.n,
            sum_x: sub(&self.sum_x, &other.sum_x),
            sum_y: sub(&self.sum_y, &other.sum_y),
            sum_xx,
            sum_yy,
            sum_xy: sub(&self.sum_xy, &other.sum_xy),
        })
    }

    /// Number of jointly finite pairs.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of the x coordinate; NaN when empty.
    pub fn mean_x(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.sum_x.value() / self.n as f64
        }
    }

    /// Mean of the y coordinate; NaN when empty.
    pub fn mean_y(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.sum_y.value() / self.n as f64
        }
    }

    /// Unbiased sample covariance.
    pub fn covariance(&self) -> Result<f64> {
        if self.n < 2 {
            return Err(StatsError::InsufficientData {
                what: "covariance",
                needed: 2,
                got: self.n as usize,
            });
        }
        let n = self.n as f64;
        Ok((self.sum_xy.value() - self.sum_x.value() * self.sum_y.value() / n) / (n - 1.0))
    }

    /// Pearson correlation coefficient, clamped to `[−1, 1]`.
    pub fn correlation(&self) -> Result<f64> {
        if self.n < 2 {
            return Err(StatsError::InsufficientData {
                what: "correlation",
                needed: 2,
                got: self.n as usize,
            });
        }
        let n = self.n as f64;
        let var_x = (self.sum_xx.value() - self.sum_x.value() * self.sum_x.value() / n).max(0.0);
        let var_y = (self.sum_yy.value() - self.sum_y.value() * self.sum_y.value() / n).max(0.0);
        if var_x <= 0.0 || var_y <= 0.0 {
            return Err(StatsError::Degenerate("correlation with a constant margin"));
        }
        let cov = self.sum_xy.value() - self.sum_x.value() * self.sum_y.value() / n;
        Ok((cov / (var_x * var_y).sqrt()).clamp(-1.0, 1.0))
    }

    /// Marginal sketch of the x coordinate (over jointly finite rows).
    pub fn x_moments(&self) -> UniMoments {
        UniMoments {
            n: self.n,
            sum: self.sum_x,
            sum_sq: self.sum_xx,
        }
    }

    /// Marginal sketch of the y coordinate (over jointly finite rows).
    pub fn y_moments(&self) -> UniMoments {
        UniMoments {
            n: self.n,
            sum: self.sum_y,
            sum_sq: self.sum_yy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn uni_basics() {
        let m = UniMoments::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.count(), 4);
        close(m.mean(), 2.5, 1e-12);
        close(m.variance().unwrap(), 5.0 / 3.0, 1e-12);
    }

    #[test]
    fn uni_skips_non_finite() {
        let m = UniMoments::from_slice(&[1.0, f64::NAN, 3.0, f64::INFINITY]);
        assert_eq!(m.count(), 2);
        close(m.mean(), 2.0, 1e-12);
    }

    #[test]
    fn uni_empty() {
        let m = UniMoments::new();
        assert!(m.mean().is_nan());
        assert!(m.variance().is_err());
        assert!(m.std_dev().is_err());
    }

    #[test]
    fn uni_subtract_matches_direct() {
        let all: Vec<f64> = (0..500)
            .map(|i| (i as f64 * 0.731).sin() * 40.0 + 100.0)
            .collect();
        let whole = UniMoments::from_slice(&all);
        let inside = UniMoments::from_masked(&all, |i| i % 3 == 0);
        let outside_direct = UniMoments::from_masked(&all, |i| i % 3 != 0);
        let outside_derived = whole.subtract(&inside).unwrap();
        assert_eq!(outside_derived.count(), outside_direct.count());
        close(outside_derived.mean(), outside_direct.mean(), 1e-9);
        close(
            outside_derived.variance().unwrap(),
            outside_direct.variance().unwrap(),
            1e-9,
        );
    }

    #[test]
    fn uni_subtract_rejects_larger_subset() {
        let small = UniMoments::from_slice(&[1.0]);
        let big = UniMoments::from_slice(&[1.0, 2.0]);
        assert!(small.subtract(&big).is_err());
    }

    #[test]
    fn uni_merge_matches_bulk() {
        let all: Vec<f64> = (0..200).map(|i| i as f64 * 0.1).collect();
        let mut a = UniMoments::from_slice(&all[..77]);
        let b = UniMoments::from_slice(&all[77..]);
        a.merge(&b);
        let bulk = UniMoments::from_slice(&all);
        close(a.mean(), bulk.mean(), 1e-12);
        close(a.variance().unwrap(), bulk.variance().unwrap(), 1e-10);
    }

    #[test]
    fn uni_constant_variance_zero() {
        let m = UniMoments::from_slice(&[7.0; 50]);
        close(m.variance().unwrap(), 0.0, 1e-12);
    }

    /// Packs a predicate into LSB-first mask words (test-local stand-in
    /// for ziggy-store's Bitmask, which this crate cannot depend on).
    fn pack(len: usize, f: impl Fn(usize) -> bool) -> Vec<u64> {
        let mut words = vec![0u64; len.div_ceil(64)];
        for i in (0..len).filter(|&i| f(i)) {
            words[i / 64] |= 1 << (i % 64);
        }
        words
    }

    #[test]
    fn uni_word_kernel_matches_naive() {
        let values: Vec<f64> = (0..200)
            .map(|i| {
                if i % 17 == 0 {
                    f64::NAN
                } else {
                    (i as f64 * 0.73).sin() * 50.0
                }
            })
            .collect();
        for pred in [
            |_: usize| true,
            |_: usize| false,
            |i: usize| i.is_multiple_of(3),
            |i: usize| i >= 150, // tail-word heavy (200 % 64 != 0)
        ] {
            let kernel = UniMoments::from_mask_words(&values, &pack(values.len(), pred));
            let naive = UniMoments::from_masked(&values, pred);
            assert_eq!(kernel.count(), naive.count());
            close(kernel.sum(), naive.sum(), 1e-9);
            close(kernel.sum_sq(), naive.sum_sq(), 1e-6);
        }
    }

    #[test]
    fn pair_word_kernel_matches_naive() {
        let xs: Vec<f64> = (0..130)
            .map(|i| if i == 7 { f64::NAN } else { i as f64 * 0.3 })
            .collect();
        let ys: Vec<f64> = (0..130)
            .map(|i| {
                if i == 99 {
                    f64::INFINITY
                } else {
                    (i * i) as f64 * 0.01
                }
            })
            .collect();
        for pred in [|_: usize| true, |i: usize| i % 5 < 2, |i: usize| i > 120] {
            let kernel = PairMoments::from_mask_words(&xs, &ys, &pack(xs.len(), pred)).unwrap();
            let naive = PairMoments::from_masked(&xs, &ys, pred).unwrap();
            assert_eq!(kernel.count(), naive.count());
            if kernel.count() >= 2 {
                close(
                    kernel.covariance().unwrap(),
                    naive.covariance().unwrap(),
                    1e-9,
                );
            }
        }
    }

    #[test]
    fn pair_word_kernel_checks_lengths() {
        assert!(PairMoments::from_mask_words(&[1.0], &[1.0, 2.0], &[1]).is_err());
    }

    #[test]
    #[should_panic(expected = "mask words too short")]
    fn uni_word_kernel_rejects_short_words() {
        UniMoments::from_mask_words(&[1.0; 65], &[u64::MAX]);
    }

    #[test]
    fn pair_correlation_known() {
        // Perfect positive and negative correlation.
        let xs = [1.0, 2.0, 3.0, 4.0];
        let up = [2.0, 4.0, 6.0, 8.0];
        let down = [8.0, 6.0, 4.0, 2.0];
        close(
            PairMoments::from_slices(&xs, &up)
                .unwrap()
                .correlation()
                .unwrap(),
            1.0,
            1e-12,
        );
        close(
            PairMoments::from_slices(&xs, &down)
                .unwrap()
                .correlation()
                .unwrap(),
            -1.0,
            1e-12,
        );
    }

    #[test]
    fn pair_covariance_known() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [2.0, 4.0, 9.0];
        // Cov = Σ(x−x̄)(y−ȳ)/(n−1) = ((−1)(−3)+(0)(−1)+(1)(4))/2 = 3.5.
        close(
            PairMoments::from_slices(&xs, &ys)
                .unwrap()
                .covariance()
                .unwrap(),
            3.5,
            1e-12,
        );
    }

    #[test]
    fn pair_requires_both_finite() {
        let xs = [1.0, f64::NAN, 3.0, 4.0];
        let ys = [1.0, 2.0, f64::NAN, 5.0];
        let m = PairMoments::from_slices(&xs, &ys).unwrap();
        assert_eq!(m.count(), 2);
    }

    #[test]
    fn pair_length_mismatch() {
        assert!(matches!(
            PairMoments::from_slices(&[1.0], &[1.0, 2.0]),
            Err(StatsError::LengthMismatch { left: 1, right: 2 })
        ));
    }

    #[test]
    fn pair_degenerate_correlation() {
        let m = PairMoments::from_slices(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).unwrap();
        assert!(matches!(m.correlation(), Err(StatsError::Degenerate(_))));
    }

    #[test]
    fn pair_subtract_matches_direct() {
        let n = 400;
        let xs: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).cos() * 10.0).collect();
        let ys: Vec<f64> = (0..n)
            .map(|i| (i as f64 * 0.37).cos() * 5.0 + (i as f64 * 1.13).sin())
            .collect();
        let whole = PairMoments::from_slices(&xs, &ys).unwrap();
        let inside = PairMoments::from_masked(&xs, &ys, |i| i % 5 < 2).unwrap();
        let outside_direct = PairMoments::from_masked(&xs, &ys, |i| i % 5 >= 2).unwrap();
        let derived = whole.subtract(&inside).unwrap();
        assert_eq!(derived.count(), outside_direct.count());
        close(
            derived.correlation().unwrap(),
            outside_direct.correlation().unwrap(),
            1e-9,
        );
        close(
            derived.covariance().unwrap(),
            outside_direct.covariance().unwrap(),
            1e-9,
        );
    }

    #[test]
    fn pair_marginals_match_uni() {
        let xs = [1.0, 2.0, 3.0, 10.0];
        let ys = [5.0, 5.0, 6.0, 8.0];
        let m = PairMoments::from_slices(&xs, &ys).unwrap();
        close(m.x_moments().mean(), 4.0, 1e-12);
        close(m.y_moments().mean(), 6.0, 1e-12);
        close(
            m.x_moments().variance().unwrap(),
            UniMoments::from_slice(&xs).variance().unwrap(),
            1e-12,
        );
    }

    #[test]
    fn pair_merge_matches_bulk() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ys: Vec<f64> = (0..100).map(|i| (i * i) as f64 * 0.01).collect();
        let mut a = PairMoments::from_slices(&xs[..40], &ys[..40]).unwrap();
        let b = PairMoments::from_slices(&xs[40..], &ys[40..]).unwrap();
        a.merge(&b);
        let bulk = PairMoments::from_slices(&xs, &ys).unwrap();
        close(a.correlation().unwrap(), bulk.correlation().unwrap(), 1e-12);
    }
}
