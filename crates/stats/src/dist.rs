//! Continuous probability distributions backing the hypothesis tests.
//!
//! Four classical distributions — [`Normal`], [`StudentT`], [`ChiSquared`]
//! and [`FisherF`] — unified behind [`ContinuousDistribution`]. CDFs are
//! computed from the regularized special functions in [`crate::special`];
//! quantiles invert the CDF (closed-form with Newton polish for the
//! normal, bracketed bisection elsewhere, which is plenty fast for the
//! engine's per-view significance tests).

use crate::error::{Result, StatsError};
use crate::special::{erfc, inverse_normal_cdf, reg_gamma_p, reg_gamma_q, reg_inc_beta};

const SQRT_2: f64 = std::f64::consts::SQRT_2;

/// A continuous distribution with a cumulative distribution function.
pub trait ContinuousDistribution {
    /// `P(X <= x)`.
    fn cdf(&self, x: f64) -> f64;

    /// Survival function `P(X > x)`; override when a direct computation
    /// is more accurate in the upper tail.
    fn sf(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }

    /// Inverse CDF at probability `p ∈ (0, 1)`.
    fn quantile(&self, p: f64) -> Result<f64>;
}

fn check_probability(p: f64) -> Result<()> {
    if !(p > 0.0 && p < 1.0) {
        return Err(StatsError::InvalidParameter {
            name: "p",
            value: p,
            expected: "a probability in (0, 1)",
        });
    }
    Ok(())
}

fn check_positive(name: &'static str, value: f64) -> Result<()> {
    if value <= 0.0 || value.is_nan() || !value.is_finite() {
        return Err(StatsError::InvalidParameter {
            name,
            value,
            expected: "a finite positive number",
        });
    }
    Ok(())
}

/// Inverts a monotone CDF by bracketed bisection. `lo`/`hi` must bracket
/// the target probability; both are finite.
fn bisect_quantile(cdf: impl Fn(f64) -> f64, mut lo: f64, mut hi: f64, p: f64) -> f64 {
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if mid <= lo || mid >= hi {
            break; // No representable midpoint left.
        }
        if cdf(mid) < p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Expands `hi` geometrically until `cdf(hi) >= p` (support `[0, ∞)`).
fn upper_bracket(cdf: impl Fn(f64) -> f64, p: f64, start: f64) -> f64 {
    let mut hi = start.max(1.0);
    for _ in 0..200 {
        if cdf(hi) >= p {
            return hi;
        }
        hi *= 2.0;
    }
    hi
}

// --------------------------------------------------------------------
// Normal
// --------------------------------------------------------------------

/// The normal distribution `N(mu, sigma²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// A normal with the given mean and standard deviation (`sigma > 0`).
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        check_positive("sigma", sigma)?;
        if !mu.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "mu",
                value: mu,
                expected: "a finite number",
            });
        }
        Ok(Self { mu, sigma })
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Self {
            mu: 0.0,
            sigma: 1.0,
        }
    }

    /// Two-sided p-value of a standard-normal statistic `z`:
    /// `P(|Z| >= |z|)`.
    pub fn two_sided_p(z: f64) -> f64 {
        erfc(z.abs() / SQRT_2).min(1.0)
    }

    fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }
}

impl ContinuousDistribution for Normal {
    fn cdf(&self, x: f64) -> f64 {
        0.5 * erfc(-(x - self.mu) / (self.sigma * SQRT_2))
    }

    fn sf(&self, x: f64) -> f64 {
        0.5 * erfc((x - self.mu) / (self.sigma * SQRT_2))
    }

    fn quantile(&self, p: f64) -> Result<f64> {
        check_probability(p)?;
        let mut x = self.mu + self.sigma * inverse_normal_cdf(p)?;
        // Two Newton polish steps push the closed-form approximation to
        // full double precision.
        for _ in 0..2 {
            let density = self.pdf(x);
            if density > 0.0 {
                x -= (self.cdf(x) - p) / density;
            }
        }
        Ok(x)
    }
}

// --------------------------------------------------------------------
// Student's t
// --------------------------------------------------------------------

/// Student's t distribution with `df > 0` degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudentT {
    df: f64,
}

impl StudentT {
    /// A t distribution with `df` degrees of freedom.
    pub fn new(df: f64) -> Result<Self> {
        check_positive("df", df)?;
        Ok(Self { df })
    }

    /// Two-sided p-value of a t statistic: `P(|T| >= |t|)`.
    pub fn two_sided_p(&self, t: f64) -> f64 {
        if t == 0.0 {
            return 1.0;
        }
        let x = self.df / (self.df + t * t);
        reg_inc_beta(0.5 * self.df, 0.5, x).unwrap_or(1.0).min(1.0)
    }
}

impl ContinuousDistribution for StudentT {
    fn cdf(&self, x: f64) -> f64 {
        // One-sided tail from the two-sided mass, mirrored for x < 0 so
        // the symmetry cdf(-x) = 1 - cdf(x) holds exactly.
        let half_tail = 0.5 * self.two_sided_p(x);
        if x >= 0.0 {
            1.0 - half_tail
        } else {
            half_tail
        }
    }

    fn quantile(&self, p: f64) -> Result<f64> {
        check_probability(p)?;
        // Mirror onto the upper half for a one-sided bracket.
        if p < 0.5 {
            return Ok(-self.quantile(1.0 - p)?);
        }
        let hi = upper_bracket(|x| self.cdf(x), p, 1.0);
        Ok(bisect_quantile(|x| self.cdf(x), 0.0, hi, p))
    }
}

// --------------------------------------------------------------------
// Chi-squared
// --------------------------------------------------------------------

/// The chi-squared distribution with `df > 0` degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquared {
    df: f64,
}

impl ChiSquared {
    /// A chi-squared distribution with `df` degrees of freedom.
    pub fn new(df: f64) -> Result<Self> {
        check_positive("df", df)?;
        Ok(Self { df })
    }
}

impl ContinuousDistribution for ChiSquared {
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        reg_gamma_p(0.5 * self.df, 0.5 * x).unwrap_or(1.0)
    }

    fn sf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 1.0;
        }
        reg_gamma_q(0.5 * self.df, 0.5 * x).unwrap_or(0.0)
    }

    fn quantile(&self, p: f64) -> Result<f64> {
        check_probability(p)?;
        let hi = upper_bracket(|x| self.cdf(x), p, self.df.max(1.0) * 2.0);
        Ok(bisect_quantile(|x| self.cdf(x), 0.0, hi, p))
    }
}

// --------------------------------------------------------------------
// Fisher's F
// --------------------------------------------------------------------

/// The F distribution with `d1 > 0` and `d2 > 0` degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FisherF {
    d1: f64,
    d2: f64,
}

impl FisherF {
    /// An F distribution with numerator/denominator degrees of freedom.
    pub fn new(d1: f64, d2: f64) -> Result<Self> {
        check_positive("d1", d1)?;
        check_positive("d2", d2)?;
        Ok(Self { d1, d2 })
    }
}

impl ContinuousDistribution for FisherF {
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let z = self.d1 * x / (self.d1 * x + self.d2);
        reg_inc_beta(0.5 * self.d1, 0.5 * self.d2, z).unwrap_or(1.0)
    }

    fn sf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 1.0;
        }
        // Upper tail via the mirrored incomplete beta for accuracy.
        let z = self.d2 / (self.d1 * x + self.d2);
        reg_inc_beta(0.5 * self.d2, 0.5 * self.d1, z).unwrap_or(0.0)
    }

    fn quantile(&self, p: f64) -> Result<f64> {
        check_probability(p)?;
        let hi = upper_bracket(|x| self.cdf(x), p, 2.0);
        Ok(bisect_quantile(|x| self.cdf(x), 0.0, hi, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn normal_known_values() {
        let n = Normal::standard();
        close(n.cdf(0.0), 0.5, 1e-12);
        close(n.cdf(1.959_963_984_540_054), 0.975, 1e-9);
        close(n.quantile(0.975).unwrap(), 1.959_963_984_540_054, 1e-9);
        close(Normal::two_sided_p(1.959_963_984_540_054), 0.05, 1e-9);
    }

    #[test]
    fn shifted_normal() {
        let n = Normal::new(10.0, 2.0).unwrap();
        close(n.cdf(10.0), 0.5, 1e-12);
        close(n.cdf(12.0), Normal::standard().cdf(1.0), 1e-12);
        close(n.quantile(0.5).unwrap(), 10.0, 1e-9);
    }

    #[test]
    fn t_known_values() {
        // R: pt(2.0, df = 10) = 0.9633060
        let t = StudentT::new(10.0).unwrap();
        close(t.cdf(2.0), 0.963_306_0, 1e-6);
        // R: qt(0.975, df = 10) = 2.228139
        close(t.quantile(0.975).unwrap(), 2.228_139, 1e-5);
        close(t.two_sided_p(2.228_139), 0.05, 1e-5);
    }

    #[test]
    fn chi2_known_values() {
        // R: pchisq(3.84, df = 1) = 0.9499565
        let c = ChiSquared::new(1.0).unwrap();
        close(c.cdf(3.84), 0.949_956_5, 1e-6);
        // R: qchisq(0.95, df = 5) = 11.0705
        let c5 = ChiSquared::new(5.0).unwrap();
        close(c5.quantile(0.95).unwrap(), 11.070_5, 1e-4);
        close(c5.cdf(11.0705) + c5.sf(11.0705), 1.0, 1e-12);
    }

    #[test]
    fn f_known_values() {
        // At x = 3, z = d1*x/(d1*x + d2) = 1/2 and I_0.5(2, 6) is the
        // binomial sum P(Bin(7, 1/2) >= 2) = 120/128 exactly.
        let f = FisherF::new(4.0, 12.0).unwrap();
        close(f.cdf(3.0), 120.0 / 128.0, 1e-10);
        // Equal degrees of freedom: the median is exactly 1.
        let sym = FisherF::new(6.0, 6.0).unwrap();
        close(sym.cdf(1.0), 0.5, 1e-10);
        close(sym.quantile(0.5).unwrap(), 1.0, 1e-9);
        close(f.sf(3.0) + f.cdf(3.0), 1.0, 1e-12);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(StudentT::new(-1.0).is_err());
        assert!(ChiSquared::new(0.0).is_err());
        assert!(FisherF::new(1.0, f64::INFINITY).is_err());
        assert!(Normal::standard().quantile(0.0).is_err());
        assert!(Normal::standard().quantile(1.5).is_err());
    }
}
