//! Tables: a schema plus equally long columns, with typed accessors.

use serde::{Deserialize, Serialize};

use crate::column::Column;
use crate::error::{Result, StoreError};
use crate::schema::{ColumnMeta, ColumnType, Schema};

/// An immutable in-memory columnar table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
    n_rows: usize,
}

impl Table {
    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// Raw column `i`; panics when out of range.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Column index by name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.schema.index_of(name)
    }

    /// Column name by index; panics when out of range.
    pub fn name(&self, i: usize) -> &str {
        self.schema.name(i)
    }

    /// Numeric data of column `i`, or a type error.
    pub fn numeric(&self, i: usize) -> Result<&[f64]> {
        self.columns[i]
            .as_numeric()
            .ok_or_else(|| StoreError::TypeMismatch {
                column: self.schema.name(i).to_string(),
                expected: "numeric",
                actual: self.schema.column(i).map(|c| c.ctype.name()).unwrap_or("?"),
            })
    }

    /// Categorical data `(codes, labels)` of column `i`, or a type error.
    pub fn categorical(&self, i: usize) -> Result<(&[u32], &[String])> {
        self.columns[i]
            .as_categorical()
            .ok_or_else(|| StoreError::TypeMismatch {
                column: self.schema.name(i).to_string(),
                expected: "categorical",
                actual: self.schema.column(i).map(|c| c.ctype.name()).unwrap_or("?"),
            })
    }

    /// Indices of all numeric columns.
    pub fn numeric_indices(&self) -> Vec<usize> {
        self.schema.indices_of_type(ColumnType::Numeric)
    }

    /// Indices of all categorical columns.
    pub fn categorical_indices(&self) -> Vec<usize> {
        self.schema.indices_of_type(ColumnType::Categorical)
    }

    /// Rebuilds internal lookup structures after deserialization.
    pub fn rebuild_index(&mut self) {
        self.schema.rebuild_index();
    }
}

/// Incremental [`Table`] constructor.
#[derive(Debug, Default)]
pub struct TableBuilder {
    metas: Vec<ColumnMeta>,
    columns: Vec<Column>,
}

impl TableBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a numeric column (NaN encodes NULL).
    pub fn add_numeric(&mut self, name: impl Into<String>, values: Vec<f64>) -> &mut Self {
        self.metas.push(ColumnMeta {
            name: name.into(),
            ctype: ColumnType::Numeric,
        });
        self.columns.push(Column::Numeric(values));
        self
    }

    /// Adds a numeric column from optional values (`None` = NULL).
    pub fn add_numeric_opt(
        &mut self,
        name: impl Into<String>,
        values: Vec<Option<f64>>,
    ) -> &mut Self {
        self.add_numeric(
            name,
            values.into_iter().map(|v| v.unwrap_or(f64::NAN)).collect(),
        )
    }

    /// Adds a categorical column from string values (`None` = NULL).
    pub fn add_categorical<S: AsRef<str>>(
        &mut self,
        name: impl Into<String>,
        values: Vec<Option<S>>,
    ) -> &mut Self {
        self.metas.push(ColumnMeta {
            name: name.into(),
            ctype: ColumnType::Categorical,
        });
        self.columns.push(Column::categorical_from(values));
        self
    }

    /// Adds a pre-built column with explicit metadata.
    pub fn add_column(&mut self, meta: ColumnMeta, column: Column) -> &mut Self {
        self.metas.push(meta);
        self.columns.push(column);
        self
    }

    /// Validates lengths and names and produces the table.
    pub fn build(&mut self) -> Result<Table> {
        if self.columns.is_empty() {
            return Err(StoreError::EmptyTable);
        }
        let n_rows = self.columns[0].len();
        for (meta, col) in self.metas.iter().zip(&self.columns) {
            if col.len() != n_rows {
                return Err(StoreError::LengthMismatch {
                    column: meta.name.clone(),
                    got: col.len(),
                    expected: n_rows,
                });
            }
        }
        let schema = Schema::new(std::mem::take(&mut self.metas))?;
        Ok(Table {
            schema,
            columns: std::mem::take(&mut self.columns),
            n_rows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut b = TableBuilder::new();
        b.add_numeric("age", vec![21.0, 35.0, 62.0]);
        b.add_categorical("city", vec![Some("ams"), Some("rtm"), Some("ams")]);
        b.build().unwrap()
    }

    #[test]
    fn basic_shape() {
        let t = sample();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.n_cols(), 2);
        assert_eq!(t.name(0), "age");
        assert_eq!(t.index_of("city").unwrap(), 1);
    }

    #[test]
    fn typed_accessors() {
        let t = sample();
        assert_eq!(t.numeric(0).unwrap(), &[21.0, 35.0, 62.0]);
        let (codes, labels) = t.categorical(1).unwrap();
        assert_eq!(codes, &[0, 1, 0]);
        assert_eq!(labels.len(), 2);
        // Type mismatches are errors, not panics.
        assert!(matches!(t.numeric(1), Err(StoreError::TypeMismatch { .. })));
        assert!(matches!(
            t.categorical(0),
            Err(StoreError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn type_index_lists() {
        let t = sample();
        assert_eq!(t.numeric_indices(), vec![0]);
        assert_eq!(t.categorical_indices(), vec![1]);
    }

    #[test]
    fn build_rejects_mismatched_lengths() {
        let mut b = TableBuilder::new();
        b.add_numeric("a", vec![1.0, 2.0]);
        b.add_numeric("b", vec![1.0]);
        assert!(matches!(b.build(), Err(StoreError::LengthMismatch { .. })));
    }

    #[test]
    fn build_rejects_empty_and_duplicates() {
        assert!(matches!(
            TableBuilder::new().build(),
            Err(StoreError::EmptyTable)
        ));
        let mut b = TableBuilder::new();
        b.add_numeric("a", vec![1.0]);
        b.add_numeric("a", vec![2.0]);
        assert!(matches!(b.build(), Err(StoreError::DuplicateColumn(_))));
    }

    #[test]
    fn numeric_opt_encodes_null_as_nan() {
        let mut b = TableBuilder::new();
        b.add_numeric_opt("x", vec![Some(1.0), None, Some(3.0)]);
        let t = b.build().unwrap();
        let v = t.numeric(0).unwrap();
        assert!(v[1].is_nan());
        assert_eq!(t.column(0).null_count(), 1);
    }

    #[test]
    fn serde_round_trip() {
        let t = sample();
        let json = serde_json::to_string(&t).unwrap();
        let mut back: Table = serde_json::from_str(&json).unwrap();
        back.rebuild_index();
        assert_eq!(back.n_rows(), 3);
        assert_eq!(back.index_of("age").unwrap(), 0);
    }
}

/// Sampling support: the exploration-systems the paper cites include
/// BlinkDB, which trades exactness for latency by querying samples. The
/// same trade works for characterization: run Ziggy on a row sample and
/// the effect sizes stay consistent (their SEs widen as 1/√frac).
impl Table {
    /// Returns a deterministic row sample of approximately
    /// `frac · n_rows` rows (splitmix64 hash per row — stable across
    /// calls and platforms). `frac` is clamped to `(0, 1]`.
    pub fn sample_rows(&self, frac: f64, seed: u64) -> Table {
        let frac = frac.clamp(f64::MIN_POSITIVE, 1.0);
        let keep: Vec<usize> = (0..self.n_rows)
            .filter(|&i| {
                let mut h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seed;
                h ^= h >> 30;
                h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                h ^= h >> 27;
                h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
                h ^= h >> 31;
                (h as f64 / u64::MAX as f64) < frac
            })
            .collect();
        let columns: Vec<Column> = self
            .columns
            .iter()
            .map(|col| match col {
                Column::Numeric(v) => Column::Numeric(keep.iter().map(|&i| v[i]).collect()),
                Column::Categorical { codes, labels } => Column::Categorical {
                    codes: keep.iter().map(|&i| codes[i]).collect(),
                    labels: labels.clone(),
                },
            })
            .collect();
        Table {
            schema: self.schema.clone(),
            columns,
            n_rows: keep.len(),
        }
    }
}

#[cfg(test)]
mod sampling_tests {
    use super::*;

    fn wide_table(n: usize) -> Table {
        let mut b = TableBuilder::new();
        b.add_numeric("x", (0..n).map(|i| i as f64).collect());
        b.add_categorical("c", (0..n).map(|i| Some(["a", "b"][i % 2])).collect());
        b.build().unwrap()
    }

    #[test]
    fn sample_size_tracks_fraction() {
        let t = wide_table(10_000);
        let s = t.sample_rows(0.2, 7);
        let frac = s.n_rows() as f64 / 10_000.0;
        assert!((frac - 0.2).abs() < 0.02, "sampled fraction {frac}");
        assert_eq!(s.n_cols(), 2);
    }

    #[test]
    fn sample_is_deterministic_per_seed() {
        let t = wide_table(1_000);
        let a = t.sample_rows(0.3, 11);
        let b = t.sample_rows(0.3, 11);
        assert_eq!(a.numeric(0).unwrap(), b.numeric(0).unwrap());
        let c = t.sample_rows(0.3, 12);
        assert_ne!(a.numeric(0).unwrap(), c.numeric(0).unwrap());
    }

    #[test]
    fn frac_one_keeps_everything() {
        let t = wide_table(100);
        let s = t.sample_rows(1.0, 5);
        assert_eq!(s.n_rows(), 100);
    }

    #[test]
    fn sample_preserves_statistics_approximately() {
        let t = wide_table(50_000);
        let s = t.sample_rows(0.1, 3);
        let full_mean = ziggy_stats::UniMoments::from_slice(t.numeric(0).unwrap()).mean();
        let samp_mean = ziggy_stats::UniMoments::from_slice(s.numeric(0).unwrap()).mean();
        assert!(
            (full_mean - samp_mean).abs() / full_mean < 0.02,
            "{full_mean} vs {samp_mean}"
        );
    }

    #[test]
    fn dictionary_shared_after_sampling() {
        let t = wide_table(1_000);
        let s = t.sample_rows(0.5, 9);
        let (_, labels) = s.categorical(1).unwrap();
        assert_eq!(labels.len(), 2);
    }
}
