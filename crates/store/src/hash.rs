//! Stable, dependency-free hashing shared across the workspace.
//!
//! `DefaultHasher` does not promise stability across processes or
//! compiler versions, but several subsystems need exactly that: the
//! registry's CSV ingest fingerprints (replicate idempotency), the
//! fleet's consistent-hash ring (placement must agree between router
//! restarts), the engine's configuration fingerprints (report-cache
//! keys), and the serving layer's `ETag`s (clients compare them across
//! connections and across fleet replicas). They all share this FNV-1a.

/// FNV-1a 64-bit hash over a byte slice.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_vectors() {
        // Ring placement, replicate idempotency, and ETag stability all
        // depend on these staying fixed across refactors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a_64(b"table-0"), fnv1a_64(b"table-1"));
    }
}
