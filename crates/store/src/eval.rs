//! Vectorized predicate evaluation: `Expr × Table → Bitmask`.
//!
//! Evaluation is column-at-a-time in the MonetDB spirit: each leaf
//! predicate scans one column into a bitmask, and boolean combinators
//! operate on whole masks with word-wide operations.
//!
//! NULL semantics are two-valued (documented in [`crate::expr`]): any
//! comparison, `IN`, or `BETWEEN` against a NULL evaluates to false;
//! `IS NULL` / `IS NOT NULL` test NULL-ness explicitly.
//!
//! Numeric comparison and `BETWEEN` leaves are chunk-aware: when the
//! caller supplies [`ZoneMaps`] (via [`evaluate_with`]), each
//! [`crate::chunk::CHUNK_ROWS`]-row chunk is first tested against its
//! min/max/null summary — a chunk the summary proves *cold* (no row can
//! match) is skipped without touching the data, a chunk proved *hot*
//! (every row matches) is filled with one word-wise
//! [`Bitmask::set_range`], and only ambiguous chunks pay the row scan.
//! The zone-mapped result is always bit-identical to the plain scan
//! (pinned by property tests); `evaluate` without maps is unchanged.

use crate::chunk::{chunk_bounds, ChunkSummary, ZoneMaps};
use crate::column::NULL_CODE;
use crate::error::{Result, StoreError};
use crate::expr::{CmpOp, Expr, Literal};
use crate::mask::Bitmask;
use crate::table::Table;

/// Evaluates a predicate over a table, producing the selection mask.
pub fn evaluate(expr: &Expr, table: &Table) -> Result<Bitmask> {
    evaluate_with(expr, table, None)
}

/// Evaluates a predicate with optional zone maps for chunk skipping.
/// Maps built for a different table (row-count mismatch) are ignored
/// rather than trusted.
pub fn evaluate_with(expr: &Expr, table: &Table, zones: Option<&ZoneMaps>) -> Result<Bitmask> {
    let zones = zones.filter(|z| z.n_rows() == table.n_rows());
    eval_expr(expr, table, zones)
}

fn eval_expr(expr: &Expr, table: &Table, zones: Option<&ZoneMaps>) -> Result<Bitmask> {
    match expr {
        Expr::Const(b) => Ok(if *b {
            Bitmask::ones(table.n_rows())
        } else {
            Bitmask::zeros(table.n_rows())
        }),
        Expr::And(a, b) => {
            let mut left = eval_expr(a, table, zones)?;
            let right = eval_expr(b, table, zones)?;
            left.and_assign(&right);
            Ok(left)
        }
        Expr::Or(a, b) => {
            let mut left = eval_expr(a, table, zones)?;
            let right = eval_expr(b, table, zones)?;
            left.or_assign(&right);
            Ok(left)
        }
        Expr::Not(inner) => {
            let mut m = eval_expr(inner, table, zones)?;
            m.not_assign();
            Ok(m)
        }
        Expr::Cmp { column, op, value } => eval_cmp(table, column, *op, value, zones),
        Expr::Between {
            column,
            lo,
            hi,
            negated,
        } => eval_between(table, column, *lo, *hi, *negated, zones),
        Expr::InList {
            column,
            values,
            negated,
        } => eval_in(table, column, values, *negated),
        Expr::IsNull { column, negated } => eval_is_null(table, column, *negated),
    }
}

/// Parses and evaluates predicate text in one call.
pub fn select(table: &Table, predicate: &str) -> Result<Bitmask> {
    let expr = crate::parse::parse_predicate(predicate)?;
    evaluate(&expr, table)
}

/// Parses and evaluates predicate text with zone maps in one call.
pub fn select_with(table: &Table, predicate: &str, zones: Option<&ZoneMaps>) -> Result<Bitmask> {
    let expr = crate::parse::parse_predicate(predicate)?;
    evaluate_with(&expr, table, zones)
}

/// Scans one numeric column chunk-at-a-time: summaries decide skip /
/// fill / scan per chunk, and only ambiguous chunks run `passes` per
/// row. With no summaries (no zone maps, or a column they don't
/// cover), degrades to the plain full scan.
fn scan_numeric(
    data: &[f64],
    zones: Option<&ZoneMaps>,
    col: usize,
    skips: impl Fn(&ChunkSummary) -> bool,
    fills: impl Fn(&ChunkSummary) -> bool,
    passes: impl Fn(f64) -> bool,
) -> Bitmask {
    let mut m = Bitmask::zeros(data.len());
    let summaries = zones.and_then(|z| z.column(col));
    match (zones, summaries) {
        (Some(zones), Some(summaries)) => {
            let (mut skipped, mut filled, mut scanned) = (0u64, 0u64, 0u64);
            for (ci, s) in summaries.iter().enumerate() {
                let (start, end) = chunk_bounds(ci, data.len());
                if skips(s) {
                    skipped += 1;
                } else if fills(s) {
                    filled += 1;
                    m.set_range(start, end);
                } else {
                    scanned += 1;
                    for (i, &x) in data[start..end].iter().enumerate() {
                        if passes(x) {
                            m.set(start + i, true);
                        }
                    }
                }
            }
            zones.record(skipped, filled, scanned);
        }
        _ => {
            for (i, &x) in data.iter().enumerate() {
                if passes(x) {
                    m.set(i, true);
                }
            }
        }
    }
    m
}

fn eval_cmp(
    table: &Table,
    column: &str,
    op: CmpOp,
    value: &Literal,
    zones: Option<&ZoneMaps>,
) -> Result<Bitmask> {
    let idx = table.index_of(column)?;
    match (table.column(idx).as_numeric(), value) {
        (Some(data), Literal::Number(rhs)) => {
            let rhs = *rhs;
            // A NaN literal compares like NULL (nothing matches Eq/…,
            // everything non-null matches Ne) — the zone-map rules
            // assume an ordered rhs, so bypass them for NaN.
            let zones = zones.filter(|_| !rhs.is_nan());
            Ok(scan_numeric(
                data,
                zones,
                idx,
                |s| s.skips_cmp(op, rhs),
                |s| s.fills_cmp(op, rhs),
                // NaN (NULL) fails every comparison including !=.
                |x| !x.is_nan() && op.eval_f64(x, rhs),
            ))
        }
        (Some(_), Literal::Str(_)) => Err(StoreError::TypeMismatch {
            column: column.to_string(),
            expected: "a numeric literal",
            actual: "string literal against a numeric column",
        }),
        (None, Literal::Str(rhs)) => {
            let (codes, _) = table.categorical(idx)?;
            let code = table.column(idx).code_of(rhs);
            let mut m = Bitmask::zeros(table.n_rows());
            match op {
                CmpOp::Eq => {
                    if let Some(code) = code {
                        for (i, &c) in codes.iter().enumerate() {
                            if c == code {
                                m.set(i, true);
                            }
                        }
                    }
                }
                CmpOp::Ne => {
                    for (i, &c) in codes.iter().enumerate() {
                        if c != NULL_CODE && Some(c) != code {
                            m.set(i, true);
                        }
                    }
                }
                _ => {
                    return Err(StoreError::TypeMismatch {
                        column: column.to_string(),
                        expected: "= or != for categorical comparisons",
                        actual: "an ordering operator",
                    })
                }
            }
            Ok(m)
        }
        (None, Literal::Number(_)) => Err(StoreError::TypeMismatch {
            column: column.to_string(),
            expected: "a string literal",
            actual: "numeric literal against a categorical column",
        }),
    }
}

fn eval_between(
    table: &Table,
    column: &str,
    lo: f64,
    hi: f64,
    negated: bool,
    zones: Option<&ZoneMaps>,
) -> Result<Bitmask> {
    let idx = table.index_of(column)?;
    let data = table.numeric(idx)?;
    let zones = zones.filter(|_| !lo.is_nan() && !hi.is_nan());
    Ok(scan_numeric(
        data,
        zones,
        idx,
        |s| s.skips_between(lo, hi, negated),
        |s| s.fills_between(lo, hi, negated),
        |x| !x.is_nan() && ((x >= lo && x <= hi) != negated),
    ))
}

fn eval_in(table: &Table, column: &str, values: &[Literal], negated: bool) -> Result<Bitmask> {
    let idx = table.index_of(column)?;
    let mut m = Bitmask::zeros(table.n_rows());
    if let Some(data) = table.column(idx).as_numeric() {
        let mut nums = Vec::with_capacity(values.len());
        for v in values {
            match v {
                Literal::Number(n) => nums.push(*n),
                Literal::Str(_) => {
                    return Err(StoreError::TypeMismatch {
                        column: column.to_string(),
                        expected: "numeric IN-list items",
                        actual: "string item against a numeric column",
                    })
                }
            }
        }
        for (i, &x) in data.iter().enumerate() {
            if x.is_nan() {
                continue;
            }
            let inside = nums.contains(&x);
            if inside != negated {
                m.set(i, true);
            }
        }
    } else {
        let (codes, _) = table.categorical(idx)?;
        let mut wanted = Vec::with_capacity(values.len());
        for v in values {
            match v {
                Literal::Str(s) => {
                    if let Some(code) = table.column(idx).code_of(s) {
                        wanted.push(code);
                    }
                }
                Literal::Number(_) => {
                    return Err(StoreError::TypeMismatch {
                        column: column.to_string(),
                        expected: "string IN-list items",
                        actual: "numeric item against a categorical column",
                    })
                }
            }
        }
        for (i, &c) in codes.iter().enumerate() {
            if c == NULL_CODE {
                continue;
            }
            let inside = wanted.contains(&c);
            if inside != negated {
                m.set(i, true);
            }
        }
    }
    Ok(m)
}

fn eval_is_null(table: &Table, column: &str, negated: bool) -> Result<Bitmask> {
    let idx = table.index_of(column)?;
    let mut m = Bitmask::zeros(table.n_rows());
    match table.column(idx).as_numeric() {
        Some(data) => {
            for (i, &x) in data.iter().enumerate() {
                if x.is_nan() != negated {
                    m.set(i, true);
                }
            }
        }
        None => {
            let (codes, _) = table.categorical(idx)?;
            for (i, &c) in codes.iter().enumerate() {
                if (c == NULL_CODE) != negated {
                    m.set(i, true);
                }
            }
        }
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;

    fn sample() -> Table {
        let mut b = TableBuilder::new();
        b.add_numeric("x", vec![1.0, 2.0, 3.0, f64::NAN, 5.0]);
        b.add_categorical(
            "color",
            vec![Some("red"), Some("blue"), None, Some("red"), Some("green")],
        );
        b.build().unwrap()
    }

    fn rows(m: &Bitmask) -> Vec<usize> {
        m.iter_ones().collect()
    }

    #[test]
    fn numeric_comparisons_skip_null() {
        let t = sample();
        assert_eq!(rows(&select(&t, "x > 1.5").unwrap()), vec![1, 2, 4]);
        assert_eq!(rows(&select(&t, "x <= 2").unwrap()), vec![0, 1]);
        // != also excludes NULL.
        assert_eq!(rows(&select(&t, "x != 3").unwrap()), vec![0, 1, 4]);
    }

    #[test]
    fn categorical_eq_ne() {
        let t = sample();
        assert_eq!(rows(&select(&t, "color = 'red'").unwrap()), vec![0, 3]);
        // != excludes NULLs.
        assert_eq!(rows(&select(&t, "color != 'red'").unwrap()), vec![1, 4]);
        // Unknown label matches nothing / everything-but-null.
        assert_eq!(
            rows(&select(&t, "color = 'violet'").unwrap()),
            Vec::<usize>::new()
        );
        assert_eq!(
            rows(&select(&t, "color != 'violet'").unwrap()),
            vec![0, 1, 3, 4]
        );
    }

    #[test]
    fn categorical_ordering_is_type_error() {
        let t = sample();
        assert!(matches!(
            select(&t, "color < 'red'"),
            Err(StoreError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn cross_type_literals_are_errors() {
        let t = sample();
        assert!(select(&t, "x = 'red'").is_err());
        assert!(select(&t, "color = 3").is_err());
        assert!(select(&t, "x IN ('a')").is_err());
        assert!(select(&t, "color IN (1)").is_err());
    }

    #[test]
    fn between_inclusive_and_negated() {
        let t = sample();
        assert_eq!(rows(&select(&t, "x BETWEEN 2 AND 3").unwrap()), vec![1, 2]);
        // NOT BETWEEN still excludes the NULL row.
        assert_eq!(
            rows(&select(&t, "x NOT BETWEEN 2 AND 3").unwrap()),
            vec![0, 4]
        );
    }

    #[test]
    fn in_lists() {
        let t = sample();
        assert_eq!(rows(&select(&t, "x IN (1, 5)").unwrap()), vec![0, 4]);
        assert_eq!(rows(&select(&t, "x NOT IN (1, 5)").unwrap()), vec![1, 2]);
        assert_eq!(
            rows(&select(&t, "color IN ('red', 'green')").unwrap()),
            vec![0, 3, 4]
        );
        assert_eq!(
            rows(&select(&t, "color NOT IN ('red', 'green')").unwrap()),
            vec![1]
        );
    }

    #[test]
    fn is_null_both_types() {
        let t = sample();
        assert_eq!(rows(&select(&t, "x IS NULL").unwrap()), vec![3]);
        assert_eq!(
            rows(&select(&t, "x IS NOT NULL").unwrap()),
            vec![0, 1, 2, 4]
        );
        assert_eq!(rows(&select(&t, "color IS NULL").unwrap()), vec![2]);
    }

    #[test]
    fn boolean_combinators() {
        let t = sample();
        assert_eq!(
            rows(&select(&t, "x > 1 AND color = 'red'").unwrap()),
            vec![3].into_iter().filter(|_| false).collect::<Vec<_>>()
        );
        // Row 0 is red with x=1; row 3 is red with x NULL.
        assert_eq!(
            rows(&select(&t, "x >= 1 AND color = 'red'").unwrap()),
            vec![0]
        );
        assert_eq!(
            rows(&select(&t, "x <= 1 OR color = 'green'").unwrap()),
            vec![0, 4]
        );
        // NOT is boolean complement (two-valued logic): NULL rows flip in.
        assert_eq!(rows(&select(&t, "NOT x > 1").unwrap()), vec![0, 3]);
    }

    #[test]
    fn constants() {
        let t = sample();
        assert_eq!(select(&t, "TRUE").unwrap().count_ones(), 5);
        assert_eq!(select(&t, "FALSE").unwrap().count_ones(), 0);
    }

    #[test]
    fn unknown_column_error() {
        let t = sample();
        assert!(matches!(
            select(&t, "zzz > 1"),
            Err(StoreError::UnknownColumn(_))
        ));
    }

    #[test]
    fn de_morgan_on_evaluation() {
        let t = sample();
        let lhs = select(&t, "NOT (x > 2 AND color = 'red')").unwrap();
        let rhs = select(&t, "NOT x > 2 OR NOT color = 'red'").unwrap();
        assert_eq!(lhs, rhs);
    }

    /// Multi-chunk table with clustered values so all three zone-map
    /// outcomes (skip, fill, scan) occur: the mapped evaluation must be
    /// bit-identical to the plain scan for every leaf shape.
    #[test]
    fn zone_mapped_evaluation_matches_plain_scan() {
        use crate::chunk::{ZoneMaps, CHUNK_ROWS};
        use std::sync::Arc;

        let n = 2 * CHUNK_ROWS + 1234;
        let mut b = TableBuilder::new();
        // Chunk 0 ranges 0..1000, chunk 1 ranges 2000..3000 (no nulls),
        // the tail chunk is all NULL — so a mid-range predicate skips,
        // fills, and scans depending on the chunk.
        b.add_numeric(
            "v",
            (0..n)
                .map(|i| {
                    if i >= 2 * CHUNK_ROWS {
                        f64::NAN
                    } else if i < CHUNK_ROWS {
                        (i % 1000) as f64
                    } else {
                        2000.0 + (i % 1000) as f64
                    }
                })
                .collect(),
        );
        let t = Arc::new(b.build().unwrap());
        let zones = ZoneMaps::new(Arc::clone(&t));
        for q in [
            "v > 1500",
            "v >= 2000",
            "v < 500",
            "v <= 0",
            "v = 2500",
            "v != 2500",
            "v BETWEEN 100 AND 2100",
            "v NOT BETWEEN 100 AND 2100",
            "v BETWEEN 0 AND 3000",
            "NOT v > 1500 AND v != 3",
        ] {
            let plain = select(&t, q).unwrap();
            let mapped = select_with(&t, q, Some(&zones)).unwrap();
            assert_eq!(plain, mapped, "query {q}");
        }
        let (skipped, filled, scanned) = zones.counters();
        assert!(skipped > 0, "no chunk was ever skipped");
        assert!(filled > 0, "no chunk was ever filled");
        assert!(scanned > 0, "no chunk was ever scanned");
    }

    /// Zone maps built for a *different* table are ignored, not trusted.
    #[test]
    fn mismatched_zone_maps_are_ignored() {
        use crate::chunk::ZoneMaps;
        use std::sync::Arc;
        let t = sample();
        let mut b = TableBuilder::new();
        b.add_numeric("x", vec![100.0, 200.0]);
        b.add_categorical("color", vec![Some("red"), Some("blue")]);
        let other = Arc::new(b.build().unwrap());
        let zones = ZoneMaps::new(other);
        // With the wrong-table maps trusted, "x > 50" would fill; the
        // evaluator must fall back to the real data.
        let m = select_with(&t, "x > 50", Some(&zones)).unwrap();
        assert_eq!(rows(&m), Vec::<usize>::new());
    }
}
