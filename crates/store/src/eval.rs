//! Vectorized predicate evaluation: `Expr × Table → Bitmask`.
//!
//! Evaluation is column-at-a-time in the MonetDB spirit: each leaf
//! predicate scans one column into a bitmask, and boolean combinators
//! operate on whole masks with word-wide operations.
//!
//! NULL semantics are two-valued (documented in [`crate::expr`]): any
//! comparison, `IN`, or `BETWEEN` against a NULL evaluates to false;
//! `IS NULL` / `IS NOT NULL` test NULL-ness explicitly.

use crate::column::NULL_CODE;
use crate::error::{Result, StoreError};
use crate::expr::{CmpOp, Expr, Literal};
use crate::mask::Bitmask;
use crate::table::Table;

/// Evaluates a predicate over a table, producing the selection mask.
pub fn evaluate(expr: &Expr, table: &Table) -> Result<Bitmask> {
    match expr {
        Expr::Const(b) => Ok(if *b {
            Bitmask::ones(table.n_rows())
        } else {
            Bitmask::zeros(table.n_rows())
        }),
        Expr::And(a, b) => {
            let mut left = evaluate(a, table)?;
            let right = evaluate(b, table)?;
            left.and_assign(&right);
            Ok(left)
        }
        Expr::Or(a, b) => {
            let mut left = evaluate(a, table)?;
            let right = evaluate(b, table)?;
            left.or_assign(&right);
            Ok(left)
        }
        Expr::Not(inner) => {
            let mut m = evaluate(inner, table)?;
            m.not_assign();
            Ok(m)
        }
        Expr::Cmp { column, op, value } => eval_cmp(table, column, *op, value),
        Expr::Between {
            column,
            lo,
            hi,
            negated,
        } => eval_between(table, column, *lo, *hi, *negated),
        Expr::InList {
            column,
            values,
            negated,
        } => eval_in(table, column, values, *negated),
        Expr::IsNull { column, negated } => eval_is_null(table, column, *negated),
    }
}

/// Parses and evaluates predicate text in one call.
pub fn select(table: &Table, predicate: &str) -> Result<Bitmask> {
    let expr = crate::parse::parse_predicate(predicate)?;
    evaluate(&expr, table)
}

fn eval_cmp(table: &Table, column: &str, op: CmpOp, value: &Literal) -> Result<Bitmask> {
    let idx = table.index_of(column)?;
    match (table.column(idx).as_numeric(), value) {
        (Some(data), Literal::Number(rhs)) => {
            let mut m = Bitmask::zeros(table.n_rows());
            for (i, &x) in data.iter().enumerate() {
                // NaN (NULL) fails every comparison including !=.
                if !x.is_nan() && op.eval_f64(x, *rhs) {
                    m.set(i, true);
                }
            }
            Ok(m)
        }
        (Some(_), Literal::Str(_)) => Err(StoreError::TypeMismatch {
            column: column.to_string(),
            expected: "a numeric literal",
            actual: "string literal against a numeric column",
        }),
        (None, Literal::Str(rhs)) => {
            let (codes, _) = table.categorical(idx)?;
            let code = table.column(idx).code_of(rhs);
            let mut m = Bitmask::zeros(table.n_rows());
            match op {
                CmpOp::Eq => {
                    if let Some(code) = code {
                        for (i, &c) in codes.iter().enumerate() {
                            if c == code {
                                m.set(i, true);
                            }
                        }
                    }
                }
                CmpOp::Ne => {
                    for (i, &c) in codes.iter().enumerate() {
                        if c != NULL_CODE && Some(c) != code {
                            m.set(i, true);
                        }
                    }
                }
                _ => {
                    return Err(StoreError::TypeMismatch {
                        column: column.to_string(),
                        expected: "= or != for categorical comparisons",
                        actual: "an ordering operator",
                    })
                }
            }
            Ok(m)
        }
        (None, Literal::Number(_)) => Err(StoreError::TypeMismatch {
            column: column.to_string(),
            expected: "a string literal",
            actual: "numeric literal against a categorical column",
        }),
    }
}

fn eval_between(table: &Table, column: &str, lo: f64, hi: f64, negated: bool) -> Result<Bitmask> {
    let idx = table.index_of(column)?;
    let data = table.numeric(idx)?;
    let mut m = Bitmask::zeros(table.n_rows());
    for (i, &x) in data.iter().enumerate() {
        if x.is_nan() {
            continue;
        }
        let inside = x >= lo && x <= hi;
        if inside != negated {
            m.set(i, true);
        }
    }
    Ok(m)
}

fn eval_in(table: &Table, column: &str, values: &[Literal], negated: bool) -> Result<Bitmask> {
    let idx = table.index_of(column)?;
    let mut m = Bitmask::zeros(table.n_rows());
    if let Some(data) = table.column(idx).as_numeric() {
        let mut nums = Vec::with_capacity(values.len());
        for v in values {
            match v {
                Literal::Number(n) => nums.push(*n),
                Literal::Str(_) => {
                    return Err(StoreError::TypeMismatch {
                        column: column.to_string(),
                        expected: "numeric IN-list items",
                        actual: "string item against a numeric column",
                    })
                }
            }
        }
        for (i, &x) in data.iter().enumerate() {
            if x.is_nan() {
                continue;
            }
            let inside = nums.contains(&x);
            if inside != negated {
                m.set(i, true);
            }
        }
    } else {
        let (codes, _) = table.categorical(idx)?;
        let mut wanted = Vec::with_capacity(values.len());
        for v in values {
            match v {
                Literal::Str(s) => {
                    if let Some(code) = table.column(idx).code_of(s) {
                        wanted.push(code);
                    }
                }
                Literal::Number(_) => {
                    return Err(StoreError::TypeMismatch {
                        column: column.to_string(),
                        expected: "string IN-list items",
                        actual: "numeric item against a categorical column",
                    })
                }
            }
        }
        for (i, &c) in codes.iter().enumerate() {
            if c == NULL_CODE {
                continue;
            }
            let inside = wanted.contains(&c);
            if inside != negated {
                m.set(i, true);
            }
        }
    }
    Ok(m)
}

fn eval_is_null(table: &Table, column: &str, negated: bool) -> Result<Bitmask> {
    let idx = table.index_of(column)?;
    let mut m = Bitmask::zeros(table.n_rows());
    match table.column(idx).as_numeric() {
        Some(data) => {
            for (i, &x) in data.iter().enumerate() {
                if x.is_nan() != negated {
                    m.set(i, true);
                }
            }
        }
        None => {
            let (codes, _) = table.categorical(idx)?;
            for (i, &c) in codes.iter().enumerate() {
                if (c == NULL_CODE) != negated {
                    m.set(i, true);
                }
            }
        }
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;

    fn sample() -> Table {
        let mut b = TableBuilder::new();
        b.add_numeric("x", vec![1.0, 2.0, 3.0, f64::NAN, 5.0]);
        b.add_categorical(
            "color",
            vec![Some("red"), Some("blue"), None, Some("red"), Some("green")],
        );
        b.build().unwrap()
    }

    fn rows(m: &Bitmask) -> Vec<usize> {
        m.iter_ones().collect()
    }

    #[test]
    fn numeric_comparisons_skip_null() {
        let t = sample();
        assert_eq!(rows(&select(&t, "x > 1.5").unwrap()), vec![1, 2, 4]);
        assert_eq!(rows(&select(&t, "x <= 2").unwrap()), vec![0, 1]);
        // != also excludes NULL.
        assert_eq!(rows(&select(&t, "x != 3").unwrap()), vec![0, 1, 4]);
    }

    #[test]
    fn categorical_eq_ne() {
        let t = sample();
        assert_eq!(rows(&select(&t, "color = 'red'").unwrap()), vec![0, 3]);
        // != excludes NULLs.
        assert_eq!(rows(&select(&t, "color != 'red'").unwrap()), vec![1, 4]);
        // Unknown label matches nothing / everything-but-null.
        assert_eq!(
            rows(&select(&t, "color = 'violet'").unwrap()),
            Vec::<usize>::new()
        );
        assert_eq!(
            rows(&select(&t, "color != 'violet'").unwrap()),
            vec![0, 1, 3, 4]
        );
    }

    #[test]
    fn categorical_ordering_is_type_error() {
        let t = sample();
        assert!(matches!(
            select(&t, "color < 'red'"),
            Err(StoreError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn cross_type_literals_are_errors() {
        let t = sample();
        assert!(select(&t, "x = 'red'").is_err());
        assert!(select(&t, "color = 3").is_err());
        assert!(select(&t, "x IN ('a')").is_err());
        assert!(select(&t, "color IN (1)").is_err());
    }

    #[test]
    fn between_inclusive_and_negated() {
        let t = sample();
        assert_eq!(rows(&select(&t, "x BETWEEN 2 AND 3").unwrap()), vec![1, 2]);
        // NOT BETWEEN still excludes the NULL row.
        assert_eq!(
            rows(&select(&t, "x NOT BETWEEN 2 AND 3").unwrap()),
            vec![0, 4]
        );
    }

    #[test]
    fn in_lists() {
        let t = sample();
        assert_eq!(rows(&select(&t, "x IN (1, 5)").unwrap()), vec![0, 4]);
        assert_eq!(rows(&select(&t, "x NOT IN (1, 5)").unwrap()), vec![1, 2]);
        assert_eq!(
            rows(&select(&t, "color IN ('red', 'green')").unwrap()),
            vec![0, 3, 4]
        );
        assert_eq!(
            rows(&select(&t, "color NOT IN ('red', 'green')").unwrap()),
            vec![1]
        );
    }

    #[test]
    fn is_null_both_types() {
        let t = sample();
        assert_eq!(rows(&select(&t, "x IS NULL").unwrap()), vec![3]);
        assert_eq!(
            rows(&select(&t, "x IS NOT NULL").unwrap()),
            vec![0, 1, 2, 4]
        );
        assert_eq!(rows(&select(&t, "color IS NULL").unwrap()), vec![2]);
    }

    #[test]
    fn boolean_combinators() {
        let t = sample();
        assert_eq!(
            rows(&select(&t, "x > 1 AND color = 'red'").unwrap()),
            vec![3].into_iter().filter(|_| false).collect::<Vec<_>>()
        );
        // Row 0 is red with x=1; row 3 is red with x NULL.
        assert_eq!(
            rows(&select(&t, "x >= 1 AND color = 'red'").unwrap()),
            vec![0]
        );
        assert_eq!(
            rows(&select(&t, "x <= 1 OR color = 'green'").unwrap()),
            vec![0, 4]
        );
        // NOT is boolean complement (two-valued logic): NULL rows flip in.
        assert_eq!(rows(&select(&t, "NOT x > 1").unwrap()), vec![0, 3]);
    }

    #[test]
    fn constants() {
        let t = sample();
        assert_eq!(select(&t, "TRUE").unwrap().count_ones(), 5);
        assert_eq!(select(&t, "FALSE").unwrap().count_ones(), 0);
    }

    #[test]
    fn unknown_column_error() {
        let t = sample();
        assert!(matches!(
            select(&t, "zzz > 1"),
            Err(StoreError::UnknownColumn(_))
        ));
    }

    #[test]
    fn de_morgan_on_evaluation() {
        let t = sample();
        let lhs = select(&t, "NOT (x > 2 AND color = 'red')").unwrap();
        let rhs = select(&t, "NOT x > 2 OR NOT color = 'red'").unwrap();
        assert_eq!(lhs, rhs);
    }
}
