//! Packed row-selection bitmasks.
//!
//! The result of evaluating a predicate is a [`Bitmask`]: one bit per row,
//! set when the row belongs to the user's selection. This is the concrete
//! realization of the paper's `Cᴵ` / `Cᴼ` split — the selection is the set
//! bits, the complement the clear bits.
//!
//! The packed `u64` words are exposed directly ([`Bitmask::words`],
//! [`Bitmask::blocks`]) so statistics kernels can process 64 rows per
//! word instead of walking set bits one row at a time. Invariant relied
//! on throughout: bits at positions `>= len` in the last word are always
//! zero, so the words are a canonical representation — equality, hashing
//! and the word-wise kernels never see ghost tail bits.

use std::hash::{Hash, Hasher};

use serde::{Deserialize, Serialize};

/// A fixed-length packed bitmask over table rows.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bitmask {
    words: Vec<u64>,
    len: usize,
}

impl Bitmask {
    /// All-clear mask of `len` rows.
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// All-set mask of `len` rows.
    pub fn ones(len: usize) -> Self {
        let mut m = Self {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        m.clear_tail();
        m
    }

    /// Builds a mask from a per-row predicate.
    pub fn from_fn(len: usize, f: impl Fn(usize) -> bool) -> Self {
        let mut m = Self::zeros(len);
        for i in 0..len {
            if f(i) {
                m.set(i, true);
            }
        }
        m
    }

    /// Builds a mask from an iterator of booleans in a single pass: bits
    /// are packed into words as they stream in, with no intermediate
    /// `Vec<bool>` and no per-bit index arithmetic.
    pub fn from_bools(bools: impl IntoIterator<Item = bool>) -> Self {
        let mut words: Vec<u64> = Vec::new();
        let mut current = 0u64;
        let mut len = 0usize;
        for b in bools {
            current |= (b as u64) << (len % 64);
            len += 1;
            if len.is_multiple_of(64) {
                words.push(current);
                current = 0;
            }
        }
        if !len.is_multiple_of(64) {
            words.push(current);
        }
        Self { words, len }
    }

    fn clear_tail(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// Number of rows covered by the mask.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the mask covers no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`; panics when out of range.
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of range for mask of {} rows",
            self.len
        );
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Writes bit `i`; panics when out of range.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(
            i < self.len,
            "bit index {i} out of range for mask of {} rows",
            self.len
        );
        if value {
            self.words[i / 64] |= 1u64 << (i % 64);
        } else {
            self.words[i / 64] &= !(1u64 << (i % 64));
        }
    }

    /// Number of set bits (selection size).
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Sets every bit in `[start, end)` — the zone-map *fill* fast
    /// path, which marks a whole proven-hot chunk without per-row
    /// writes. Panics when the range is inverted or out of bounds.
    pub fn set_range(&mut self, start: usize, end: usize) {
        assert!(
            start <= end && end <= self.len,
            "range {start}..{end} out of bounds for mask of {} rows",
            self.len
        );
        if start == end {
            return;
        }
        let (first_word, first_bit) = (start / 64, start % 64);
        let (last_word, last_bit) = ((end - 1) / 64, (end - 1) % 64);
        // Bits `first_bit..=63` of the first word, `0..=last_bit` of
        // the last; everything between is a full word.
        let lo_mask = u64::MAX << first_bit;
        let hi_mask = u64::MAX >> (63 - last_bit);
        if first_word == last_word {
            self.words[first_word] |= lo_mask & hi_mask;
            return;
        }
        self.words[first_word] |= lo_mask;
        for w in &mut self.words[first_word + 1..last_word] {
            *w = u64::MAX;
        }
        self.words[last_word] |= hi_mask;
    }

    /// In-place intersection. Panics on length mismatch.
    pub fn and_assign(&mut self, other: &Bitmask) {
        assert_eq!(self.len, other.len, "mask length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place union. Panics on length mismatch.
    pub fn or_assign(&mut self, other: &Bitmask) {
        assert_eq!(self.len, other.len, "mask length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place complement over the mask's row range.
    pub fn not_assign(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.clear_tail();
    }

    /// Returns the complement as a new mask.
    pub fn complement(&self) -> Bitmask {
        let mut m = self.clone();
        m.not_assign();
        m
    }

    /// The packed words, 64 rows per word, least-significant bit first.
    /// Bits at positions `>= len` in the last word are guaranteed zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Iterates over `(word_index, word)` pairs — the raw word stream for
    /// word-wise kernels. Row `word_index * 64 + bit` is selected when
    /// `word >> bit & 1` is set.
    pub fn iter_words(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.words.iter().copied().enumerate()
    }

    /// Iterates over the *non-empty* blocks of the mask as
    /// `(base_row, word)` pairs: 64 rows starting at `base_row`, with
    /// all-zero words skipped. This is the sparse-friendly entry point for
    /// masked scans — a selective predicate visits only the blocks it
    /// touches.
    pub fn blocks(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.iter_words()
            .filter(|&(_, w)| w != 0)
            .map(|(wi, w)| (wi * 64, w))
    }

    /// A 64-bit fingerprint of the mask: its length mixed with every
    /// word. Equal masks always have equal fingerprints; the converse
    /// holds only probabilistically, so callers keying storage by
    /// fingerprint must confirm with full equality (see
    /// [`crate::cache::PreparedCache`]).
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over the words, seeded with the length. The tail-word
        // invariant (bits >= len are zero) makes this canonical.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ (self.len as u64);
        for &w in &self.words {
            h ^= w;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Final avalanche so single-bit mask differences diffuse.
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        h
    }

    /// Iterates over the indices of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }

    /// Fraction of rows selected; NaN for an empty mask.
    pub fn selectivity(&self) -> f64 {
        if self.len == 0 {
            f64::NAN
        } else {
            self.count_ones() as f64 / self.len as f64
        }
    }
}

// Hashes the canonical word representation, consistent with the derived
// `PartialEq`/`Eq` (same words + same len ⇔ equal). Lets masks key hash
// maps directly, e.g. the per-query `PreparedCache`.
impl Hash for Bitmask {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.fingerprint());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = Bitmask::zeros(70);
        assert_eq!(z.count_ones(), 0);
        assert_eq!(z.len(), 70);
        let o = Bitmask::ones(70);
        assert_eq!(o.count_ones(), 70);
        assert!(o.get(69));
    }

    #[test]
    fn ones_clears_tail_bits() {
        // Tail bits beyond len must not leak into count_ones.
        let o = Bitmask::ones(3);
        assert_eq!(o.count_ones(), 3);
        let mut c = o.clone();
        c.not_assign();
        assert_eq!(c.count_ones(), 0);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut m = Bitmask::zeros(130);
        m.set(0, true);
        m.set(64, true);
        m.set(129, true);
        assert!(m.get(0) && m.get(64) && m.get(129));
        assert!(!m.get(1) && !m.get(63) && !m.get(128));
        m.set(64, false);
        assert!(!m.get(64));
        assert_eq!(m.count_ones(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        Bitmask::zeros(10).get(10);
    }

    #[test]
    fn boolean_algebra() {
        let a = Bitmask::from_bools([true, true, false, false]);
        let b = Bitmask::from_bools([true, false, true, false]);
        let mut and = a.clone();
        and.and_assign(&b);
        assert_eq!(and, Bitmask::from_bools([true, false, false, false]));
        let mut or = a.clone();
        or.or_assign(&b);
        assert_eq!(or, Bitmask::from_bools([true, true, true, false]));
        assert_eq!(
            a.complement(),
            Bitmask::from_bools([false, false, true, true])
        );
    }

    #[test]
    fn de_morgan() {
        let a = Bitmask::from_fn(100, |i| i % 3 == 0);
        let b = Bitmask::from_fn(100, |i| i % 5 == 0);
        // ¬(a ∧ b) = ¬a ∨ ¬b.
        let mut lhs = a.clone();
        lhs.and_assign(&b);
        lhs.not_assign();
        let mut rhs = a.complement();
        rhs.or_assign(&b.complement());
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn iter_ones_matches_get() {
        let m = Bitmask::from_fn(200, |i| i % 7 == 2);
        let ones: Vec<usize> = m.iter_ones().collect();
        let expected: Vec<usize> = (0..200).filter(|i| i % 7 == 2).collect();
        assert_eq!(ones, expected);
    }

    #[test]
    fn selectivity() {
        let m = Bitmask::from_fn(10, |i| i < 3);
        assert!((m.selectivity() - 0.3).abs() < 1e-12);
        assert!(Bitmask::zeros(0).selectivity().is_nan());
    }

    /// Tail bits beyond `len` must stay zero through every constructor
    /// and mutator — the word-wise kernels and the fingerprint both rely
    /// on the canonical representation.
    #[test]
    fn tail_bits_stay_clear_after_set_and_ones() {
        for len in [1usize, 3, 63, 65, 70, 127, 130] {
            let tail_clean = |m: &Bitmask| {
                let rem = len % 64;
                rem == 0 || m.words().last().unwrap() >> rem == 0
            };
            let o = Bitmask::ones(len);
            assert!(tail_clean(&o), "ones({len}) leaked tail bits");
            let mut m = Bitmask::zeros(len);
            for i in 0..len {
                m.set(i, true);
            }
            assert!(tail_clean(&m), "set-all({len}) leaked tail bits");
            assert_eq!(m, o, "set-all must equal ones for len {len}");
            m.set(len - 1, false);
            m.not_assign();
            assert!(tail_clean(&m), "not_assign({len}) leaked tail bits");
            assert_eq!(m.count_ones(), 1);
            let b = Bitmask::from_bools((0..len).map(|_| true));
            assert!(tail_clean(&b), "from_bools({len}) leaked tail bits");
            assert_eq!(b, o);
        }
    }

    #[test]
    fn from_bools_single_pass_matches_from_fn() {
        for len in [0usize, 1, 64, 65, 100, 200] {
            let pattern = |i: usize| (i * 31 + 7) % 5 < 2;
            let via_bools = Bitmask::from_bools((0..len).map(pattern));
            let via_fn = Bitmask::from_fn(len, pattern);
            assert_eq!(via_bools, via_fn, "len {len}");
            assert_eq!(via_bools.len(), len);
        }
    }

    #[test]
    fn words_and_blocks_expose_packed_bits() {
        let m = Bitmask::from_fn(130, |i| i == 1 || i == 64 || i == 129);
        assert_eq!(m.words(), &[2u64, 1, 2]);
        let words: Vec<(usize, u64)> = m.iter_words().collect();
        assert_eq!(words, vec![(0, 2u64), (1, 1), (2, 2)]);
        // blocks() skips all-zero words and reports base rows.
        let sparse = Bitmask::from_fn(300, |i| i == 170);
        let blocks: Vec<(usize, u64)> = sparse.blocks().collect();
        assert_eq!(blocks, vec![(128, 1u64 << 42)]);
        assert!(Bitmask::zeros(500).blocks().next().is_none());
    }

    #[test]
    fn fingerprint_distinguishes_masks() {
        // Equal masks agree…
        let a = Bitmask::from_fn(200, |i| i % 3 == 0);
        let b = Bitmask::from_fn(200, |i| i % 3 == 0);
        assert_eq!(a.fingerprint(), b.fingerprint());
        // …different masks with the same popcount differ (the
        // fingerprint must see *which* rows, not just how many)…
        let shifted = Bitmask::from_fn(200, |i| i % 3 == 1);
        assert_eq!(a.count_ones(), shifted.count_ones());
        assert_ne!(a.fingerprint(), shifted.fingerprint());
        // …and length participates even when the words are identical.
        let m64 = Bitmask::zeros(64);
        let m65 = Bitmask::zeros(65);
        assert_ne!(m64.fingerprint(), m65.fingerprint());
    }

    #[test]
    fn set_range_matches_per_bit_sets() {
        for len in [1usize, 63, 64, 65, 130, 300] {
            for (start, end) in [(0, 0), (0, 1), (0, len), (len / 3, 2 * len / 3), (len, len)] {
                let mut fast = Bitmask::zeros(len);
                fast.set_range(start, end);
                let mut slow = Bitmask::zeros(len);
                for i in start..end {
                    slow.set(i, true);
                }
                assert_eq!(fast, slow, "len {len} range {start}..{end}");
                let rem = len % 64;
                assert!(
                    rem == 0 || fast.words().last().unwrap() >> rem == 0,
                    "set_range leaked tail bits (len {len}, {start}..{end})"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn set_range_rejects_overflow() {
        Bitmask::zeros(10).set_range(5, 11);
    }

    #[test]
    fn complement_partitions_rows() {
        let m = Bitmask::from_fn(97, |i| i % 2 == 0);
        let c = m.complement();
        assert_eq!(m.count_ones() + c.count_ones(), 97);
        let mut overlap = m.clone();
        overlap.and_assign(&c);
        assert_eq!(overlap.count_ones(), 0);
    }
}
