//! Packed row-selection bitmasks.
//!
//! The result of evaluating a predicate is a [`Bitmask`]: one bit per row,
//! set when the row belongs to the user's selection. This is the concrete
//! realization of the paper's `Cᴵ` / `Cᴼ` split — the selection is the set
//! bits, the complement the clear bits.

use serde::{Deserialize, Serialize};

/// A fixed-length packed bitmask over table rows.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bitmask {
    words: Vec<u64>,
    len: usize,
}

impl Bitmask {
    /// All-clear mask of `len` rows.
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// All-set mask of `len` rows.
    pub fn ones(len: usize) -> Self {
        let mut m = Self {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        m.clear_tail();
        m
    }

    /// Builds a mask from a per-row predicate.
    pub fn from_fn(len: usize, f: impl Fn(usize) -> bool) -> Self {
        let mut m = Self::zeros(len);
        for i in 0..len {
            if f(i) {
                m.set(i, true);
            }
        }
        m
    }

    /// Builds a mask from an iterator of booleans.
    pub fn from_bools(bools: impl IntoIterator<Item = bool>) -> Self {
        let bools: Vec<bool> = bools.into_iter().collect();
        Self::from_fn(bools.len(), |i| bools[i])
    }

    fn clear_tail(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// Number of rows covered by the mask.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the mask covers no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`; panics when out of range.
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of range for mask of {} rows",
            self.len
        );
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Writes bit `i`; panics when out of range.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(
            i < self.len,
            "bit index {i} out of range for mask of {} rows",
            self.len
        );
        if value {
            self.words[i / 64] |= 1u64 << (i % 64);
        } else {
            self.words[i / 64] &= !(1u64 << (i % 64));
        }
    }

    /// Number of set bits (selection size).
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// In-place intersection. Panics on length mismatch.
    pub fn and_assign(&mut self, other: &Bitmask) {
        assert_eq!(self.len, other.len, "mask length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place union. Panics on length mismatch.
    pub fn or_assign(&mut self, other: &Bitmask) {
        assert_eq!(self.len, other.len, "mask length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place complement over the mask's row range.
    pub fn not_assign(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.clear_tail();
    }

    /// Returns the complement as a new mask.
    pub fn complement(&self) -> Bitmask {
        let mut m = self.clone();
        m.not_assign();
        m
    }

    /// Iterates over the indices of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }

    /// Fraction of rows selected; NaN for an empty mask.
    pub fn selectivity(&self) -> f64 {
        if self.len == 0 {
            f64::NAN
        } else {
            self.count_ones() as f64 / self.len as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = Bitmask::zeros(70);
        assert_eq!(z.count_ones(), 0);
        assert_eq!(z.len(), 70);
        let o = Bitmask::ones(70);
        assert_eq!(o.count_ones(), 70);
        assert!(o.get(69));
    }

    #[test]
    fn ones_clears_tail_bits() {
        // Tail bits beyond len must not leak into count_ones.
        let o = Bitmask::ones(3);
        assert_eq!(o.count_ones(), 3);
        let mut c = o.clone();
        c.not_assign();
        assert_eq!(c.count_ones(), 0);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut m = Bitmask::zeros(130);
        m.set(0, true);
        m.set(64, true);
        m.set(129, true);
        assert!(m.get(0) && m.get(64) && m.get(129));
        assert!(!m.get(1) && !m.get(63) && !m.get(128));
        m.set(64, false);
        assert!(!m.get(64));
        assert_eq!(m.count_ones(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        Bitmask::zeros(10).get(10);
    }

    #[test]
    fn boolean_algebra() {
        let a = Bitmask::from_bools([true, true, false, false]);
        let b = Bitmask::from_bools([true, false, true, false]);
        let mut and = a.clone();
        and.and_assign(&b);
        assert_eq!(and, Bitmask::from_bools([true, false, false, false]));
        let mut or = a.clone();
        or.or_assign(&b);
        assert_eq!(or, Bitmask::from_bools([true, true, true, false]));
        assert_eq!(
            a.complement(),
            Bitmask::from_bools([false, false, true, true])
        );
    }

    #[test]
    fn de_morgan() {
        let a = Bitmask::from_fn(100, |i| i % 3 == 0);
        let b = Bitmask::from_fn(100, |i| i % 5 == 0);
        // ¬(a ∧ b) = ¬a ∨ ¬b.
        let mut lhs = a.clone();
        lhs.and_assign(&b);
        lhs.not_assign();
        let mut rhs = a.complement();
        rhs.or_assign(&b.complement());
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn iter_ones_matches_get() {
        let m = Bitmask::from_fn(200, |i| i % 7 == 2);
        let ones: Vec<usize> = m.iter_ones().collect();
        let expected: Vec<usize> = (0..200).filter(|i| i % 7 == 2).collect();
        assert_eq!(ones, expected);
    }

    #[test]
    fn selectivity() {
        let m = Bitmask::from_fn(10, |i| i < 3);
        assert!((m.selectivity() - 0.3).abs() < 1e-12);
        assert!(Bitmask::zeros(0).selectivity().is_nan());
    }

    #[test]
    fn complement_partitions_rows() {
        let m = Bitmask::from_fn(97, |i| i % 2 == 0);
        let c = m.complement();
        assert_eq!(m.count_ones() + c.count_ones(), 97);
        let mut overlap = m.clone();
        overlap.and_assign(&c);
        assert_eq!(overlap.count_ones(), 0);
    }
}
