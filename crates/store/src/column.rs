//! Columnar data representation.
//!
//! Numeric columns are plain `Vec<f64>` with NaN as the NULL encoding —
//! the same trick MonetDB-style engines use to keep scans branch-light.
//! Categorical columns are dictionary-encoded: a label table plus per-row
//! codes (`u32::MAX` reserved as the NULL code).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Reserved categorical code for NULL.
pub const NULL_CODE: u32 = u32::MAX;

/// A single typed column of data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Column {
    /// Continuous values; NaN encodes NULL.
    Numeric(Vec<f64>),
    /// Dictionary-encoded categories.
    Categorical {
        /// Per-row dictionary codes; [`NULL_CODE`] encodes NULL.
        codes: Vec<u32>,
        /// Code → label dictionary.
        labels: Vec<String>,
    },
}

impl Column {
    /// Builds a categorical column from string-ish values (None = NULL),
    /// assigning dictionary codes in first-appearance order.
    pub fn categorical_from<I, S>(values: I) -> Self
    where
        I: IntoIterator<Item = Option<S>>,
        S: AsRef<str>,
    {
        let mut labels: Vec<String> = Vec::new();
        let mut index: HashMap<String, u32> = HashMap::new();
        let mut codes = Vec::new();
        for v in values {
            match v {
                None => codes.push(NULL_CODE),
                Some(s) => {
                    let s = s.as_ref();
                    let code = *index.entry(s.to_string()).or_insert_with(|| {
                        labels.push(s.to_string());
                        (labels.len() - 1) as u32
                    });
                    codes.push(code);
                }
            }
        }
        Column::Categorical { codes, labels }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Numeric(v) => v.len(),
            Column::Categorical { codes, .. } => codes.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of NULL entries.
    pub fn null_count(&self) -> usize {
        match self {
            Column::Numeric(v) => v.iter().filter(|x| x.is_nan()).count(),
            Column::Categorical { codes, .. } => codes.iter().filter(|&&c| c == NULL_CODE).count(),
        }
    }

    /// Numeric values when this is a numeric column.
    pub fn as_numeric(&self) -> Option<&[f64]> {
        match self {
            Column::Numeric(v) => Some(v),
            _ => None,
        }
    }

    /// `(codes, labels)` when this is a categorical column.
    pub fn as_categorical(&self) -> Option<(&[u32], &[String])> {
        match self {
            Column::Categorical { codes, labels } => Some((codes, labels)),
            _ => None,
        }
    }

    /// Dictionary cardinality (0 for numeric columns).
    pub fn cardinality(&self) -> usize {
        match self {
            Column::Numeric(_) => 0,
            Column::Categorical { labels, .. } => labels.len(),
        }
    }

    /// Categorical code of `label`, if present in the dictionary.
    pub fn code_of(&self, label: &str) -> Option<u32> {
        match self {
            Column::Numeric(_) => None,
            Column::Categorical { labels, .. } => {
                labels.iter().position(|l| l == label).map(|i| i as u32)
            }
        }
    }

    /// Row `i` rendered for display (`NULL` for nulls, the label for
    /// categoricals, shortest-round-trip float for numerics).
    pub fn display_value(&self, i: usize) -> String {
        match self {
            Column::Numeric(v) => {
                let x = v[i];
                if x.is_nan() {
                    "NULL".to_string()
                } else {
                    format!("{x}")
                }
            }
            Column::Categorical { codes, labels } => {
                let c = codes[i];
                if c == NULL_CODE {
                    "NULL".to_string()
                } else {
                    labels[c as usize].clone()
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categorical_dictionary_in_first_appearance_order() {
        let c = Column::categorical_from(vec![Some("b"), Some("a"), Some("b"), None]);
        let (codes, labels) = c.as_categorical().unwrap();
        assert_eq!(labels, &["b".to_string(), "a".to_string()]);
        assert_eq!(codes, &[0, 1, 0, NULL_CODE]);
    }

    #[test]
    fn null_counts() {
        let n = Column::Numeric(vec![1.0, f64::NAN, 3.0]);
        assert_eq!(n.null_count(), 1);
        let c = Column::categorical_from(vec![None::<&str>, None, Some("x")]);
        assert_eq!(c.null_count(), 2);
    }

    #[test]
    fn type_accessors() {
        let n = Column::Numeric(vec![1.0]);
        assert!(n.as_numeric().is_some());
        assert!(n.as_categorical().is_none());
        assert_eq!(n.cardinality(), 0);
        let c = Column::categorical_from(vec![Some("x"), Some("y")]);
        assert!(c.as_numeric().is_none());
        assert_eq!(c.cardinality(), 2);
    }

    #[test]
    fn code_lookup() {
        let c = Column::categorical_from(vec![Some("red"), Some("blue")]);
        assert_eq!(c.code_of("red"), Some(0));
        assert_eq!(c.code_of("blue"), Some(1));
        assert_eq!(c.code_of("green"), None);
        assert_eq!(Column::Numeric(vec![]).code_of("red"), None);
    }

    #[test]
    fn display_values() {
        let n = Column::Numeric(vec![1.5, f64::NAN]);
        assert_eq!(n.display_value(0), "1.5");
        assert_eq!(n.display_value(1), "NULL");
        let c = Column::categorical_from(vec![Some("hi"), None]);
        assert_eq!(c.display_value(0), "hi");
        assert_eq!(c.display_value(1), "NULL");
    }

    #[test]
    fn len_and_empty() {
        assert_eq!(Column::Numeric(vec![]).len(), 0);
        assert!(Column::Numeric(vec![]).is_empty());
        assert_eq!(Column::categorical_from(vec![Some("a")]).len(), 1);
    }
}
