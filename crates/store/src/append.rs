//! Incremental row append: extend an immutable [`Table`] with headerless
//! CSV rows, schema-directed.
//!
//! Tables are immutable (every cache layer above the store freezes
//! derived artifacts against one table identity), so an append builds a
//! *new* table that shares nothing mutable with the old one. The
//! contract that makes incremental maintenance sound everywhere else —
//! replay, repair, replication — is **rebuild equivalence**:
//!
//! > appending rows to a CSV-ingested table produces exactly the table
//! > a full re-ingest of `old CSV ++ appended rows` would produce.
//!
//! Cell semantics therefore mirror [`crate::csv::read_csv_str`] verbatim
//! (trimming, NULL tokens, finite-`f64` numerics, dictionary codes in
//! first-appearance order). The one thing an append may *not* do is
//! change a column's inferred type: a non-numeric cell landing in a
//! numeric column — or a batch that would tip an all-numeric
//! low-cardinality categorical column over the inference bound — would
//! make the combined re-ingest disagree with the incremental table, so
//! those rows are rejected up front and the table is left untouched.

use crate::column::{Column, NULL_CODE};
use crate::csv::{parse_records, CsvOptions};
use crate::error::{Result, StoreError};
use crate::schema::ColumnType;
use crate::table::{Table, TableBuilder};

/// The numeric-cell criterion of CSV inference: parses as a *finite*
/// `f64` (`inf`/`NaN` spellings are text, not numbers).
fn parses_numeric(s: &str) -> bool {
    s.parse::<f64>().map(|v| v.is_finite()).unwrap_or(false)
}

/// Appends headerless CSV `rows_text` to `table`, returning the new
/// table. Errors (ragged rows, empty input, type-flipping cells) leave
/// no trace — the input table is untouched either way.
pub fn append_rows_csv(table: &Table, rows_text: &str, options: &CsvOptions) -> Result<Table> {
    let records = parse_records(rows_text, options.delimiter)?;
    if records.is_empty() {
        return Err(StoreError::Csv {
            line: 1,
            message: "append body contains no rows".into(),
        });
    }
    let n_cols = table.n_cols();
    for (i, rec) in records.iter().enumerate() {
        if rec.len() != n_cols {
            return Err(StoreError::Csv {
                line: i + 1,
                message: format!("expected {n_cols} fields, found {}", rec.len()),
            });
        }
    }
    let is_null = |s: &str| s.is_empty() || options.null_tokens.iter().any(|t| t == s);

    let mut builder = TableBuilder::new();
    for c in 0..n_cols {
        let meta = table
            .schema()
            .column(c)
            .expect("column index in range")
            .clone();
        let cells: Vec<&str> = records.iter().map(|r| r[c].trim()).collect();
        let column = match meta.ctype {
            ColumnType::Numeric => {
                let mut values = table.numeric(c)?.to_vec();
                values.reserve(cells.len());
                for (i, cell) in cells.iter().enumerate() {
                    if is_null(cell) {
                        values.push(f64::NAN);
                    } else if parses_numeric(cell) {
                        values.push(cell.parse::<f64>().expect("validated"));
                    } else {
                        return Err(StoreError::Csv {
                            line: i + 1,
                            message: format!(
                                "column `{}` is numeric but got `{cell}`; a full re-ingest \
                                 would re-type the column, so the append is rejected",
                                meta.name
                            ),
                        });
                    }
                }
                Column::Numeric(values)
            }
            ColumnType::Categorical => {
                let (old_codes, old_labels) = table.categorical(c)?;
                let mut labels = old_labels.to_vec();
                let mut codes = old_codes.to_vec();
                codes.reserve(cells.len());
                for cell in &cells {
                    if is_null(cell) {
                        codes.push(NULL_CODE);
                    } else {
                        let code = labels.iter().position(|l| l == cell).unwrap_or_else(|| {
                            labels.push((*cell).to_string());
                            labels.len() - 1
                        });
                        codes.push(code as u32);
                    }
                }
                // Type-flip guard: if every combined label parses as a
                // number, a full re-ingest would call this column
                // numeric — unless the low-cardinality bound still holds
                // it categorical. (A column with any non-numeric label,
                // or still all-NULL, can never flip.)
                let bound = options.max_numeric_cardinality_as_categorical;
                if !labels.is_empty()
                    && labels.iter().all(|l| parses_numeric(l))
                    && (bound == 0 || labels.len() > bound)
                {
                    return Err(StoreError::Csv {
                        line: 1,
                        message: format!(
                            "append would re-type column `{}` as numeric (all {} distinct \
                             values parse as numbers); rejected to keep incremental appends \
                             equivalent to a full rebuild",
                            meta.name,
                            labels.len()
                        ),
                    });
                }
                Column::Categorical { codes, labels }
            }
        };
        builder.add_column(meta, column);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv::{read_csv_str, write_csv_string};

    fn opts() -> CsvOptions {
        CsvOptions::default()
    }

    /// Column equality with NaN-as-NULL compared bitwise (plain
    /// `PartialEq` would fail every NULL numeric cell).
    fn columns_equal(a: &Column, b: &Column) -> bool {
        match (a, b) {
            (Column::Numeric(x), Column::Numeric(y)) => {
                x.len() == y.len() && x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits())
            }
            _ => a == b,
        }
    }

    #[test]
    fn append_matches_full_reingest_exactly() {
        let base = "num,cat\n1.5,x\n2.5,y\n,\n3.5,x\n";
        let extra = "4.25,z\n?,x\n-1e3,\n";
        let t = read_csv_str(base, &opts()).unwrap();
        let appended = append_rows_csv(&t, extra, &opts()).unwrap();
        let rebuilt = read_csv_str(&format!("{base}{extra}"), &opts()).unwrap();
        assert_eq!(appended.n_rows(), rebuilt.n_rows());
        for c in 0..appended.n_cols() {
            assert!(
                columns_equal(appended.column(c), rebuilt.column(c)),
                "column {c}"
            );
        }
        // And the round trip through the writer agrees too.
        assert_eq!(
            write_csv_string(&appended, ','),
            write_csv_string(&rebuilt, ',')
        );
    }

    #[test]
    fn one_at_a_time_equals_batch() {
        let base = "a,b\n1,x\n2,y\n";
        let rows = ["3,z", "4,x", "5,"];
        let t = read_csv_str(base, &opts()).unwrap();
        let mut incremental = t.clone();
        for r in rows {
            incremental = append_rows_csv(&incremental, &format!("{r}\n"), &opts()).unwrap();
        }
        let batch = append_rows_csv(&t, &rows.join("\n"), &opts()).unwrap();
        for c in 0..batch.n_cols() {
            assert!(columns_equal(incremental.column(c), batch.column(c)));
        }
    }

    #[test]
    fn quoted_fields_and_new_dictionary_labels() {
        let t = read_csv_str("n,c\n1,alpha\n", &opts()).unwrap();
        let appended = append_rows_csv(&t, "2,\"beta, with comma\"\n3,alpha\n", &opts()).unwrap();
        let (codes, labels) = appended.categorical(1).unwrap();
        assert_eq!(
            labels,
            &["alpha".to_string(), "beta, with comma".to_string()]
        );
        assert_eq!(codes, &[0, 1, 0]);
    }

    #[test]
    fn ragged_and_empty_appends_rejected() {
        let t = read_csv_str("a,b\n1,x\n", &opts()).unwrap();
        assert!(matches!(
            append_rows_csv(&t, "1,2,3\n", &opts()),
            Err(StoreError::Csv { .. })
        ));
        assert!(matches!(
            append_rows_csv(&t, "", &opts()),
            Err(StoreError::Csv { .. })
        ));
    }

    #[test]
    fn non_numeric_cell_in_numeric_column_rejected() {
        let t = read_csv_str("a,b\n1,x\n2,y\n", &opts()).unwrap();
        let err = append_rows_csv(&t, "oops,z\n", &opts()).unwrap_err();
        assert!(err.to_string().contains("re-type"), "{err}");
        // `inf` parses as f64 but is not a CSV number.
        assert!(append_rows_csv(&t, "inf,z\n", &opts()).is_err());
        // NULL tokens are fine.
        assert!(append_rows_csv(&t, "?,z\n", &opts()).is_ok());
    }

    #[test]
    fn all_null_column_type_flip_guard() {
        // `b` ingests as all-NULL categorical; appending a numeric cell
        // would make a re-ingest call it numeric, so it is rejected —
        // while a text cell keeps it categorical and is accepted.
        let t = read_csv_str("a,b\n1,?\n2,?\n", &opts()).unwrap();
        assert_eq!(t.schema().column(1).unwrap().ctype, ColumnType::Categorical);
        assert!(append_rows_csv(&t, "3,7\n", &opts()).is_err());
        let ok = append_rows_csv(&t, "3,seven\n", &opts()).unwrap();
        let rebuilt = read_csv_str("a,b\n1,?\n2,?\n3,seven\n", &opts()).unwrap();
        assert_eq!(ok.column(1), rebuilt.column(1));
    }

    #[test]
    fn low_cardinality_bound_guard() {
        let o = CsvOptions {
            max_numeric_cardinality_as_categorical: 2,
            ..CsvOptions::default()
        };
        // `flag` is categorical by the bound (2 distinct numeric values).
        let base = "flag,v\n0,10\n1,20\n0,30\n";
        let t = read_csv_str(base, &o).unwrap();
        assert_eq!(t.schema().column(0).unwrap().ctype, ColumnType::Categorical);
        // A repeat of an existing code stays under the bound: accepted,
        // and equal to the rebuild.
        let ok = append_rows_csv(&t, "1,40\n", &o).unwrap();
        let rebuilt = read_csv_str(&format!("{base}1,40\n"), &o).unwrap();
        assert_eq!(ok.column(0), rebuilt.column(0));
        // A third distinct numeric value would tip the re-ingest over
        // the bound and re-type the column: rejected.
        assert!(append_rows_csv(&t, "2,50\n", &o).is_err());
    }
}
