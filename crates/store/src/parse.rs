//! Recursive-descent parser for the predicate language.
//!
//! Grammar (standard precedence: `NOT` > `AND` > `OR`):
//!
//! ```text
//! expr      := or
//! or        := and (OR and)*
//! and       := unary (AND unary)*
//! unary     := NOT unary | primary
//! primary   := '(' expr ')' | TRUE | FALSE | predicate
//! predicate := column cmpop literal
//!            | column [NOT] IN '(' literal (',' literal)* ')'
//!            | column [NOT] BETWEEN number AND number
//!            | column IS [NOT] NULL
//! ```

use crate::error::{Result, StoreError};
use crate::expr::{CmpOp, Expr, Literal};
use crate::lex::{tokenize, Token, TokenKind};

/// Parses predicate text into an [`Expr`].
pub fn parse_predicate(input: &str) -> Result<Expr> {
    let tokens = tokenize(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        input_len: input.len(),
    };
    let e = p.parse_or()?;
    if p.pos != p.tokens.len() {
        return Err(p.error_here("unexpected trailing input"));
    }
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    input_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn advance(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error_here(&self, message: &str) -> StoreError {
        let position = self
            .tokens
            .get(self.pos)
            .map(|t| t.position)
            .unwrap_or(self.input_len);
        StoreError::Parse {
            position,
            message: message.to_string(),
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<()> {
        match self.peek() {
            Some(k) if k == kind => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.error_here(&format!("expected {what}"))),
        }
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while matches!(self.peek(), Some(TokenKind::Or)) {
            self.pos += 1;
            let right = self.parse_and()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        while matches!(self.peek(), Some(TokenKind::And)) {
            self.pos += 1;
            let right = self.parse_unary()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if matches!(self.peek(), Some(TokenKind::Not)) {
            self.pos += 1;
            let inner = self.parse_unary()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.peek() {
            Some(TokenKind::LParen) => {
                self.pos += 1;
                let inner = self.parse_or()?;
                self.expect(&TokenKind::RParen, "closing ')'")?;
                Ok(inner)
            }
            Some(TokenKind::True) => {
                self.pos += 1;
                Ok(Expr::Const(true))
            }
            Some(TokenKind::False) => {
                self.pos += 1;
                Ok(Expr::Const(false))
            }
            Some(TokenKind::Ident(_)) => self.parse_column_predicate(),
            _ => Err(self.error_here("expected a predicate, '(' , TRUE or FALSE")),
        }
    }

    fn parse_column_predicate(&mut self) -> Result<Expr> {
        let column = match self.advance().map(|t| t.kind.clone()) {
            Some(TokenKind::Ident(name)) => name,
            _ => return Err(self.error_here("expected a column name")),
        };
        // Optional NOT before IN / BETWEEN.
        let negated = if matches!(self.peek(), Some(TokenKind::Not)) {
            self.pos += 1;
            true
        } else {
            false
        };
        match self.peek() {
            Some(TokenKind::In) => {
                self.pos += 1;
                self.expect(&TokenKind::LParen, "'(' after IN")?;
                let mut values = vec![self.parse_literal()?];
                while matches!(self.peek(), Some(TokenKind::Comma)) {
                    self.pos += 1;
                    values.push(self.parse_literal()?);
                }
                self.expect(&TokenKind::RParen, "closing ')' of IN list")?;
                Ok(Expr::InList {
                    column,
                    values,
                    negated,
                })
            }
            Some(TokenKind::Between) => {
                self.pos += 1;
                let lo = self.parse_number()?;
                self.expect(&TokenKind::And, "AND between the BETWEEN bounds")?;
                let hi = self.parse_number()?;
                if lo > hi {
                    return Err(self.error_here("BETWEEN bounds out of order (lo > hi)"));
                }
                Ok(Expr::Between {
                    column,
                    lo,
                    hi,
                    negated,
                })
            }
            Some(TokenKind::Is) if !negated => {
                self.pos += 1;
                let negated = if matches!(self.peek(), Some(TokenKind::Not)) {
                    self.pos += 1;
                    true
                } else {
                    false
                };
                self.expect(&TokenKind::Null, "NULL after IS [NOT]")?;
                Ok(Expr::IsNull { column, negated })
            }
            Some(k) if !negated => {
                let op = match k {
                    TokenKind::Lt => CmpOp::Lt,
                    TokenKind::Le => CmpOp::Le,
                    TokenKind::Gt => CmpOp::Gt,
                    TokenKind::Ge => CmpOp::Ge,
                    TokenKind::Eq => CmpOp::Eq,
                    TokenKind::Ne => CmpOp::Ne,
                    _ => {
                        return Err(
                            self.error_here("expected a comparison operator, IN, BETWEEN or IS")
                        )
                    }
                };
                self.pos += 1;
                let value = self.parse_literal()?;
                Ok(Expr::Cmp { column, op, value })
            }
            _ => Err(self.error_here("expected IN or BETWEEN after NOT")),
        }
    }

    fn parse_literal(&mut self) -> Result<Literal> {
        match self.advance().map(|t| t.kind.clone()) {
            Some(TokenKind::Number(n)) => Ok(Literal::Number(n)),
            Some(TokenKind::Str(s)) => Ok(Literal::Str(s)),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.error_here("expected a literal"))
            }
        }
    }

    fn parse_number(&mut self) -> Result<f64> {
        match self.advance().map(|t| t.kind.clone()) {
            Some(TokenKind::Number(n)) => Ok(n),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.error_here("expected a number"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_comparison() {
        let e = parse_predicate("crime >= 0.8").unwrap();
        assert_eq!(
            e,
            Expr::Cmp {
                column: "crime".into(),
                op: CmpOp::Ge,
                value: Literal::Number(0.8)
            }
        );
    }

    #[test]
    fn precedence_and_over_or() {
        // a OR b AND c parses as a OR (b AND c).
        let e = parse_predicate("a = 1 OR b = 2 AND c = 3").unwrap();
        match e {
            Expr::Or(_, right) => assert!(matches!(*right, Expr::And(_, _))),
            other => panic!("expected OR at the top, got {other:?}"),
        }
    }

    #[test]
    fn parentheses_override_precedence() {
        let e = parse_predicate("(a = 1 OR b = 2) AND c = 3").unwrap();
        match e {
            Expr::And(left, _) => assert!(matches!(*left, Expr::Or(_, _))),
            other => panic!("expected AND at the top, got {other:?}"),
        }
    }

    #[test]
    fn not_binds_tighter_than_and() {
        let e = parse_predicate("NOT a = 1 AND b = 2").unwrap();
        match e {
            Expr::And(left, _) => assert!(matches!(*left, Expr::Not(_))),
            other => panic!("expected AND at the top, got {other:?}"),
        }
    }

    #[test]
    fn in_list_with_strings_and_numbers() {
        let e = parse_predicate("state IN ('CA', 'NY')").unwrap();
        assert_eq!(
            e,
            Expr::InList {
                column: "state".into(),
                values: vec![Literal::Str("CA".into()), Literal::Str("NY".into())],
                negated: false
            }
        );
        let e = parse_predicate("code NOT IN (1, 2, 3)").unwrap();
        assert!(matches!(e, Expr::InList { negated: true, .. }));
    }

    #[test]
    fn between_and_not_between() {
        let e = parse_predicate("x BETWEEN 1 AND 5").unwrap();
        assert_eq!(
            e,
            Expr::Between {
                column: "x".into(),
                lo: 1.0,
                hi: 5.0,
                negated: false
            }
        );
        let e = parse_predicate("x NOT BETWEEN -2 AND 2").unwrap();
        assert_eq!(
            e,
            Expr::Between {
                column: "x".into(),
                lo: -2.0,
                hi: 2.0,
                negated: true
            }
        );
        assert!(parse_predicate("x BETWEEN 5 AND 1").is_err());
    }

    #[test]
    fn is_null_variants() {
        assert_eq!(
            parse_predicate("x IS NULL").unwrap(),
            Expr::IsNull {
                column: "x".into(),
                negated: false
            }
        );
        assert_eq!(
            parse_predicate("x IS NOT NULL").unwrap(),
            Expr::IsNull {
                column: "x".into(),
                negated: true
            }
        );
    }

    #[test]
    fn quoted_identifier_predicate() {
        let e = parse_predicate("`% Home Owners` < 0.3").unwrap();
        assert!(matches!(e, Expr::Cmp { ref column, .. } if column == "% Home Owners"));
    }

    #[test]
    fn constants() {
        assert_eq!(parse_predicate("TRUE").unwrap(), Expr::Const(true));
        assert_eq!(
            parse_predicate("NOT FALSE").unwrap(),
            Expr::Not(Box::new(Expr::Const(false)))
        );
    }

    #[test]
    fn error_cases() {
        for bad in [
            "",
            "x >",
            "x > AND",
            "(x > 1",
            "x IN ()",
            "x IN (1,)",
            "x BETWEEN 1",
            "x IS",
            "x IS MAYBE NULL",
            "x > 1 extra",
            "AND x > 1",
            "x NOT > 1",
        ] {
            assert!(
                matches!(parse_predicate(bad), Err(StoreError::Parse { .. })),
                "expected parse error for {bad:?}"
            );
        }
    }

    #[test]
    fn display_round_trip() {
        for src in [
            "crime >= 0.8",
            "x BETWEEN 1 AND 5",
            "state IN ('CA', 'NY')",
            "x IS NOT NULL",
            "(a = 1 AND b = 2)",
        ] {
            let e = parse_predicate(src).unwrap();
            let reparsed = parse_predicate(&e.to_string()).unwrap();
            assert_eq!(e, reparsed, "display round trip failed for {src}");
        }
    }
}
