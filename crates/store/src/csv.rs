//! CSV loading with RFC-4180-style quoting and type inference.
//!
//! The demo's datasets (Box Office, US Crime, OECD) ship as CSV; this
//! module parses them from scratch: quoted fields, embedded separators,
//! doubled-quote escapes, CRLF endings. A column is inferred numeric when
//! every non-empty cell parses as `f64`; empty cells and a configurable
//! NULL token (`?`, as used by the UCI files) become NULL.

use std::path::Path;

use crate::error::{Result, StoreError};
use crate::table::{Table, TableBuilder};

/// CSV reader options.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field separator (default `,`).
    pub delimiter: char,
    /// Extra tokens treated as NULL besides the empty string (default
    /// `["?", "NA", "null", "NULL"]` — covering the UCI conventions).
    pub null_tokens: Vec<String>,
    /// When set, a column whose distinct-value count is at most this bound
    /// is loaded as categorical even if every value parses as a number
    /// (useful for coded enumerations). `0` disables the heuristic.
    pub max_numeric_cardinality_as_categorical: usize,
}

impl Default for CsvOptions {
    fn default() -> Self {
        Self {
            delimiter: ',',
            null_tokens: vec!["?".into(), "NA".into(), "null".into(), "NULL".into()],
            max_numeric_cardinality_as_categorical: 0,
        }
    }
}

/// Splits raw CSV text into records of fields, honoring quotes.
pub fn parse_records(text: &str, delimiter: char) -> Result<Vec<Vec<String>>> {
    let mut records = Vec::new();
    let mut field = String::new();
    let mut record: Vec<String> = Vec::new();
    let mut in_quotes = false;
    let mut line = 1usize;
    let mut chars = text.chars().peekable();
    let mut any = false;

    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push(c);
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => {
                    if !field.is_empty() {
                        return Err(StoreError::Csv {
                            line,
                            message: "quote inside an unquoted field".into(),
                        });
                    }
                    in_quotes = true;
                }
                '\r' => {
                    // Swallow CR of CRLF; lone CR also ends the record.
                    if chars.peek() == Some(&'\n') {
                        continue;
                    }
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                    line += 1;
                }
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                    line += 1;
                }
                c if c == delimiter => record.push(std::mem::take(&mut field)),
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(StoreError::Csv {
            line,
            message: "unterminated quoted field".into(),
        });
    }
    if any && (!field.is_empty() || !record.is_empty()) {
        record.push(field);
        records.push(record);
    }
    // Drop fully blank records (e.g. trailing newline artifacts).
    records.retain(|r| !(r.len() == 1 && r[0].is_empty()));
    Ok(records)
}

/// Reads a CSV string (first record = header) into a typed [`Table`].
pub fn read_csv_str(text: &str, options: &CsvOptions) -> Result<Table> {
    let records = parse_records(text, options.delimiter)?;
    if records.is_empty() {
        return Err(StoreError::Csv {
            line: 1,
            message: "no header record".into(),
        });
    }
    let header = &records[0];
    let n_cols = header.len();
    for (i, rec) in records.iter().enumerate().skip(1) {
        if rec.len() != n_cols {
            return Err(StoreError::Csv {
                line: i + 1,
                message: format!("expected {n_cols} fields, found {}", rec.len()),
            });
        }
    }
    let is_null = |s: &str| s.is_empty() || options.null_tokens.iter().any(|t| t == s);

    let mut builder = TableBuilder::new();
    for (c, name) in header.iter().enumerate() {
        let cells: Vec<&str> = records[1..].iter().map(|r| r[c].trim()).collect();
        let all_numeric = cells
            .iter()
            .filter(|s| !is_null(s))
            .all(|s| s.parse::<f64>().map(|v| v.is_finite()).unwrap_or(false));
        let non_null = cells.iter().filter(|s| !is_null(s)).count();
        let treat_as_categorical = if all_numeric && non_null > 0 {
            let bound = options.max_numeric_cardinality_as_categorical;
            if bound > 0 {
                let mut distinct: Vec<&str> =
                    cells.iter().filter(|s| !is_null(s)).copied().collect();
                distinct.sort_unstable();
                distinct.dedup();
                distinct.len() <= bound
            } else {
                false
            }
        } else {
            true
        };
        if !treat_as_categorical && non_null > 0 {
            let values: Vec<f64> = cells
                .iter()
                .map(|s| {
                    if is_null(s) {
                        f64::NAN
                    } else {
                        s.parse::<f64>().expect("validated")
                    }
                })
                .collect();
            builder.add_numeric(name.trim(), values);
        } else {
            let values: Vec<Option<&str>> = cells
                .iter()
                .map(|s| if is_null(s) { None } else { Some(*s) })
                .collect();
            builder.add_categorical(name.trim(), values);
        }
    }
    builder.build()
}

/// Reads a CSV file from disk.
pub fn read_csv_path(path: impl AsRef<Path>, options: &CsvOptions) -> Result<Table> {
    let text = std::fs::read_to_string(path.as_ref()).map_err(|e| StoreError::Csv {
        line: 0,
        message: format!("cannot read {}: {e}", path.as_ref().display()),
    })?;
    read_csv_str(&text, options)
}

/// Serializes a table back to CSV (NULLs as empty fields, labels quoted
/// when they contain the delimiter, quotes, or newlines).
pub fn write_csv_string(table: &Table, delimiter: char) -> String {
    let quote = |s: &str| -> String {
        if s.contains(delimiter) || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    };
    let mut out = String::new();
    let names: Vec<String> = (0..table.n_cols()).map(|i| quote(table.name(i))).collect();
    out.push_str(&names.join(&delimiter.to_string()));
    out.push('\n');
    for row in 0..table.n_rows() {
        let fields: Vec<String> = (0..table.n_cols())
            .map(|c| {
                let v = table.column(c).display_value(row);
                if v == "NULL" {
                    String::new()
                } else {
                    quote(&v)
                }
            })
            .collect();
        out.push_str(&fields.join(&delimiter.to_string()));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;

    #[test]
    fn basic_parse_and_inference() {
        let t = read_csv_str("a,b,c\n1,x,2.5\n2,y,3.5\n", &CsvOptions::default()).unwrap();
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.schema().column(0).unwrap().ctype, ColumnType::Numeric);
        assert_eq!(t.schema().column(1).unwrap().ctype, ColumnType::Categorical);
        assert_eq!(t.numeric(2).unwrap(), &[2.5, 3.5]);
    }

    #[test]
    fn quoted_fields_with_commas_and_escapes() {
        let t = read_csv_str(
            "name,score\n\"Smith, John\",1\n\"say \"\"hi\"\"\",2\n",
            &CsvOptions::default(),
        )
        .unwrap();
        let (codes, labels) = t.categorical(0).unwrap();
        assert_eq!(labels[codes[0] as usize], "Smith, John");
        assert_eq!(labels[codes[1] as usize], "say \"hi\"");
    }

    #[test]
    fn crlf_and_trailing_newline() {
        let t = read_csv_str("a,b\r\n1,2\r\n3,4\r\n", &CsvOptions::default()).unwrap();
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.numeric(0).unwrap(), &[1.0, 3.0]);
    }

    #[test]
    fn null_tokens_become_nan() {
        let t = read_csv_str("x,y\n1,a\n?,b\n,c\n4,d\n", &CsvOptions::default()).unwrap();
        let v = t.numeric(0).unwrap();
        assert!(v[1].is_nan() && v[2].is_nan());
        assert_eq!(t.column(0).null_count(), 2);
    }

    #[test]
    fn ragged_record_is_an_error() {
        let e = read_csv_str("a,b\n1,2\n3\n", &CsvOptions::default());
        assert!(matches!(e, Err(StoreError::Csv { line: 3, .. })));
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        assert!(matches!(
            read_csv_str("a\n\"oops\n", &CsvOptions::default()),
            Err(StoreError::Csv { .. })
        ));
    }

    #[test]
    fn quote_inside_unquoted_field_is_an_error() {
        assert!(matches!(
            read_csv_str("a\nab\"c\n", &CsvOptions::default()),
            Err(StoreError::Csv { .. })
        ));
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(read_csv_str("", &CsvOptions::default()).is_err());
    }

    #[test]
    fn all_null_numeric_column_falls_back_to_categorical() {
        // With no parsable values the column cannot be called numeric.
        let t = read_csv_str("x\n?\n?\n", &CsvOptions::default()).unwrap();
        assert_eq!(t.schema().column(0).unwrap().ctype, ColumnType::Categorical);
        assert_eq!(t.column(0).null_count(), 2);
    }

    #[test]
    fn low_cardinality_heuristic() {
        let opts = CsvOptions {
            max_numeric_cardinality_as_categorical: 2,
            ..CsvOptions::default()
        };
        let t = read_csv_str("flag,value\n0,10\n1,20\n0,30\n", &opts).unwrap();
        assert_eq!(t.schema().column(0).unwrap().ctype, ColumnType::Categorical);
        assert_eq!(t.schema().column(1).unwrap().ctype, ColumnType::Numeric);
    }

    #[test]
    fn infinity_token_is_not_numeric() {
        // "inf" parses as f64 but must not be accepted as a numeric cell.
        let t = read_csv_str("x\ninf\n1\n", &CsvOptions::default()).unwrap();
        assert_eq!(t.schema().column(0).unwrap().ctype, ColumnType::Categorical);
    }

    #[test]
    fn round_trip_through_writer() {
        let src = "a,b,cat\n1,2.5,x\n3,,\"y,z\"\n";
        let t = read_csv_str(src, &CsvOptions::default()).unwrap();
        let written = write_csv_string(&t, ',');
        let back = read_csv_str(&written, &CsvOptions::default()).unwrap();
        assert_eq!(back.n_rows(), t.n_rows());
        assert_eq!(back.numeric(0).unwrap(), t.numeric(0).unwrap());
        let (codes_a, labels_a) = t.categorical(2).unwrap();
        let (codes_b, labels_b) = back.categorical(2).unwrap();
        let render = |codes: &[u32], labels: &[String]| -> Vec<String> {
            codes
                .iter()
                .map(|&c| {
                    if c == u32::MAX {
                        "NULL".into()
                    } else {
                        labels[c as usize].clone()
                    }
                })
                .collect()
        };
        assert_eq!(render(codes_a, labels_a), render(codes_b, labels_b));
    }

    #[test]
    fn file_not_found_is_csv_error() {
        assert!(matches!(
            read_csv_path(
                "/nonexistent/definitely_missing.csv",
                &CsvOptions::default()
            ),
            Err(StoreError::Csv { .. })
        ));
    }
}
