//! Whole-table statistics cache — Ziggy's shared-computation optimization.
//!
//! The preparation stage is "often the most time consuming step" (paper,
//! §3); the full paper shares computation between queries. The enabling
//! observation: whole-table moments are query-independent, so they can be
//! computed once and reused. For any selection mask, the complement's
//! statistics follow algebraically:
//!
//! ```text
//! outside = whole − inside
//! ```
//!
//! so each query pays only one masked scan (over the selection, typically
//! small) instead of two full scans.
//!
//! [`StatsCache`] memoizes whole-table [`UniMoments`], [`PairMoments`] and
//! [`FrequencyTable`]s in per-key once-cells behind `parking_lot`
//! RwLocks, making it shareable across threads and across successive
//! queries: each key is scanned exactly once no matter how many threads
//! ask, and distinct keys never serialize on each other.
//!
//! The cache *owns* its table through an [`Arc`], so engines built on it
//! have no borrowed lifetime and can be shared freely between worker
//! threads (the serving layer shares one cache per table between
//! clients). Hit/miss counters expose the shared-computation win to
//! instrumentation such as `ziggy-serve`'s `/metrics` endpoint.
//!
//! [`StatsCache`] is the *whole-table* level of a two-level reuse
//! strategy. The second level is [`PreparedCache`]: a bounded LRU keyed
//! by the selection mask itself, memoizing whatever per-query artifact
//! the engine derives from a mask (in `ziggy-core`, the full
//! `PreparedStats`), so a repeated or shared predicate skips the masked
//! scans entirely. The masked scans that remain run word-wise
//! ([`masked_uni`], [`masked_pair`], [`masked_freq`]): 64 rows per mask
//! word instead of one `iter_ones` round trip per row.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::{Mutex, RwLock};
use ziggy_stats::{FrequencyTable, PairMoments, UniMoments};

use crate::chunk::{chunk_bounds, chunk_count, run_indexed, ZoneMaps, CHUNK_ROWS};
use crate::error::{Result, StoreError};
use crate::mask::Bitmask;
use crate::table::Table;

/// Snapshot of a cache's hit/miss counters (see
/// [`StatsCache::counters`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheCounters {
    /// Lookups answered from a memoized entry.
    pub hits: u64,
    /// Lookups that had to scan the table.
    pub misses: u64,
}

impl CacheCounters {
    /// Total lookups observed.
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }
}

/// One per-key memoization slot. The map's RwLock guards only slot
/// *lookup*; the scan itself runs under the slot's `OnceLock`, so a
/// cold key is computed exactly once without blocking other keys.
type Slot<T> = Arc<OnceLock<T>>;

/// Finds or creates the slot for `key`, holding the map lock only for
/// the lookup — never during a table scan.
fn slot_for<K: Eq + Hash + Copy, V>(map: &RwLock<HashMap<K, Slot<V>>>, key: K) -> Slot<V> {
    if let Some(s) = map.read().get(&key) {
        return Arc::clone(s);
    }
    Arc::clone(map.write().entry(key).or_default())
}

/// Memoized entries (slots whose computation completed).
fn initialized<K, V>(map: &RwLock<HashMap<K, Slot<V>>>) -> usize {
    map.read().values().filter(|s| s.get().is_some()).count()
}

/// Inserts an already-computed value into a slot map (the
/// [`StatsCache::for_appended`] seeding path).
fn seed<K: Eq + Hash + Copy, V>(map: &RwLock<HashMap<K, Slot<V>>>, key: K, value: V) {
    let slot: Slot<V> = Arc::default();
    let _ = slot.set(value);
    map.write().insert(key, slot);
}

/// New per-chunk partial vector for an appended column: the first
/// `inherited` entries (chunks full before the append, hence
/// unchanged) are copied from `old`, the rest recomputed.
fn extend_partials<T: Clone>(
    old: &[T],
    inherited: usize,
    n_chunks: usize,
    compute: impl Fn(usize) -> T,
) -> Arc<Vec<T>> {
    let mut v = Vec::with_capacity(n_chunks);
    v.extend_from_slice(&old[..inherited.min(old.len()).min(n_chunks)]);
    for ci in v.len()..n_chunks {
        v.push(compute(ci));
    }
    Arc::new(v)
}

/// Frequency partial of one chunk of dictionary codes.
fn chunk_freq(codes: &[u32], cardinality: usize) -> FrequencyTable {
    FrequencyTable::from_codes(
        codes.iter().map(|&c| {
            if c == crate::column::NULL_CODE {
                None
            } else {
                Some(c)
            }
        }),
        cardinality,
    )
}

/// Keyed map of frozen per-chunk partials (one `Vec` entry per chunk).
type ChunkSlots<K, V> = RwLock<HashMap<K, Slot<Arc<Vec<V>>>>>;

/// Memoized whole-table statistics for one [`Table`].
///
/// The cache holds the table via `Arc`, guaranteeing the statistics
/// always refer to the data they were computed from while remaining
/// shareable across threads without a borrowed lifetime.
///
/// Concurrency: each key memoizes into its own [`OnceLock`] slot, so
/// concurrent cold lookups of the *same* key collapse to one scan (the
/// losers block on that slot and record hits), while cold scans of
/// *different* keys — e.g. the preparation stage's parallel pair sweep —
/// proceed fully in parallel. Hit/miss counters are exact, not
/// best-effort: one miss per computed key, everything else a hit.
pub struct StatsCache {
    table: Arc<Table>,
    uni: RwLock<HashMap<usize, Slot<UniMoments>>>,
    pair: RwLock<HashMap<(usize, usize), Slot<PairMoments>>>,
    freq: RwLock<HashMap<usize, Slot<FrequencyTable>>>,
    /// Frozen per-chunk partials beneath the whole-value slots. Every
    /// whole-table value above is the *ascending-order merge* of these
    /// (the canonical arithmetic — serial, parallel, and incremental
    /// paths all merge in the same order, so they are bit-identical).
    /// Each partial is a pure function of one chunk's data, which is
    /// what makes appends incremental: [`StatsCache::for_appended`]
    /// inherits every full-chunk partial unchanged and rescans only
    /// from the old tail chunk onward.
    uni_chunks: ChunkSlots<usize, UniMoments>,
    pair_chunks: ChunkSlots<(usize, usize), PairMoments>,
    freq_chunks: ChunkSlots<usize, FrequencyTable>,
    /// Per-column chunk summaries for predicate-time chunk skipping,
    /// shared with the evaluator (see [`crate::eval::evaluate_with`]).
    zones: Arc<ZoneMaps>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl StatsCache {
    /// Creates an empty cache over a copy of `table`. When the table is
    /// already behind an `Arc` (the serving path), use
    /// [`StatsCache::shared`] to avoid the deep copy.
    pub fn new(table: &Table) -> Self {
        Self::shared(Arc::new(table.clone()))
    }

    /// Creates an empty cache sharing ownership of `table` (no copy).
    pub fn shared(table: Arc<Table>) -> Self {
        let zones = Arc::new(ZoneMaps::new(Arc::clone(&table)));
        Self {
            table,
            uni: RwLock::new(HashMap::new()),
            pair: RwLock::new(HashMap::new()),
            freq: RwLock::new(HashMap::new()),
            uni_chunks: RwLock::new(HashMap::new()),
            pair_chunks: RwLock::new(HashMap::new()),
            freq_chunks: RwLock::new(HashMap::new()),
            zones,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// A cache for `table`, which must be the cached table plus
    /// appended rows (all old rows unchanged, columns identical). The
    /// incremental-ingest path: every statistic this cache already
    /// computed is carried over by reusing the frozen partials of
    /// chunks the append did not touch and rescanning only the old
    /// tail chunk onward — O(appended rows) per statistic instead of
    /// O(table). Carried-over whole values are *seeded* (the first
    /// lookup is a hit), and because the merge order is canonical, they
    /// are bit-identical to what a cold cache over the same table would
    /// compute. Statistics the old cache never computed stay lazy.
    pub fn for_appended(&self, table: Arc<Table>) -> Self {
        let old_rows = self.table.n_rows();
        assert!(
            table.n_rows() >= old_rows && table.n_cols() == self.table.n_cols(),
            "for_appended requires the old table plus appended rows"
        );
        let fresh = Self {
            zones: Arc::new(ZoneMaps::for_appended(&self.zones, Arc::clone(&table))),
            ..Self::shared(table)
        };
        // Full chunks of the old table are unchanged in the new one.
        let inherited = old_rows / CHUNK_ROWS;

        for (&col, slot) in self.uni_chunks.read().iter() {
            let Some(old) = slot.get() else { continue };
            let Ok(data) = fresh.table.numeric(col) else {
                continue;
            };
            let partials = extend_partials(old, inherited, chunk_count(data.len()), |ci| {
                let (s, e) = chunk_bounds(ci, data.len());
                UniMoments::from_slice(&data[s..e])
            });
            let mut whole = UniMoments::new();
            for p in partials.iter() {
                whole.merge(p);
            }
            seed(&fresh.uni_chunks, col, partials);
            seed(&fresh.uni, col, whole);
        }

        for (&key, slot) in self.pair_chunks.read().iter() {
            let Some(old) = slot.get() else { continue };
            let (Ok(xs), Ok(ys)) = (fresh.table.numeric(key.0), fresh.table.numeric(key.1)) else {
                continue;
            };
            let partials = extend_partials(old, inherited, chunk_count(xs.len()), |ci| {
                let (s, e) = chunk_bounds(ci, xs.len());
                PairMoments::from_slices(&xs[s..e], &ys[s..e]).expect("equal chunk slices")
            });
            let mut whole = PairMoments::new();
            for p in partials.iter() {
                whole.merge(p);
            }
            seed(&fresh.pair_chunks, key, partials);
            seed(&fresh.pair, key, whole);
        }

        for (&col, slot) in self.freq_chunks.read().iter() {
            let Some(old) = slot.get() else { continue };
            let Ok((codes, labels)) = fresh.table.categorical(col) else {
                continue;
            };
            // An append may have grown the dictionary; old partials
            // count over the old cardinality and cannot merge with new
            // ones — recompute that column lazily instead.
            if old.first().is_some_and(|f| f.cardinality() != labels.len()) {
                continue;
            }
            let partials = extend_partials(old, inherited, chunk_count(codes.len()), |ci| {
                let (s, e) = chunk_bounds(ci, codes.len());
                chunk_freq(&codes[s..e], labels.len())
            });
            let mut whole = FrequencyTable::new(labels.len());
            for p in partials.iter() {
                whole.merge(p).expect("equal cardinalities");
            }
            seed(&fresh.freq_chunks, col, partials);
            seed(&fresh.freq, col, whole);
        }
        fresh
    }

    /// The table this cache serves.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// Shared handle to the table this cache serves.
    pub fn table_arc(&self) -> Arc<Table> {
        Arc::clone(&self.table)
    }

    /// Hit/miss counters accumulated since construction. A miss is a
    /// lookup that paid a full-table scan; everything else was shared
    /// computation.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    fn record(&self, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Zone maps over this cache's table (per-column chunk summaries),
    /// shared with the predicate evaluator for chunk skipping.
    pub fn zone_maps(&self) -> &Arc<ZoneMaps> {
        &self.zones
    }

    /// Per-chunk univariate partials of numeric column `col`, computed
    /// once (chunks scanned in parallel on the worker pool when the
    /// column spans several) and frozen — the unit of reuse for
    /// incremental appends.
    fn uni_partials(&self, col: usize, data: &[f64]) -> Arc<Vec<UniMoments>> {
        let slot = slot_for(&self.uni_chunks, col);
        Arc::clone(slot.get_or_init(|| {
            let n_chunks = chunk_count(data.len());
            Arc::new(run_indexed(n_chunks, n_chunks >= 2, |ci| {
                let (s, e) = chunk_bounds(ci, data.len());
                UniMoments::from_slice(&data[s..e])
            }))
        }))
    }

    /// Whole-table univariate moments of numeric column `col` (cached;
    /// the ascending merge of the per-chunk partials).
    pub fn uni(&self, col: usize) -> Result<UniMoments> {
        let slot = slot_for(&self.uni, col);
        if let Some(m) = slot.get() {
            self.record(true);
            return Ok(*m);
        }
        let data = self.table.numeric(col)?;
        let mut scanned = false;
        let m = *slot.get_or_init(|| {
            scanned = true;
            let mut whole = UniMoments::new();
            for p in self.uni_partials(col, data).iter() {
                whole.merge(p);
            }
            whole
        });
        self.record(!scanned);
        Ok(m)
    }

    /// Whole-table pair moments of numeric columns `(a, b)` (cached;
    /// symmetric — `(b, a)` hits the same entry).
    pub fn pair(&self, a: usize, b: usize) -> Result<PairMoments> {
        let key = (a.min(b), a.max(b));
        let slot = slot_for(&self.pair, key);
        if let Some(m) = slot.get() {
            self.record(true);
            return Ok(*m);
        }
        let xs = self.table.numeric(key.0)?;
        let ys = self.table.numeric(key.1)?;
        // TableBuilder enforces equal column lengths, but a deserialized
        // table may not have passed through it — keep the Err contract.
        if xs.len() != ys.len() {
            return Err(ziggy_stats::StatsError::LengthMismatch {
                left: xs.len(),
                right: ys.len(),
            }
            .into());
        }
        let mut scanned = false;
        let m = *slot.get_or_init(|| {
            scanned = true;
            let chunk_slot = slot_for(&self.pair_chunks, key);
            let partials = Arc::clone(chunk_slot.get_or_init(|| {
                let n_chunks = chunk_count(xs.len());
                Arc::new(run_indexed(n_chunks, n_chunks >= 2, |ci| {
                    let (s, e) = chunk_bounds(ci, xs.len());
                    PairMoments::from_slices(&xs[s..e], &ys[s..e]).expect("lengths checked above")
                }))
            }));
            let mut whole = PairMoments::new();
            for p in partials.iter() {
                whole.merge(p);
            }
            whole
        });
        self.record(!scanned);
        Ok(m)
    }

    /// Whole-table frequency table of categorical column `col` (cached).
    pub fn freq(&self, col: usize) -> Result<FrequencyTable> {
        let slot = slot_for(&self.freq, col);
        if let Some(t) = slot.get() {
            self.record(true);
            return Ok(t.clone());
        }
        let (codes, labels) = self.table.categorical(col)?;
        let mut scanned = false;
        let t = slot
            .get_or_init(|| {
                scanned = true;
                let chunk_slot = slot_for(&self.freq_chunks, col);
                let partials = Arc::clone(chunk_slot.get_or_init(|| {
                    let n_chunks = chunk_count(codes.len());
                    Arc::new(run_indexed(n_chunks, n_chunks >= 2, |ci| {
                        let (s, e) = chunk_bounds(ci, codes.len());
                        chunk_freq(&codes[s..e], labels.len())
                    }))
                }));
                let mut whole = FrequencyTable::new(labels.len());
                for p in partials.iter() {
                    whole.merge(p).expect("equal cardinalities");
                }
                whole
            })
            .clone();
        self.record(!scanned);
        Ok(t)
    }

    /// Number of memoized entries `(uni, pair, freq)` — mostly for tests
    /// and instrumentation. Counts completed computations only, not
    /// slots whose lookup errored (wrong column type) before scanning.
    pub fn sizes(&self) -> (usize, usize, usize) {
        (
            initialized(&self.uni),
            initialized(&self.pair),
            initialized(&self.freq),
        )
    }

    /// Derives the complement moments `whole − inside` for a numeric
    /// column, given the selection-side moments.
    pub fn uni_complement(&self, col: usize, inside: &UniMoments) -> Result<UniMoments> {
        Ok(self.uni(col)?.subtract(inside)?)
    }

    /// Derives the complement pair moments for a numeric column pair.
    pub fn pair_complement(&self, a: usize, b: usize, inside: &PairMoments) -> Result<PairMoments> {
        Ok(self.pair(a, b)?.subtract(inside)?)
    }

    /// Derives the complement frequency table for a categorical column.
    pub fn freq_complement(&self, col: usize, inside: &FrequencyTable) -> Result<FrequencyTable> {
        Ok(self.freq(col)?.subtract(inside)?)
    }
}

/// Univariate moments of a numeric column restricted to the mask's set
/// rows (the selection side `Cᴵ`). Runs the word-wise kernel: 64 rows per
/// mask word, zero words skipped in one compare.
pub fn masked_uni(table: &Table, col: usize, mask: &Bitmask) -> Result<UniMoments> {
    let data = table.numeric(col)?;
    check_mask(table, mask)?;
    Ok(UniMoments::from_mask_words(data, mask.words()))
}

/// Pair moments of two numeric columns restricted to the mask's set rows
/// (word-wise kernel).
pub fn masked_pair(table: &Table, a: usize, b: usize, mask: &Bitmask) -> Result<PairMoments> {
    let xs = table.numeric(a)?;
    let ys = table.numeric(b)?;
    check_mask(table, mask)?;
    Ok(PairMoments::from_mask_words(xs, ys, mask.words())?)
}

/// Frequency table of a categorical column restricted to the mask,
/// counted block-wise over the mask's non-empty words.
pub fn masked_freq(table: &Table, col: usize, mask: &Bitmask) -> Result<FrequencyTable> {
    let (codes, labels) = table.categorical(col)?;
    check_mask(table, mask)?;
    let mut t = FrequencyTable::new(labels.len());
    for (base, word) in mask.blocks() {
        let chunk = &codes[base..codes.len().min(base + 64)];
        let mut bits = word;
        while bits != 0 {
            let tz = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let c = chunk[tz];
            if c != crate::column::NULL_CODE {
                t.push(c);
            }
        }
    }
    Ok(t)
}

/// Frequency table of a categorical column restricted to the mask via the
/// naive per-row loop — the reference implementation the property tests
/// hold [`masked_freq`]'s block-wise kernel against.
pub fn masked_freq_naive(table: &Table, col: usize, mask: &Bitmask) -> Result<FrequencyTable> {
    let (codes, labels) = table.categorical(col)?;
    check_mask(table, mask)?;
    let mut t = FrequencyTable::new(labels.len());
    for i in mask.iter_ones() {
        let c = codes[i];
        if c != crate::column::NULL_CODE {
            t.push(c);
        }
    }
    Ok(t)
}

/// Snapshot of a [`KeyedCache`]'s counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PreparedCounters {
    /// Lookups answered from a memoized per-query artifact.
    pub hits: u64,
    /// Lookups that had to run the builder.
    pub misses: u64,
    /// Entries dropped under capacity pressure (LRU policy).
    pub evictions: u64,
}

/// One memoization slot. The slot's mutex serializes builders of the
/// *same* key — concurrent lookups of one key collapse to exactly one
/// build, with the losers blocking on the winner and recording hits —
/// while distinct keys never contend (the outer map lock is held only
/// for slot lookup, never during a build).
struct KeyedEntry<V> {
    slot: Arc<Mutex<Option<V>>>,
    last_used: u64,
}

/// A bounded, thread-safe LRU once-cache of derived artifacts, generic
/// over the key.
///
/// Two instantiations power the reuse ladder above [`StatsCache`]'s
/// whole-table moments:
///
/// * [`PreparedCache`] (keyed by the selection [`Bitmask`]) removes the
///   *selection* scan from every repeated query — `ziggy-core` stores an
///   `Arc<PreparedStats>` per mask, so REPL refinement loops, exploration
///   sessions, and HTTP clients issuing the same predicate — byte-equal
///   or not, masks are compared by *rows selected* — skip preparation
///   entirely.
/// * `ziggy-core`'s report cache (keyed by mask + configuration
///   fingerprint + query label) removes *everything* from a repeated
///   query: view search, post-processing, and report serialization are
///   all served from one memoized `CachedReport`.
///
/// Keys hash however the key type hashes ([`Bitmask`] hashes by
/// [`Bitmask::fingerprint`]) but are confirmed by full `Eq`, so hash
/// collisions can cost a probe, never a wrong answer. Entries are
/// evicted least-recently-used when the map reaches `capacity`.
/// Hit/miss/eviction counters are exact, exposed for `/metrics`.
pub struct KeyedCache<K, V> {
    capacity: usize,
    tick: AtomicU64,
    map: Mutex<HashMap<K, KeyedEntry<V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// The per-query artifact cache, keyed by the selection [`Bitmask`] (the
/// original [`KeyedCache`] instantiation; the name survives at the
/// engine's preparation layer).
pub type PreparedCache<V> = KeyedCache<Bitmask, V>;

impl<K: Eq + Hash + Clone, V: Clone> KeyedCache<K, V> {
    /// An empty cache holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            tick: AtomicU64::new(0),
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Returns the artifact for `key`, running `build` exactly once per
    /// resident key no matter how many threads ask concurrently. A
    /// failed build caches nothing: the entry is removed and the error
    /// propagates, so the next lookup retries.
    pub fn get_or_build<E>(
        &self,
        key: &K,
        build: impl FnOnce() -> std::result::Result<V, E>,
    ) -> std::result::Result<V, E> {
        let slot = {
            let mut map = self.map.lock();
            let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
            if let Some(e) = map.get_mut(key) {
                e.last_used = tick;
                Arc::clone(&e.slot)
            } else {
                if map.len() >= self.capacity {
                    let victim = map
                        .iter()
                        .min_by_key(|(_, e)| e.last_used)
                        .map(|(k, _)| k.clone());
                    if let Some(victim) = victim {
                        map.remove(&victim);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
                let slot = Arc::new(Mutex::new(None));
                map.insert(
                    key.clone(),
                    KeyedEntry {
                        slot: Arc::clone(&slot),
                        last_used: tick,
                    },
                );
                slot
            }
        };
        let mut guard = slot.lock();
        if let Some(v) = guard.as_ref() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(v.clone());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        match build() {
            Ok(v) => {
                *guard = Some(v.clone());
                Ok(v)
            }
            Err(e) => {
                // Drop the placeholder (only if it is still ours — a
                // concurrent eviction plus re-insert may have replaced it).
                let mut map = self.map.lock();
                if map
                    .get(key)
                    .is_some_and(|entry| Arc::ptr_eq(&entry.slot, &slot))
                {
                    map.remove(key);
                }
                Err(e)
            }
        }
    }

    /// Number of resident entries (including ones mid-build).
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.lock().is_empty()
    }

    /// Maximum number of resident entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drops every entry (used when the underlying table is deleted, or
    /// when a configuration change invalidates the keyed artifacts);
    /// counters are preserved. In-flight builds finish against their own
    /// slot Arcs but are no longer findable.
    pub fn clear(&self) {
        self.map.lock().clear();
    }

    /// Exact hit/miss/eviction counters since construction.
    pub fn counters(&self) -> PreparedCounters {
        PreparedCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

fn check_mask(table: &Table, mask: &Bitmask) -> Result<()> {
    if mask.len() != table.n_rows() {
        return Err(StoreError::LengthMismatch {
            column: "<mask>".to_string(),
            got: mask.len(),
            expected: table.n_rows(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::select;
    use crate::table::TableBuilder;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    fn sample() -> Table {
        let n = 300;
        let mut b = TableBuilder::new();
        b.add_numeric("x", (0..n).map(|i| i as f64).collect());
        b.add_numeric(
            "y",
            (0..n)
                .map(|i| (i as f64) * 2.0 + ((i * 13) % 7) as f64)
                .collect(),
        );
        b.add_categorical(
            "cat",
            (0..n)
                .map(|i| {
                    if i % 11 == 0 {
                        None
                    } else {
                        Some(["a", "b", "c"][i % 3])
                    }
                })
                .collect(),
        );
        b.build().unwrap()
    }

    #[test]
    fn uni_cached_once() {
        let t = sample();
        let cache = StatsCache::new(&t);
        let m1 = cache.uni(0).unwrap();
        let m2 = cache.uni(0).unwrap();
        assert_eq!(m1, m2);
        assert_eq!(cache.sizes().0, 1);
    }

    #[test]
    fn pair_symmetric_key() {
        let t = sample();
        let cache = StatsCache::new(&t);
        let ab = cache.pair(0, 1).unwrap();
        let ba = cache.pair(1, 0).unwrap();
        assert_eq!(ab, ba);
        assert_eq!(cache.sizes().1, 1);
    }

    #[test]
    fn complement_identity_uni() {
        let t = sample();
        let cache = StatsCache::new(&t);
        let mask = select(&t, "x < 100").unwrap();
        let inside = masked_uni(&t, 1, &mask).unwrap();
        let derived = cache.uni_complement(1, &inside).unwrap();
        let direct = masked_uni(&t, 1, &mask.complement()).unwrap();
        assert_eq!(derived.count(), direct.count());
        close(derived.mean(), direct.mean(), 1e-9);
        close(
            derived.variance().unwrap(),
            direct.variance().unwrap(),
            1e-9,
        );
    }

    #[test]
    fn complement_identity_pair() {
        let t = sample();
        let cache = StatsCache::new(&t);
        let mask = select(&t, "x BETWEEN 40 AND 220").unwrap();
        let inside = masked_pair(&t, 0, 1, &mask).unwrap();
        let derived = cache.pair_complement(0, 1, &inside).unwrap();
        let direct = masked_pair(&t, 0, 1, &mask.complement()).unwrap();
        close(
            derived.correlation().unwrap(),
            direct.correlation().unwrap(),
            1e-9,
        );
    }

    #[test]
    fn complement_identity_freq() {
        let t = sample();
        let cache = StatsCache::new(&t);
        let mask = select(&t, "x >= 150").unwrap();
        let inside = masked_freq(&t, 2, &mask).unwrap();
        let derived = cache.freq_complement(2, &inside).unwrap();
        let direct = masked_freq(&t, 2, &mask.complement()).unwrap();
        assert_eq!(derived.counts(), direct.counts());
        assert_eq!(derived.total(), direct.total());
    }

    #[test]
    fn masked_respects_nulls() {
        let mut b = TableBuilder::new();
        b.add_numeric("x", vec![1.0, f64::NAN, 3.0, 4.0]);
        let t = b.build().unwrap();
        let mask = Bitmask::from_bools([true, true, false, true]);
        let m = masked_uni(&t, 0, &mask).unwrap();
        assert_eq!(m.count(), 2); // NaN skipped.
        close(m.mean(), 2.5, 1e-12);
    }

    #[test]
    fn mask_length_checked() {
        let t = sample();
        let bad = Bitmask::zeros(7);
        assert!(masked_uni(&t, 0, &bad).is_err());
        assert!(masked_pair(&t, 0, 1, &bad).is_err());
        assert!(masked_freq(&t, 2, &bad).is_err());
    }

    #[test]
    fn type_errors_propagate() {
        let t = sample();
        let cache = StatsCache::new(&t);
        assert!(cache.uni(2).is_err()); // categorical column.
        assert!(cache.freq(0).is_err()); // numeric column.
        assert!(cache.pair(0, 2).is_err());
    }

    #[test]
    fn empty_selection_complement_is_whole() {
        let t = sample();
        let cache = StatsCache::new(&t);
        let empty = Bitmask::zeros(t.n_rows());
        let inside = masked_uni(&t, 0, &empty).unwrap();
        let derived = cache.uni_complement(0, &inside).unwrap();
        assert_eq!(derived.count(), cache.uni(0).unwrap().count());
    }

    #[test]
    fn counters_track_hits_and_misses() {
        let t = sample();
        let cache = StatsCache::new(&t);
        assert_eq!(cache.counters(), CacheCounters::default());
        cache.uni(0).unwrap();
        cache.uni(0).unwrap();
        cache.pair(0, 1).unwrap();
        cache.freq(2).unwrap();
        cache.freq(2).unwrap();
        let c = cache.counters();
        assert_eq!(c.misses, 3, "{c:?}");
        assert_eq!(c.hits, 2, "{c:?}");
        assert_eq!(c.total(), 5);
        // Errors count as neither.
        assert!(cache.uni(2).is_err());
        assert_eq!(cache.counters().total(), 5);
    }

    #[test]
    fn shared_cache_has_no_copy() {
        let t = Arc::new(sample());
        let cache = StatsCache::shared(Arc::clone(&t));
        assert!(Arc::ptr_eq(&t, &cache.table_arc()));
        cache.uni(0).unwrap();
        assert_eq!(cache.sizes().0, 1);
    }

    #[test]
    fn masked_freq_blockwise_matches_naive() {
        let t = sample();
        for query in ["x < 1", "x >= 0", "x BETWEEN 37 AND 240", "x < 0"] {
            let mask = select(&t, query).unwrap();
            let fast = masked_freq(&t, 2, &mask).unwrap();
            let naive = masked_freq_naive(&t, 2, &mask).unwrap();
            assert_eq!(fast.counts(), naive.counts(), "{query}");
            assert_eq!(fast.total(), naive.total(), "{query}");
        }
    }

    #[test]
    fn prepared_cache_memoizes_and_counts() {
        let cache: PreparedCache<Arc<Vec<usize>>> = PreparedCache::new(8);
        let mask = Bitmask::from_fn(100, |i| i % 2 == 0);
        let mut builds = 0usize;
        for _ in 0..3 {
            let v = cache
                .get_or_build(&mask, || {
                    builds += 1;
                    Ok::<_, ()>(Arc::new(mask.iter_ones().collect()))
                })
                .unwrap();
            assert_eq!(v.len(), 50);
        }
        assert_eq!(builds, 1, "same mask must build once");
        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.evictions), (2, 1, 0));
        // An equal mask built independently hits the same entry.
        let same = Bitmask::from_fn(100, |i| i % 2 == 0);
        cache
            .get_or_build(&same, || -> std::result::Result<_, ()> {
                panic!("equal mask must not rebuild")
            })
            .unwrap();
        // A different mask with the same popcount gets its own entry.
        let other = Bitmask::from_fn(100, |i| i % 2 == 1);
        cache
            .get_or_build(&other, || {
                Ok::<_, ()>(Arc::new(other.iter_ones().collect()))
            })
            .unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.counters().misses, 2);
    }

    #[test]
    fn prepared_cache_evicts_lru() {
        let cache: PreparedCache<u32> = PreparedCache::new(2);
        let masks: Vec<Bitmask> = (0..3).map(|k| Bitmask::from_fn(64, |i| i == k)).collect();
        cache.get_or_build(&masks[0], || Ok::<_, ()>(0)).unwrap();
        cache.get_or_build(&masks[1], || Ok::<_, ()>(1)).unwrap();
        // Touch mask 0 so mask 1 is the LRU victim.
        cache.get_or_build(&masks[0], || Ok::<_, ()>(99)).unwrap();
        cache.get_or_build(&masks[2], || Ok::<_, ()>(2)).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.counters().evictions, 1);
        // Mask 0 survived; mask 1 was evicted and rebuilds.
        let mut rebuilt = false;
        cache
            .get_or_build(&masks[0], || -> std::result::Result<u32, ()> {
                panic!("mask 0 must still be resident")
            })
            .unwrap();
        cache
            .get_or_build(&masks[1], || {
                rebuilt = true;
                Ok::<_, ()>(1)
            })
            .unwrap();
        assert!(rebuilt);
    }

    #[test]
    fn prepared_cache_does_not_cache_errors() {
        let cache: PreparedCache<u32> = PreparedCache::new(4);
        let mask = Bitmask::ones(10);
        assert_eq!(
            cache.get_or_build(&mask, || Err::<u32, _>("boom")),
            Err("boom")
        );
        assert!(
            cache.is_empty(),
            "failed build must not leave a placeholder"
        );
        // The next lookup retries and succeeds.
        assert_eq!(cache.get_or_build(&mask, || Ok::<_, ()>(7)), Ok(7));
        let c = cache.counters();
        assert_eq!((c.hits, c.misses), (0, 2));
    }

    #[test]
    fn prepared_cache_concurrent_same_mask_builds_once() {
        let cache: PreparedCache<u64> = PreparedCache::new(4);
        let mask = Bitmask::from_fn(256, |i| i % 7 == 0);
        let builds = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let v = cache
                        .get_or_build(&mask, || {
                            builds.fetch_add(1, Ordering::Relaxed);
                            // Widen the race window.
                            std::thread::sleep(std::time::Duration::from_millis(5));
                            Ok::<_, ()>(42)
                        })
                        .unwrap();
                    assert_eq!(v, 42);
                });
            }
        });
        assert_eq!(builds.load(Ordering::Relaxed), 1);
        let c = cache.counters();
        assert_eq!((c.hits, c.misses), (7, 1));
    }

    /// Over a multi-chunk column, the ascending chunk merge must agree
    /// with the single-pass kernel numerically — and on a single-chunk
    /// column (every table ≤ 64Ki rows) it must be *bit-identical*,
    /// because merging one partial into an empty accumulator reproduces
    /// it exactly.
    #[test]
    fn chunked_whole_table_stats_match_single_pass() {
        use crate::chunk::CHUNK_ROWS;
        // Single chunk: exact equality.
        let t = sample();
        let cache = StatsCache::new(&t);
        let data = t.numeric(0).unwrap();
        assert_eq!(cache.uni(0).unwrap(), UniMoments::from_slice(data));
        let (xs, ys) = (t.numeric(0).unwrap(), t.numeric(1).unwrap());
        assert_eq!(
            cache.pair(0, 1).unwrap(),
            PairMoments::from_slices(xs, ys).unwrap()
        );

        // Multi chunk: same count, tight numeric agreement.
        let n = 2 * CHUNK_ROWS + 999;
        let val = |i: usize| {
            if i.is_multiple_of(101) {
                f64::NAN
            } else {
                ((i % 4099) as f64 - 2000.0) * 0.25
            }
        };
        let mut b = TableBuilder::new();
        b.add_numeric("x", (0..n).map(val).collect());
        b.add_numeric("y", (0..n).map(|i| val(i + 7) * 1.5).collect());
        let big = b.build().unwrap();
        let cache = StatsCache::new(&big);
        let whole = cache.uni(0).unwrap();
        let single = UniMoments::from_slice(big.numeric(0).unwrap());
        assert_eq!(whole.count(), single.count());
        close(whole.mean(), single.mean(), 1e-9);
        close(whole.variance().unwrap(), single.variance().unwrap(), 1e-9);
        let wp = cache.pair(0, 1).unwrap();
        let sp =
            PairMoments::from_slices(big.numeric(0).unwrap(), big.numeric(1).unwrap()).unwrap();
        assert_eq!(wp.count(), sp.count());
        close(wp.correlation().unwrap(), sp.correlation().unwrap(), 1e-9);
    }

    /// `for_appended` must hand back *bit-identical* statistics to a
    /// cold cache over the appended table — both are the ascending
    /// merge of identical per-chunk partials, the incremental path just
    /// reuses the frozen ones. Also checks the seeded lookups count as
    /// hits (no rescan) and that a grown dictionary falls back safely.
    #[test]
    fn for_appended_matches_cold_cache_bitwise() {
        use crate::chunk::CHUNK_ROWS;
        let n = CHUNK_ROWS + 500;
        let val = |i: usize| {
            if i.is_multiple_of(97) {
                f64::NAN
            } else {
                (i % 211) as f64 * 0.5 - 50.0
            }
        };
        let cat = |i: usize| {
            if i.is_multiple_of(13) {
                None
            } else {
                Some(["a", "b", "c"][i % 3])
            }
        };
        let build = |rows: usize| {
            let mut b = TableBuilder::new();
            b.add_numeric("x", (0..rows).map(val).collect());
            b.add_numeric("y", (0..rows).map(|i| val(i + 3) * 2.0).collect());
            b.add_categorical("c", (0..rows).map(cat).collect());
            Arc::new(b.build().unwrap())
        };
        let old_cache = StatsCache::shared(build(n));
        old_cache.uni(0).unwrap();
        old_cache.pair(0, 1).unwrap();
        old_cache.freq(2).unwrap();

        let appended = build(n + 37);
        let inc = old_cache.for_appended(Arc::clone(&appended));
        let cold = StatsCache::shared(appended);
        assert_eq!(inc.uni(0).unwrap(), cold.uni(0).unwrap());
        assert_eq!(inc.pair(0, 1).unwrap(), cold.pair(0, 1).unwrap());
        assert_eq!(
            inc.freq(2).unwrap().counts(),
            cold.freq(2).unwrap().counts()
        );
        // Seeded entries answer as hits: no misses for the carried keys.
        let c = inc.counters();
        assert_eq!((c.hits, c.misses), (3, 0), "{c:?}");
        // Column 1 was never computed on the old cache — stays lazy.
        assert_eq!(inc.sizes().0, 1);
        inc.uni(1).unwrap();
        assert_eq!(inc.counters().misses, 1);

        // A grown dictionary cannot inherit frequency partials; the
        // column recomputes cold and still matches.
        let mut b = TableBuilder::new();
        b.add_numeric("x", (0..n + 1).map(val).collect());
        b.add_numeric("y", (0..n + 1).map(|i| val(i + 3) * 2.0).collect());
        b.add_categorical(
            "c",
            (0..n + 1)
                .map(|i| if i == n { Some("NEW") } else { cat(i) })
                .collect(),
        );
        let grown = Arc::new(b.build().unwrap());
        let inc = old_cache.for_appended(Arc::clone(&grown));
        let cold = StatsCache::shared(grown);
        assert_eq!(
            inc.freq(2).unwrap().counts(),
            cold.freq(2).unwrap().counts()
        );
    }

    #[test]
    fn cache_shared_across_threads() {
        let t = sample();
        let cache = StatsCache::new(&t);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for col in 0..2 {
                        cache.uni(col).unwrap();
                    }
                    cache.pair(0, 1).unwrap();
                    cache.freq(2).unwrap();
                });
            }
        });
        let (u, p, f) = cache.sizes();
        assert_eq!(u, 2);
        assert_eq!(p, 1);
        assert_eq!(f, 1);
        // Concurrent cold lookups of the same key must collapse to ONE
        // scan each: exactly one miss per distinct key, every other
        // lookup a hit — the counters are exact, not best-effort.
        let c = cache.counters();
        assert_eq!(c.misses, 4, "{c:?}");
        assert_eq!(c.hits, 4 * 4 - 4, "{c:?}");
    }
}
