//! Whole-table statistics cache — Ziggy's shared-computation optimization.
//!
//! The preparation stage is "often the most time consuming step" (paper,
//! §3); the full paper shares computation between queries. The enabling
//! observation: whole-table moments are query-independent, so they can be
//! computed once and reused. For any selection mask, the complement's
//! statistics follow algebraically:
//!
//! ```text
//! outside = whole − inside
//! ```
//!
//! so each query pays only one masked scan (over the selection, typically
//! small) instead of two full scans.
//!
//! [`StatsCache`] memoizes whole-table [`UniMoments`], [`PairMoments`] and
//! [`FrequencyTable`]s behind `parking_lot` RwLocks, making it shareable
//! across threads and across successive queries.

use std::collections::HashMap;

use parking_lot::RwLock;
use ziggy_stats::{FrequencyTable, PairMoments, UniMoments};

use crate::error::{Result, StoreError};
use crate::mask::Bitmask;
use crate::table::Table;

/// Memoized whole-table statistics for one [`Table`].
///
/// The cache borrows the table, guaranteeing the statistics always refer
/// to the data they were computed from.
pub struct StatsCache<'t> {
    table: &'t Table,
    uni: RwLock<HashMap<usize, UniMoments>>,
    pair: RwLock<HashMap<(usize, usize), PairMoments>>,
    freq: RwLock<HashMap<usize, FrequencyTable>>,
}

impl<'t> StatsCache<'t> {
    /// Creates an empty cache over `table`.
    pub fn new(table: &'t Table) -> Self {
        Self {
            table,
            uni: RwLock::new(HashMap::new()),
            pair: RwLock::new(HashMap::new()),
            freq: RwLock::new(HashMap::new()),
        }
    }

    /// The table this cache serves.
    pub fn table(&self) -> &'t Table {
        self.table
    }

    /// Whole-table univariate moments of numeric column `col` (cached).
    pub fn uni(&self, col: usize) -> Result<UniMoments> {
        if let Some(m) = self.uni.read().get(&col) {
            return Ok(*m);
        }
        let data = self.table.numeric(col)?;
        let m = UniMoments::from_slice(data);
        self.uni.write().insert(col, m);
        Ok(m)
    }

    /// Whole-table pair moments of numeric columns `(a, b)` (cached;
    /// symmetric — `(b, a)` hits the same entry).
    pub fn pair(&self, a: usize, b: usize) -> Result<PairMoments> {
        let key = (a.min(b), a.max(b));
        if let Some(m) = self.pair.read().get(&key) {
            return Ok(*m);
        }
        let xs = self.table.numeric(key.0)?;
        let ys = self.table.numeric(key.1)?;
        let m = PairMoments::from_slices(xs, ys)?;
        self.pair.write().insert(key, m);
        Ok(m)
    }

    /// Whole-table frequency table of categorical column `col` (cached).
    pub fn freq(&self, col: usize) -> Result<FrequencyTable> {
        if let Some(t) = self.freq.read().get(&col) {
            return Ok(t.clone());
        }
        let (codes, labels) = self.table.categorical(col)?;
        let t = FrequencyTable::from_codes(
            codes.iter().map(|&c| {
                if c == crate::column::NULL_CODE {
                    None
                } else {
                    Some(c)
                }
            }),
            labels.len(),
        );
        self.freq.write().insert(col, t.clone());
        Ok(t)
    }

    /// Number of memoized entries `(uni, pair, freq)` — mostly for tests
    /// and instrumentation.
    pub fn sizes(&self) -> (usize, usize, usize) {
        (
            self.uni.read().len(),
            self.pair.read().len(),
            self.freq.read().len(),
        )
    }

    /// Derives the complement moments `whole − inside` for a numeric
    /// column, given the selection-side moments.
    pub fn uni_complement(&self, col: usize, inside: &UniMoments) -> Result<UniMoments> {
        Ok(self.uni(col)?.subtract(inside)?)
    }

    /// Derives the complement pair moments for a numeric column pair.
    pub fn pair_complement(&self, a: usize, b: usize, inside: &PairMoments) -> Result<PairMoments> {
        Ok(self.pair(a, b)?.subtract(inside)?)
    }

    /// Derives the complement frequency table for a categorical column.
    pub fn freq_complement(&self, col: usize, inside: &FrequencyTable) -> Result<FrequencyTable> {
        Ok(self.freq(col)?.subtract(inside)?)
    }
}

/// Univariate moments of a numeric column restricted to the mask's set
/// rows (the selection side `Cᴵ`).
pub fn masked_uni(table: &Table, col: usize, mask: &Bitmask) -> Result<UniMoments> {
    let data = table.numeric(col)?;
    check_mask(table, mask)?;
    let mut m = UniMoments::new();
    for i in mask.iter_ones() {
        m.push(data[i]);
    }
    Ok(m)
}

/// Pair moments of two numeric columns restricted to the mask's set rows.
pub fn masked_pair(table: &Table, a: usize, b: usize, mask: &Bitmask) -> Result<PairMoments> {
    let xs = table.numeric(a)?;
    let ys = table.numeric(b)?;
    check_mask(table, mask)?;
    let mut m = PairMoments::new();
    for i in mask.iter_ones() {
        m.push(xs[i], ys[i]);
    }
    Ok(m)
}

/// Frequency table of a categorical column restricted to the mask.
pub fn masked_freq(table: &Table, col: usize, mask: &Bitmask) -> Result<FrequencyTable> {
    let (codes, labels) = table.categorical(col)?;
    check_mask(table, mask)?;
    let mut t = FrequencyTable::new(labels.len());
    for i in mask.iter_ones() {
        let c = codes[i];
        if c != crate::column::NULL_CODE {
            t.push(c);
        }
    }
    Ok(t)
}

fn check_mask(table: &Table, mask: &Bitmask) -> Result<()> {
    if mask.len() != table.n_rows() {
        return Err(StoreError::LengthMismatch {
            column: "<mask>".to_string(),
            got: mask.len(),
            expected: table.n_rows(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::select;
    use crate::table::TableBuilder;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    fn sample() -> Table {
        let n = 300;
        let mut b = TableBuilder::new();
        b.add_numeric("x", (0..n).map(|i| i as f64).collect());
        b.add_numeric(
            "y",
            (0..n)
                .map(|i| (i as f64) * 2.0 + ((i * 13) % 7) as f64)
                .collect(),
        );
        b.add_categorical(
            "cat",
            (0..n)
                .map(|i| {
                    if i % 11 == 0 {
                        None
                    } else {
                        Some(["a", "b", "c"][i % 3])
                    }
                })
                .collect(),
        );
        b.build().unwrap()
    }

    #[test]
    fn uni_cached_once() {
        let t = sample();
        let cache = StatsCache::new(&t);
        let m1 = cache.uni(0).unwrap();
        let m2 = cache.uni(0).unwrap();
        assert_eq!(m1, m2);
        assert_eq!(cache.sizes().0, 1);
    }

    #[test]
    fn pair_symmetric_key() {
        let t = sample();
        let cache = StatsCache::new(&t);
        let ab = cache.pair(0, 1).unwrap();
        let ba = cache.pair(1, 0).unwrap();
        assert_eq!(ab, ba);
        assert_eq!(cache.sizes().1, 1);
    }

    #[test]
    fn complement_identity_uni() {
        let t = sample();
        let cache = StatsCache::new(&t);
        let mask = select(&t, "x < 100").unwrap();
        let inside = masked_uni(&t, 1, &mask).unwrap();
        let derived = cache.uni_complement(1, &inside).unwrap();
        let direct = masked_uni(&t, 1, &mask.complement()).unwrap();
        assert_eq!(derived.count(), direct.count());
        close(derived.mean(), direct.mean(), 1e-9);
        close(
            derived.variance().unwrap(),
            direct.variance().unwrap(),
            1e-9,
        );
    }

    #[test]
    fn complement_identity_pair() {
        let t = sample();
        let cache = StatsCache::new(&t);
        let mask = select(&t, "x BETWEEN 40 AND 220").unwrap();
        let inside = masked_pair(&t, 0, 1, &mask).unwrap();
        let derived = cache.pair_complement(0, 1, &inside).unwrap();
        let direct = masked_pair(&t, 0, 1, &mask.complement()).unwrap();
        close(
            derived.correlation().unwrap(),
            direct.correlation().unwrap(),
            1e-9,
        );
    }

    #[test]
    fn complement_identity_freq() {
        let t = sample();
        let cache = StatsCache::new(&t);
        let mask = select(&t, "x >= 150").unwrap();
        let inside = masked_freq(&t, 2, &mask).unwrap();
        let derived = cache.freq_complement(2, &inside).unwrap();
        let direct = masked_freq(&t, 2, &mask.complement()).unwrap();
        assert_eq!(derived.counts(), direct.counts());
        assert_eq!(derived.total(), direct.total());
    }

    #[test]
    fn masked_respects_nulls() {
        let mut b = TableBuilder::new();
        b.add_numeric("x", vec![1.0, f64::NAN, 3.0, 4.0]);
        let t = b.build().unwrap();
        let mask = Bitmask::from_bools([true, true, false, true]);
        let m = masked_uni(&t, 0, &mask).unwrap();
        assert_eq!(m.count(), 2); // NaN skipped.
        close(m.mean(), 2.5, 1e-12);
    }

    #[test]
    fn mask_length_checked() {
        let t = sample();
        let bad = Bitmask::zeros(7);
        assert!(masked_uni(&t, 0, &bad).is_err());
        assert!(masked_pair(&t, 0, 1, &bad).is_err());
        assert!(masked_freq(&t, 2, &bad).is_err());
    }

    #[test]
    fn type_errors_propagate() {
        let t = sample();
        let cache = StatsCache::new(&t);
        assert!(cache.uni(2).is_err()); // categorical column.
        assert!(cache.freq(0).is_err()); // numeric column.
        assert!(cache.pair(0, 2).is_err());
    }

    #[test]
    fn empty_selection_complement_is_whole() {
        let t = sample();
        let cache = StatsCache::new(&t);
        let empty = Bitmask::zeros(t.n_rows());
        let inside = masked_uni(&t, 0, &empty).unwrap();
        let derived = cache.uni_complement(0, &inside).unwrap();
        assert_eq!(derived.count(), cache.uni(0).unwrap().count());
    }

    #[test]
    fn cache_shared_across_threads() {
        let t = sample();
        let cache = StatsCache::new(&t);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for col in 0..2 {
                        cache.uni(col).unwrap();
                    }
                    cache.pair(0, 1).unwrap();
                });
            }
        });
        let (u, p, _) = cache.sizes();
        assert_eq!(u, 2);
        assert_eq!(p, 1);
    }
}
