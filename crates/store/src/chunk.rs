//! Cache-sized column chunks: per-chunk zone-map summaries and the
//! small self-scheduling worker pool the chunked kernels run on.
//!
//! Columns stay physically contiguous (`Table::numeric` still hands out
//! one `&[f64]` slice — nothing about the storage format changed), but
//! every scan-shaped computation now views a column as a sequence of
//! [`CHUNK_ROWS`]-row windows:
//!
//! * each window carries a [`ChunkSummary`] (min / max / null count),
//!   so predicate evaluation can *skip* a chunk its summary proves cold
//!   (no row can match) or *fill* one it proves hot (every non-null row
//!   matches, and there are no nulls) without touching the data;
//! * whole-table and masked statistics are computed as per-chunk
//!   partials merged in ascending chunk order. The Kahan-compensated
//!   accumulators are additive, so the merge is exact — and because the
//!   merge order is canonical, the serial path, the parallel path, and
//!   the incremental-append path (which reuses frozen partials for
//!   unchanged chunks) all produce bit-identical results.
//!
//! [`CHUNK_ROWS`] is a multiple of 64, so chunk boundaries land on
//! `Bitmask` word boundaries: a chunk's mask words are
//! `words[ci * WORDS_PER_CHUNK ..]` with no bit shifting.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use crate::expr::CmpOp;
use crate::table::Table;

/// Rows per chunk. 64Ki rows × 8 bytes = 512 KiB of column data per
/// chunk — sized so one chunk's working set stays cache-resident while
/// still being coarse enough that per-chunk bookkeeping is noise.
pub const CHUNK_ROWS: usize = 65536;

/// Mask words per full chunk (`CHUNK_ROWS` is a multiple of 64).
pub const WORDS_PER_CHUNK: usize = CHUNK_ROWS / 64;

/// Number of chunks covering `n_rows` rows (0 for an empty table).
pub fn chunk_count(n_rows: usize) -> usize {
    n_rows.div_ceil(CHUNK_ROWS)
}

/// Half-open row range `[start, end)` of chunk `ci`.
pub fn chunk_bounds(ci: usize, n_rows: usize) -> (usize, usize) {
    let start = ci * CHUNK_ROWS;
    (start, (start + CHUNK_ROWS).min(n_rows))
}

/// Zone-map summary of one chunk of a numeric column.
///
/// `min`/`max` range over the chunk's non-NULL values (NULL is NaN);
/// an all-NULL chunk has `min = +∞ > max = -∞`, which every skip rule
/// below treats as "nothing can match". Non-finite data values (±∞)
/// *do* participate in min/max — the evaluator's comparison semantics
/// admit them (`!x.is_nan() && op.eval_f64(..)`), so the summary must
/// bound them too.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkSummary {
    /// Smallest non-NULL value (`+∞` when the chunk is all NULL).
    pub min: f64,
    /// Largest non-NULL value (`-∞` when the chunk is all NULL).
    pub max: f64,
    /// Number of NULL (NaN) rows in the chunk.
    pub null_count: u32,
    /// Rows in the chunk (only the last chunk of a column is short).
    pub len: u32,
}

impl ChunkSummary {
    /// Scans one chunk slice.
    pub fn from_slice(values: &[f64]) -> Self {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut null_count = 0u32;
        for &v in values {
            if v.is_nan() {
                null_count += 1;
            } else {
                if v < min {
                    min = v;
                }
                if v > max {
                    max = v;
                }
            }
        }
        Self {
            min,
            max,
            null_count,
            len: values.len() as u32,
        }
    }

    /// Every row in the chunk is NULL.
    pub fn all_null(&self) -> bool {
        self.null_count as usize == self.len as usize
    }

    /// No row in the chunk is NULL.
    pub fn no_nulls(&self) -> bool {
        self.null_count == 0
    }

    /// True when *no* row of the chunk can satisfy `col <op> rhs`, so
    /// the evaluator may leave the chunk's mask bits zero unscanned.
    /// NULLs fail every comparison, so an all-NULL chunk always skips
    /// (its `min > max` sentinel triggers each rule below). `rhs` must
    /// not be NaN (the caller bypasses zone maps for NaN literals).
    pub fn skips_cmp(&self, op: CmpOp, rhs: f64) -> bool {
        if self.all_null() {
            return true;
        }
        match op {
            CmpOp::Gt => self.max <= rhs,
            CmpOp::Ge => self.max < rhs,
            CmpOp::Lt => self.min >= rhs,
            CmpOp::Le => self.min > rhs,
            CmpOp::Eq => rhs < self.min || rhs > self.max,
            CmpOp::Ne => self.min == self.max && self.min == rhs,
        }
    }

    /// True when *every* row of the chunk satisfies `col <op> rhs`, so
    /// the evaluator may set the chunk's mask bits to one unscanned.
    /// Requires a NULL-free chunk: a NULL row fails every comparison.
    pub fn fills_cmp(&self, op: CmpOp, rhs: f64) -> bool {
        if !self.no_nulls() || self.len == 0 {
            return false;
        }
        match op {
            CmpOp::Gt => self.min > rhs,
            CmpOp::Ge => self.min >= rhs,
            CmpOp::Lt => self.max < rhs,
            CmpOp::Le => self.max <= rhs,
            CmpOp::Eq => self.min == self.max && self.min == rhs,
            CmpOp::Ne => self.max < rhs || self.min > rhs,
        }
    }

    /// Skip rule for `col BETWEEN lo AND hi` (inclusive; `negated`
    /// flips the row predicate, but NULLs fail either way).
    pub fn skips_between(&self, lo: f64, hi: f64, negated: bool) -> bool {
        if self.all_null() {
            return true;
        }
        if negated {
            // All non-null values inside [lo, hi] → none pass NOT BETWEEN.
            self.min >= lo && self.max <= hi
        } else {
            self.max < lo || self.min > hi
        }
    }

    /// Fill rule for `col BETWEEN lo AND hi` — requires a NULL-free
    /// chunk whose whole range sits on the passing side.
    pub fn fills_between(&self, lo: f64, hi: f64, negated: bool) -> bool {
        if !self.no_nulls() || self.len == 0 {
            return false;
        }
        if negated {
            self.max < lo || self.min > hi
        } else {
            self.min >= lo && self.max <= hi
        }
    }
}

/// Builds the summary vector for one numeric column.
pub fn summarize_column(data: &[f64]) -> Vec<ChunkSummary> {
    let n_chunks = chunk_count(data.len());
    run_indexed(n_chunks, n_chunks >= 2, |ci| {
        let (start, end) = chunk_bounds(ci, data.len());
        ChunkSummary::from_slice(&data[start..end])
    })
}

/// Per-column zone maps for one table, built lazily on first use and
/// shared by every predicate evaluation against that table.
///
/// Deliberately *not* part of [`Table`] (which serializes — summaries
/// are derived state, not data) — the engine's statistics cache owns
/// one `ZoneMaps` per table and threads it into the evaluator.
pub struct ZoneMaps {
    table: Arc<Table>,
    /// One lazy slot per column; `None` once initialized means the
    /// column is categorical (no zone map).
    cols: Vec<OnceLock<Option<Arc<Vec<ChunkSummary>>>>>,
    chunks_skipped: AtomicU64,
    chunks_filled: AtomicU64,
    chunks_scanned: AtomicU64,
}

impl ZoneMaps {
    /// Empty zone maps over `table`; summaries build on first use.
    pub fn new(table: Arc<Table>) -> Self {
        let cols = (0..table.n_cols()).map(|_| OnceLock::new()).collect();
        Self {
            table,
            cols,
            chunks_skipped: AtomicU64::new(0),
            chunks_filled: AtomicU64::new(0),
            chunks_scanned: AtomicU64::new(0),
        }
    }

    /// Zone maps for a table extended by an append: summaries for
    /// chunks that were already full before the append are *inherited*
    /// (they are pure functions of unchanged chunk data), and only the
    /// old tail chunk onward is rescanned. Columns the old maps never
    /// summarized stay lazy.
    pub fn for_appended(old: &ZoneMaps, table: Arc<Table>) -> Self {
        let fresh = Self::new(Arc::clone(&table));
        let old_rows = old.table.n_rows();
        let inherited_chunks = old_rows / CHUNK_ROWS; // full chunks only
        for (i, slot) in fresh.cols.iter().enumerate() {
            let Some(Some(old_sums)) = old.cols.get(i).and_then(|s| s.get()) else {
                continue;
            };
            let Ok(data) = table.numeric(i) else { continue };
            let n_chunks = chunk_count(data.len());
            let mut sums = Vec::with_capacity(n_chunks);
            sums.extend_from_slice(&old_sums[..inherited_chunks.min(old_sums.len())]);
            for ci in sums.len()..n_chunks {
                let (start, end) = chunk_bounds(ci, data.len());
                sums.push(ChunkSummary::from_slice(&data[start..end]));
            }
            let _ = slot.set(Some(Arc::new(sums)));
        }
        fresh
    }

    /// Rows in the underlying table (evaluators check this against the
    /// table they were handed before trusting the maps).
    pub fn n_rows(&self) -> usize {
        self.table.n_rows()
    }

    /// The summaries for column `col`, building them on first use.
    /// `None` for categorical columns (or out-of-range indices).
    pub fn column(&self, col: usize) -> Option<Arc<Vec<ChunkSummary>>> {
        let slot = self.cols.get(col)?;
        slot.get_or_init(|| {
            self.table
                .numeric(col)
                .ok()
                .map(|data| Arc::new(summarize_column(data)))
        })
        .clone()
    }

    /// Records zone-map outcomes for one evaluation (metrics).
    pub fn record(&self, skipped: u64, filled: u64, scanned: u64) {
        if skipped > 0 {
            self.chunks_skipped.fetch_add(skipped, Ordering::Relaxed);
        }
        if filled > 0 {
            self.chunks_filled.fetch_add(filled, Ordering::Relaxed);
        }
        if scanned > 0 {
            self.chunks_scanned.fetch_add(scanned, Ordering::Relaxed);
        }
    }

    /// `(skipped, filled, scanned)` chunk counters across all
    /// evaluations so far — the observable proof that summary-based
    /// skipping is engaged (the bench asserts on it).
    pub fn counters(&self) -> (u64, u64, u64) {
        (
            self.chunks_skipped.load(Ordering::Relaxed),
            self.chunks_filled.load(Ordering::Relaxed),
            self.chunks_scanned.load(Ordering::Relaxed),
        )
    }
}

impl std::fmt::Debug for ZoneMaps {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (s, fl, sc) = self.counters();
        f.debug_struct("ZoneMaps")
            .field("n_cols", &self.cols.len())
            .field("chunks_skipped", &s)
            .field("chunks_filled", &fl)
            .field("chunks_scanned", &sc)
            .finish()
    }
}

/// Runs `n_tasks` indexed tasks on a small self-scheduling worker pool
/// and returns the results *in index order*.
///
/// Workers pull the next task index from a shared atomic counter, so
/// load balances dynamically (a slow chunk doesn't stall its
/// neighbors), but results are placed by index — callers that merge
/// partials in ascending order get bit-identical output from the
/// serial and parallel paths. Falls back to a plain serial loop when
/// `parallel` is false, the task count is tiny, or the host has a
/// single core.
pub fn run_indexed<T, F>(n_tasks: usize, parallel: bool, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = if parallel {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(16)
            .min(n_tasks)
    } else {
        1
    };
    if threads < 2 || n_tasks < 2 {
        return (0..n_tasks).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..n_tasks).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n_tasks {
                            break;
                        }
                        out.push((i, f(i)));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            for (i, v) in h.join().expect("chunk worker panicked") {
                slots[i] = Some(v);
            }
        }
    });
    slots
        .into_iter()
        .map(|o| o.expect("every task index produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;

    fn table_with(values: Vec<f64>) -> Arc<Table> {
        let mut b = TableBuilder::new();
        b.add_numeric("x", values);
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn summary_scans_nulls_and_extremes() {
        let s = ChunkSummary::from_slice(&[3.0, f64::NAN, -1.5, 7.0, f64::NAN]);
        assert_eq!(s.min, -1.5);
        assert_eq!(s.max, 7.0);
        assert_eq!(s.null_count, 2);
        assert_eq!(s.len, 5);
        assert!(!s.all_null() && !s.no_nulls());
    }

    #[test]
    fn all_null_chunk_skips_every_operator() {
        let s = ChunkSummary::from_slice(&[f64::NAN, f64::NAN]);
        assert!(s.all_null());
        for op in [
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
            CmpOp::Eq,
            CmpOp::Ne,
        ] {
            assert!(s.skips_cmp(op, 0.0), "{op:?}");
            assert!(!s.fills_cmp(op, 0.0), "{op:?}");
        }
        assert!(s.skips_between(0.0, 1.0, false));
        assert!(s.skips_between(0.0, 1.0, true));
        assert!(!s.fills_between(0.0, 1.0, false));
    }

    /// Skip/fill decisions must agree with brute-force row evaluation:
    /// skip ⇒ no row passes, fill ⇒ every row passes.
    #[test]
    fn skip_and_fill_rules_are_sound_by_brute_force() {
        let chunks: Vec<Vec<f64>> = vec![
            vec![1.0, 2.0, 3.0],
            vec![5.0, 5.0, 5.0],
            vec![f64::NAN, 2.0, 8.0],
            vec![-3.0, f64::NAN, f64::NAN],
            vec![f64::NEG_INFINITY, 0.0, f64::INFINITY],
            vec![f64::NAN],
        ];
        let rhss = [-4.0, -3.0, 0.0, 2.0, 5.0, 8.0, 9.0];
        let ops = [
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
            CmpOp::Eq,
            CmpOp::Ne,
        ];
        for values in &chunks {
            let s = ChunkSummary::from_slice(values);
            for &rhs in &rhss {
                for op in ops {
                    let passes: Vec<bool> = values
                        .iter()
                        .map(|&x| !x.is_nan() && op.eval_f64(x, rhs))
                        .collect();
                    if s.skips_cmp(op, rhs) {
                        assert!(
                            passes.iter().all(|&p| !p),
                            "unsound skip {op:?} rhs={rhs} over {values:?}"
                        );
                    }
                    if s.fills_cmp(op, rhs) {
                        assert!(
                            passes.iter().all(|&p| p),
                            "unsound fill {op:?} rhs={rhs} over {values:?}"
                        );
                    }
                }
                for &hi in &rhss {
                    for negated in [false, true] {
                        let (lo, hi) = (rhs.min(hi), rhs.max(hi));
                        let passes: Vec<bool> = values
                            .iter()
                            .map(|&x| !x.is_nan() && ((lo <= x && x <= hi) != negated))
                            .collect();
                        if s.skips_between(lo, hi, negated) {
                            assert!(passes.iter().all(|&p| !p), "unsound between skip");
                        }
                        if s.fills_between(lo, hi, negated) {
                            assert!(passes.iter().all(|&p| p), "unsound between fill");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn chunk_geometry() {
        assert_eq!(chunk_count(0), 0);
        assert_eq!(chunk_count(1), 1);
        assert_eq!(chunk_count(CHUNK_ROWS), 1);
        assert_eq!(chunk_count(CHUNK_ROWS + 1), 2);
        assert_eq!(chunk_bounds(0, 100), (0, 100));
        assert_eq!(
            chunk_bounds(1, CHUNK_ROWS + 10),
            (CHUNK_ROWS, CHUNK_ROWS + 10)
        );
        assert_eq!(CHUNK_ROWS % 64, 0, "chunks must align to mask words");
    }

    #[test]
    fn zone_maps_lazy_and_shared() {
        let t = table_with((0..100).map(|i| i as f64).collect());
        let z = ZoneMaps::new(Arc::clone(&t));
        let a = z.column(0).unwrap();
        let b = z.column(0).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "summaries built once");
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].min, 0.0);
        assert_eq!(a[0].max, 99.0);
        assert!(z.column(7).is_none(), "out of range is None");
    }

    #[test]
    fn for_appended_matches_fresh_summaries() {
        // Old table spans 2 chunks + change; append grows the tail.
        let old_rows = CHUNK_ROWS * 2 + 17;
        let val = |i: usize| {
            if i.is_multiple_of(97) {
                f64::NAN
            } else {
                (i % 1013) as f64 - 500.0
            }
        };
        let old = table_with((0..old_rows).map(val).collect());
        let new = table_with((0..old_rows + 23).map(val).collect());
        let zo = ZoneMaps::new(Arc::clone(&old));
        zo.column(0).unwrap(); // force the old summaries
        let za = ZoneMaps::for_appended(&zo, Arc::clone(&new));
        let zf = ZoneMaps::new(Arc::clone(&new));
        assert_eq!(&*za.column(0).unwrap(), &*zf.column(0).unwrap());
    }

    #[test]
    fn run_indexed_parallel_matches_serial() {
        let serial = run_indexed(37, false, |i| i * i);
        let parallel = run_indexed(37, true, |i| i * i);
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), 37);
        assert_eq!(serial[36], 36 * 36);
        assert!(run_indexed(0, true, |i| i).is_empty());
    }
}
