#![warn(missing_docs)]

//! In-memory columnar store — the DBMS substrate of the Ziggy
//! reproduction.
//!
//! The original demo sat on MonetDB; this crate provides the slice of a
//! column store that Ziggy actually exercises:
//!
//! * [`schema`] / [`mod@column`] / [`table`] — typed columnar tables (numeric
//!   columns as `f64` with NaN as the NULL encoding, categorical columns
//!   dictionary-encoded).
//! * [`csv`] — a from-scratch CSV reader with quoting and type inference.
//! * [`lex`] / [`parse`] / [`expr`] — a WHERE-clause predicate language
//!   (`crime_rate > 0.8 AND state IN ('CA','NY')`) compiled to an AST.
//! * [`eval`] — vectorized predicate evaluation producing a selection
//!   [`mask::Bitmask`], the paper's split of every column `C` into the
//!   selection part `Cᴵ` and the complement `Cᴼ` (Figure 2).
//! * [`cache`] — whole-table moment/frequency caches enabling Ziggy's
//!   shared-computation optimization: complement statistics are derived
//!   algebraically as `whole − selection` instead of re-scanning.

pub mod append;
pub mod cache;
pub mod chunk;
pub mod column;
pub mod csv;
pub mod error;
pub mod eval;
pub mod expr;
pub mod hash;
pub mod lex;
pub mod mask;
pub mod parse;
pub mod schema;
pub mod table;

pub use append::append_rows_csv;
pub use cache::{
    masked_freq, masked_freq_naive, masked_pair, masked_uni, KeyedCache, PreparedCache,
    PreparedCounters, StatsCache,
};
pub use chunk::{
    chunk_bounds, chunk_count, run_indexed, summarize_column, ChunkSummary, ZoneMaps, CHUNK_ROWS,
    WORDS_PER_CHUNK,
};
pub use column::Column;
pub use error::StoreError;
pub use expr::{CmpOp, Expr, Literal};
pub use hash::fnv1a_64;
pub use mask::Bitmask;
pub use parse::parse_predicate;
pub use schema::{ColumnMeta, ColumnType, Schema};
pub use table::{Table, TableBuilder};
