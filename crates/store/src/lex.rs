//! Tokenizer for the predicate language.

use crate::error::{Result, StoreError};

/// A lexical token with its byte position (for error reporting).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Byte offset of the token's first character.
    pub position: usize,
}

/// The kinds of token the predicate language understands.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Column identifier (bare, or quoted with backticks / double quotes).
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// Single-quoted string literal (with `''` escapes).
    Str(String),
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=` or `==`
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `NOT`
    Not,
    /// `IN`
    In,
    /// `BETWEEN`
    Between,
    /// `IS`
    Is,
    /// `NULL`
    Null,
    /// `TRUE`
    True,
    /// `FALSE`
    False,
}

fn keyword(word: &str) -> Option<TokenKind> {
    match word.to_ascii_uppercase().as_str() {
        "AND" => Some(TokenKind::And),
        "OR" => Some(TokenKind::Or),
        "NOT" => Some(TokenKind::Not),
        "IN" => Some(TokenKind::In),
        "BETWEEN" => Some(TokenKind::Between),
        "IS" => Some(TokenKind::Is),
        "NULL" => Some(TokenKind::Null),
        "TRUE" => Some(TokenKind::True),
        "FALSE" => Some(TokenKind::False),
        _ => None,
    }
}

/// Tokenizes predicate text. Whitespace separates tokens; keywords are
/// case-insensitive; identifiers may be quoted with backticks or double
/// quotes to include spaces and punctuation (`` `% Home Owners` ``).
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;

    let err = |position: usize, message: String| StoreError::Parse { position, message };

    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    position: start,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    position: start,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    position: start,
                });
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Le,
                        position: start,
                    });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token {
                        kind: TokenKind::Ne,
                        position: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Lt,
                        position: start,
                    });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Ge,
                        position: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Gt,
                        position: start,
                    });
                    i += 1;
                }
            }
            '=' => {
                i += if bytes.get(i + 1) == Some(&b'=') {
                    2
                } else {
                    1
                };
                tokens.push(Token {
                    kind: TokenKind::Eq,
                    position: start,
                });
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Ne,
                        position: start,
                    });
                    i += 2;
                } else {
                    return Err(err(start, "expected '=' after '!'".into()));
                }
            }
            '\'' => {
                // Single-quoted string with '' escapes.
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => return Err(err(start, "unterminated string literal".into())),
                        Some(&b'\'') => {
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(_) => {
                            // Advance one UTF-8 scalar.
                            let rest = &input[i..];
                            let ch = rest.chars().next().expect("non-empty");
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    position: start,
                });
            }
            '`' | '"' => {
                let close = c;
                let mut s = String::new();
                i += 1;
                loop {
                    match input[i..].chars().next() {
                        None => return Err(err(start, "unterminated quoted identifier".into())),
                        Some(ch) if ch == close => {
                            i += ch.len_utf8();
                            break;
                        }
                        Some(ch) => {
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                if s.is_empty() {
                    return Err(err(start, "empty quoted identifier".into()));
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(s),
                    position: start,
                });
            }
            c if c.is_ascii_digit()
                || (c == '-' || c == '+' || c == '.')
                    && bytes
                        .get(i + 1)
                        .is_some_and(|b| (*b as char).is_ascii_digit() || *b == b'.') =>
            {
                let mut j = i + 1;
                while j < bytes.len() {
                    let d = bytes[j] as char;
                    let exp_sign =
                        (d == '-' || d == '+') && matches!(bytes[j - 1] as char, 'e' | 'E');
                    if d.is_ascii_digit() || d == '.' || d == 'e' || d == 'E' || exp_sign {
                        j += 1;
                    } else {
                        break;
                    }
                }
                let text = &input[i..j];
                let value: f64 = text
                    .parse()
                    .map_err(|_| err(start, format!("invalid number: {text}")))?;
                tokens.push(Token {
                    kind: TokenKind::Number(value),
                    position: start,
                });
                i = j;
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                while j < input.len() {
                    let ch = input[j..].chars().next().expect("in range");
                    if ch.is_alphanumeric() || ch == '_' || ch == '.' {
                        j += ch.len_utf8();
                    } else {
                        break;
                    }
                }
                let word = &input[i..j];
                let kind = keyword(word).unwrap_or_else(|| TokenKind::Ident(word.to_string()));
                tokens.push(Token {
                    kind,
                    position: start,
                });
                i = j;
            }
            other => {
                return Err(err(start, format!("unexpected character: {other:?}")));
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("< <= > >= = == != <>"),
            vec![
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Eq,
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Ne
            ]
        );
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(
            kinds("and OR Not iN between IS null TRUE false"),
            vec![
                TokenKind::And,
                TokenKind::Or,
                TokenKind::Not,
                TokenKind::In,
                TokenKind::Between,
                TokenKind::Is,
                TokenKind::Null,
                TokenKind::True,
                TokenKind::False
            ]
        );
    }

    #[test]
    fn numbers_incl_signs_and_exponents() {
        assert_eq!(
            kinds("1 2.5 -3 +4.25 1e3 2.5e-2 .5"),
            vec![
                TokenKind::Number(1.0),
                TokenKind::Number(2.5),
                TokenKind::Number(-3.0),
                TokenKind::Number(4.25),
                TokenKind::Number(1000.0),
                TokenKind::Number(0.025),
                TokenKind::Number(0.5),
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds("'abc' 'O''Hara' ''"),
            vec![
                TokenKind::Str("abc".into()),
                TokenKind::Str("O'Hara".into()),
                TokenKind::Str(String::new())
            ]
        );
    }

    #[test]
    fn quoted_identifiers() {
        assert_eq!(
            kinds("`% Home Owners` \"Population Size\""),
            vec![
                TokenKind::Ident("% Home Owners".into()),
                TokenKind::Ident("Population Size".into())
            ]
        );
    }

    #[test]
    fn identifiers_with_dots_and_underscores() {
        assert_eq!(
            kinds("pop_density t.col"),
            vec![
                TokenKind::Ident("pop_density".into()),
                TokenKind::Ident("t.col".into())
            ]
        );
    }

    #[test]
    fn error_positions() {
        let e = tokenize("a > $").unwrap_err();
        assert!(matches!(e, StoreError::Parse { position: 4, .. }));
        assert!(tokenize("'open").is_err());
        assert!(tokenize("`open").is_err());
        assert!(tokenize("a ! b").is_err());
        assert!(tokenize("``").is_err());
    }

    #[test]
    fn whole_predicate() {
        let ks = kinds("crime >= 0.8 AND state IN ('CA','NY')");
        assert_eq!(ks.len(), 11);
        assert_eq!(ks[0], TokenKind::Ident("crime".into()));
        assert_eq!(ks[3], TokenKind::And);
        assert_eq!(ks[5], TokenKind::In);
    }
}
