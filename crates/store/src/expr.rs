//! Predicate AST for the selection language.
//!
//! A Ziggy exploration query is a conjunction/disjunction of per-column
//! conditions over one table (the demo's "input query" text box). The AST
//! is deliberately small: comparisons, `IN` lists, `BETWEEN`, NULL tests,
//! and boolean combinators.
//!
//! NULL semantics are two-valued: any comparison against NULL is false and
//! `NOT` is plain boolean complement. (Full SQL three-valued logic is
//! intentionally out of scope; `IS NULL` / `IS NOT NULL` are provided for
//! explicit NULL handling.)

use serde::{Deserialize, Serialize};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=` / `==`
    Eq,
    /// `!=` / `<>`
    Ne,
}

impl CmpOp {
    /// Applies the operator to an f64 ordering.
    pub fn eval_f64(self, left: f64, right: f64) -> bool {
        match self {
            CmpOp::Lt => left < right,
            CmpOp::Le => left <= right,
            CmpOp::Gt => left > right,
            CmpOp::Ge => left >= right,
            CmpOp::Eq => left == right,
            CmpOp::Ne => left != right,
        }
    }

    /// SQL spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
        }
    }
}

/// A literal value in a predicate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Literal {
    /// Numeric literal.
    Number(f64),
    /// String literal (single-quoted in the surface syntax).
    Str(String),
}

impl std::fmt::Display for Literal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Literal::Number(n) => write!(f, "{n}"),
            Literal::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
        }
    }
}

/// A boolean predicate over table rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// `column OP literal`.
    Cmp {
        /// Column name.
        column: String,
        /// Operator.
        op: CmpOp,
        /// Right-hand literal.
        value: Literal,
    },
    /// `column [NOT] BETWEEN lo AND hi` (inclusive).
    Between {
        /// Column name.
        column: String,
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
        /// True for `NOT BETWEEN`.
        negated: bool,
    },
    /// `column [NOT] IN (l1, l2, …)`.
    InList {
        /// Column name.
        column: String,
        /// Candidate literals.
        values: Vec<Literal>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `column IS [NOT] NULL`.
    IsNull {
        /// Column name.
        column: String,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation (boolean complement).
    Not(Box<Expr>),
    /// Constant TRUE / FALSE.
    Const(bool),
}

impl Expr {
    /// Collects the names of all columns the predicate references, in
    /// first-appearance order without duplicates.
    pub fn columns(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        self.walk_columns(&mut |name| {
            if !out.contains(&name) {
                out.push(name);
            }
        });
        out
    }

    fn walk_columns<'a>(&'a self, f: &mut impl FnMut(&'a str)) {
        match self {
            Expr::Cmp { column, .. }
            | Expr::Between { column, .. }
            | Expr::InList { column, .. }
            | Expr::IsNull { column, .. } => f(column),
            Expr::And(a, b) | Expr::Or(a, b) => {
                a.walk_columns(f);
                b.walk_columns(f);
            }
            Expr::Not(e) => e.walk_columns(f),
            Expr::Const(_) => {}
        }
    }

    /// Depth of the expression tree (a `Const`/leaf is depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Expr::And(a, b) | Expr::Or(a, b) => 1 + a.depth().max(b.depth()),
            Expr::Not(e) => 1 + e.depth(),
            _ => 1,
        }
    }
}

impl std::fmt::Display for Expr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Expr::Cmp { column, op, value } => write!(f, "{column} {} {value}", op.symbol()),
            Expr::Between {
                column,
                lo,
                hi,
                negated,
            } => {
                let not = if *negated { "NOT " } else { "" };
                write!(f, "{column} {not}BETWEEN {lo} AND {hi}")
            }
            Expr::InList {
                column,
                values,
                negated,
            } => {
                let not = if *negated { "NOT " } else { "" };
                let items: Vec<String> = values.iter().map(|v| v.to_string()).collect();
                write!(f, "{column} {not}IN ({})", items.join(", "))
            }
            Expr::IsNull { column, negated } => {
                write!(f, "{column} IS {}NULL", if *negated { "NOT " } else { "" })
            }
            Expr::And(a, b) => write!(f, "({a} AND {b})"),
            Expr::Or(a, b) => write!(f, "({a} OR {b})"),
            Expr::Not(e) => write!(f, "NOT ({e})"),
            Expr::Const(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmp(col: &str, op: CmpOp, v: f64) -> Expr {
        Expr::Cmp {
            column: col.into(),
            op,
            value: Literal::Number(v),
        }
    }

    #[test]
    fn cmp_op_semantics() {
        assert!(CmpOp::Lt.eval_f64(1.0, 2.0));
        assert!(!CmpOp::Lt.eval_f64(2.0, 2.0));
        assert!(CmpOp::Le.eval_f64(2.0, 2.0));
        assert!(CmpOp::Eq.eval_f64(3.0, 3.0));
        assert!(CmpOp::Ne.eval_f64(3.0, 4.0));
        assert!(CmpOp::Ge.eval_f64(4.0, 4.0));
        assert!(CmpOp::Gt.eval_f64(5.0, 4.0));
    }

    #[test]
    fn columns_deduplicated_in_order() {
        let e = Expr::And(
            Box::new(cmp("b", CmpOp::Gt, 1.0)),
            Box::new(Expr::Or(
                Box::new(cmp("a", CmpOp::Lt, 2.0)),
                Box::new(cmp("b", CmpOp::Eq, 3.0)),
            )),
        );
        assert_eq!(e.columns(), vec!["b", "a"]);
    }

    #[test]
    fn depth() {
        let leaf = cmp("x", CmpOp::Eq, 0.0);
        assert_eq!(leaf.depth(), 1);
        let tree = Expr::Not(Box::new(Expr::And(Box::new(leaf.clone()), Box::new(leaf))));
        assert_eq!(tree.depth(), 3);
    }

    #[test]
    fn display_round_readable() {
        let e = Expr::And(
            Box::new(cmp("crime", CmpOp::Ge, 0.8)),
            Box::new(Expr::InList {
                column: "state".into(),
                values: vec![Literal::Str("CA".into()), Literal::Str("NY".into())],
                negated: false,
            }),
        );
        assert_eq!(e.to_string(), "(crime >= 0.8 AND state IN ('CA', 'NY'))");
    }

    #[test]
    fn display_escapes_quotes() {
        let l = Literal::Str("O'Hara".into());
        assert_eq!(l.to_string(), "'O''Hara'");
    }

    #[test]
    fn display_between_and_null() {
        let b = Expr::Between {
            column: "x".into(),
            lo: 1.0,
            hi: 2.0,
            negated: true,
        };
        assert_eq!(b.to_string(), "x NOT BETWEEN 1 AND 2");
        let n = Expr::IsNull {
            column: "y".into(),
            negated: true,
        };
        assert_eq!(n.to_string(), "y IS NOT NULL");
    }
}
