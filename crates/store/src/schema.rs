//! Table schemas: column names, types, and name→index resolution.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::{Result, StoreError};

/// Logical type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColumnType {
    /// Continuous numeric data stored as `f64` (NaN encodes NULL).
    Numeric,
    /// Dictionary-encoded categorical data.
    Categorical,
}

impl ColumnType {
    /// Human-readable name used in error messages.
    pub fn name(self) -> &'static str {
        match self {
            ColumnType::Numeric => "numeric",
            ColumnType::Categorical => "categorical",
        }
    }
}

/// Metadata for one column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnMeta {
    /// Column name (unique within a schema).
    pub name: String,
    /// Logical type.
    pub ctype: ColumnType,
}

/// An ordered set of column metadata with constant-time name lookup.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<ColumnMeta>,
    #[serde(skip)]
    by_name: HashMap<String, usize>,
}

impl Schema {
    /// Builds a schema from column metadata, rejecting duplicates.
    pub fn new(columns: Vec<ColumnMeta>) -> Result<Self> {
        let mut by_name = HashMap::with_capacity(columns.len());
        for (i, c) in columns.iter().enumerate() {
            if by_name.insert(c.name.clone(), i).is_some() {
                return Err(StoreError::DuplicateColumn(c.name.clone()));
            }
        }
        Ok(Self { columns, by_name })
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Metadata of column `i`.
    pub fn column(&self, i: usize) -> Option<&ColumnMeta> {
        self.columns.get(i)
    }

    /// All column metadata in declaration order.
    pub fn columns(&self) -> &[ColumnMeta] {
        &self.columns
    }

    /// Resolves a column name to its index.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| StoreError::UnknownColumn(name.to_string()))
    }

    /// Name of column `i`; panics when out of range.
    pub fn name(&self, i: usize) -> &str {
        &self.columns[i].name
    }

    /// Indices of all columns of the given type.
    pub fn indices_of_type(&self, ctype: ColumnType) -> Vec<usize> {
        self.columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.ctype == ctype)
            .map(|(i, _)| i)
            .collect()
    }

    /// Rebuilds the name lookup (needed after deserialization, since the
    /// map is skipped by serde).
    pub fn rebuild_index(&mut self) {
        self.by_name = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name.clone(), i))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(name: &str, ctype: ColumnType) -> ColumnMeta {
        ColumnMeta {
            name: name.into(),
            ctype,
        }
    }

    #[test]
    fn lookup_by_name() {
        let s = Schema::new(vec![
            meta("a", ColumnType::Numeric),
            meta("b", ColumnType::Categorical),
        ])
        .unwrap();
        assert_eq!(s.index_of("a").unwrap(), 0);
        assert_eq!(s.index_of("b").unwrap(), 1);
        assert!(matches!(s.index_of("c"), Err(StoreError::UnknownColumn(_))));
    }

    #[test]
    fn rejects_duplicates() {
        let r = Schema::new(vec![
            meta("x", ColumnType::Numeric),
            meta("x", ColumnType::Numeric),
        ]);
        assert!(matches!(r, Err(StoreError::DuplicateColumn(_))));
    }

    #[test]
    fn indices_by_type() {
        let s = Schema::new(vec![
            meta("n1", ColumnType::Numeric),
            meta("c1", ColumnType::Categorical),
            meta("n2", ColumnType::Numeric),
        ])
        .unwrap();
        assert_eq!(s.indices_of_type(ColumnType::Numeric), vec![0, 2]);
        assert_eq!(s.indices_of_type(ColumnType::Categorical), vec![1]);
    }

    #[test]
    fn serde_round_trip_rebuilds_index() {
        let s = Schema::new(vec![meta("a", ColumnType::Numeric)]).unwrap();
        let json = serde_json::to_string(&s).unwrap();
        let mut back: Schema = serde_json::from_str(&json).unwrap();
        back.rebuild_index();
        assert_eq!(back.index_of("a").unwrap(), 0);
    }

    #[test]
    fn empty_schema() {
        let s = Schema::new(vec![]).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(s.column(0).is_none());
    }
}
