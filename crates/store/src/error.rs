//! Error type for the store layer.

use std::fmt;

/// Errors raised while building tables, loading CSV, or evaluating
/// predicates.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// Referenced a column name that does not exist.
    UnknownColumn(String),
    /// A column was used with an incompatible type (e.g. a numeric
    /// comparison against a categorical column).
    TypeMismatch {
        /// Column involved.
        column: String,
        /// What the operation expected.
        expected: &'static str,
        /// What the column actually is.
        actual: &'static str,
    },
    /// Columns of differing lengths were combined into one table.
    LengthMismatch {
        /// Name of the offending column.
        column: String,
        /// Its length.
        got: usize,
        /// The table's row count.
        expected: usize,
    },
    /// The same column name was added twice.
    DuplicateColumn(String),
    /// A table must contain at least one column.
    EmptyTable,
    /// CSV input could not be parsed.
    Csv {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// The predicate text could not be parsed.
    Parse {
        /// Byte offset in the input where the error was noticed.
        position: usize,
        /// Description of the problem.
        message: String,
    },
    /// An underlying statistics computation failed.
    Stats(ziggy_stats::StatsError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownColumn(name) => write!(f, "unknown column: {name}"),
            StoreError::TypeMismatch {
                column,
                expected,
                actual,
            } => {
                write!(f, "column {column}: expected {expected}, found {actual}")
            }
            StoreError::LengthMismatch {
                column,
                got,
                expected,
            } => {
                write!(f, "column {column} has {got} rows, table has {expected}")
            }
            StoreError::DuplicateColumn(name) => write!(f, "duplicate column: {name}"),
            StoreError::EmptyTable => write!(f, "a table needs at least one column"),
            StoreError::Csv { line, message } => write!(f, "CSV error on line {line}: {message}"),
            StoreError::Parse { position, message } => {
                write!(f, "predicate parse error at byte {position}: {message}")
            }
            StoreError::Stats(e) => write!(f, "statistics error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ziggy_stats::StatsError> for StoreError {
    fn from(e: ziggy_stats::StatsError) -> Self {
        StoreError::Stats(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, StoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(StoreError::UnknownColumn("x".into())
            .to_string()
            .contains("x"));
        assert!(StoreError::EmptyTable.to_string().contains("at least one"));
        let e = StoreError::Csv {
            line: 7,
            message: "bad quote".into(),
        };
        assert!(e.to_string().contains("line 7"));
        let e = StoreError::Parse {
            position: 3,
            message: "expected )".into(),
        };
        assert!(e.to_string().contains("byte 3"));
    }

    #[test]
    fn stats_error_wraps_with_source() {
        let inner = ziggy_stats::StatsError::Degenerate("constant");
        let e: StoreError = inner.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
