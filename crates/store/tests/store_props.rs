//! Property-based tests for the store: CSV round trips with mixed
//! content, predicate/complement laws, cache subtraction under hostile
//! masks, zone-mapped vs. plain selection, and append-vs-rebuild
//! equivalence.

use std::sync::Arc;

use proptest::prelude::*;
use ziggy_store::csv::{read_csv_str, write_csv_string, CsvOptions};
use ziggy_store::{
    append_rows_csv, eval, masked_uni, parse_predicate, Bitmask, StatsCache, TableBuilder,
    ZoneMaps, CHUNK_ROWS,
};

/// Strings that are CSV-hostile: commas, quotes, newlines, unicode.
fn hostile_label() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "plain".to_string(),
        "with,comma".to_string(),
        "with \"quote\"".to_string(),
        "multi\nline".to_string(),
        "ünïcödé".to_string(),
        "  padded  ".to_string(),
        "'single'".to_string(),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// CSV round trip survives hostile categorical content.
    #[test]
    fn csv_round_trip_hostile_labels(
        labels in prop::collection::vec(hostile_label(), 3..25),
        values in prop::collection::vec(-1e5..1e5f64, 3..25)
    ) {
        let n = labels.len().min(values.len());
        let mut b = TableBuilder::new();
        b.add_numeric("v", values[..n].to_vec());
        b.add_categorical("c", labels[..n].iter().map(|s| Some(s.clone())).collect());
        let t = b.build().unwrap();
        let text = write_csv_string(&t, ',');
        let back = read_csv_str(&text, &CsvOptions::default()).unwrap();
        prop_assert_eq!(back.n_rows(), n);
        // Labels round-trip modulo the documented trim of unquoted
        // whitespace; quoted fields preserve exactly, so compare decoded
        // row values trimmed.
        let (codes_a, labels_a) = t.categorical(1).unwrap();
        let (codes_b, labels_b) = back.categorical(1).unwrap();
        for i in 0..n {
            let orig = labels_a[codes_a[i] as usize].trim();
            let got = labels_b[codes_b[i] as usize].trim();
            prop_assert_eq!(orig, got);
        }
    }

    /// Complement law at the predicate level: rows(P) ∪ rows(NOT P) =
    /// all rows, disjointly — for NULL-free columns.
    #[test]
    fn predicate_complement_partition(values in prop::collection::vec(-100.0..100.0f64, 10..80), t in -100.0..100.0f64) {
        let mut b = TableBuilder::new();
        b.add_numeric("x", values.clone());
        let table = b.build().unwrap();
        let p = eval::select(&table, &format!("x <= {t}")).unwrap();
        let np = eval::select(&table, &format!("NOT x <= {t}")).unwrap();
        let mut union = p.clone();
        union.or_assign(&np);
        prop_assert_eq!(union.count_ones(), values.len());
        let mut inter = p.clone();
        inter.and_assign(&np);
        prop_assert_eq!(inter.count_ones(), 0);
    }

    /// BETWEEN equals the conjunction of its bounds.
    #[test]
    fn between_equals_conjunction(values in prop::collection::vec(-100.0..100.0f64, 10..60), a in -100.0..100.0f64, b in -100.0..100.0f64) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let mut builder = TableBuilder::new();
        builder.add_numeric("x", values);
        let table = builder.build().unwrap();
        let between = eval::select(&table, &format!("x BETWEEN {lo} AND {hi}")).unwrap();
        let conj = eval::select(&table, &format!("x >= {lo} AND x <= {hi}")).unwrap();
        prop_assert_eq!(between, conj);
    }

    /// Cache complement subtraction matches a direct scan for arbitrary
    /// masks, including all-set and all-clear.
    #[test]
    fn cache_subtraction_arbitrary_masks(
        values in prop::collection::vec(-1e4..1e4f64, 10..100),
        bits in prop::collection::vec(any::<bool>(), 10..100)
    ) {
        let n = values.len().min(bits.len());
        let mut b = TableBuilder::new();
        b.add_numeric("x", values[..n].to_vec());
        let table = b.build().unwrap();
        let cache = StatsCache::new(&table);
        for mask in [
            Bitmask::from_fn(n, |i| bits[i]),
            Bitmask::zeros(n),
            Bitmask::ones(n),
        ] {
            let inside = masked_uni(&table, 0, &mask).unwrap();
            let derived = cache.uni_complement(0, &inside).unwrap();
            let direct = masked_uni(&table, 0, &mask.complement()).unwrap();
            prop_assert_eq!(derived.count(), direct.count());
            if direct.count() > 0 {
                prop_assert!((derived.mean() - direct.mean()).abs() < 1e-6);
            }
        }
    }

    /// The parser never panics on arbitrary short inputs (fuzz-lite).
    #[test]
    fn parser_never_panics(input in "[ -~]{0,40}") {
        let _ = parse_predicate(&input);
    }
}

/// Clustered multi-chunk column built through `prop_map` (which the
/// shim shrinks by shrinking this source tuple and re-mapping): a
/// strictly monotone ramp spanning three chunks, optionally descending,
/// with an optional NULL stripe.
fn clustered_column() -> impl Strategy<Value = Vec<f64>> {
    (0usize..800, 0usize..4, any::<bool>()).prop_map(|(extra, nan_stride, descending)| {
        let n = 2 * CHUNK_ROWS + 17 + extra;
        (0..n)
            .map(|i| {
                if nan_stride > 0 && i % (nan_stride * 997) == 3 {
                    f64::NAN
                } else if descending {
                    (n - i) as f64
                } else {
                    i as f64
                }
            })
            .collect()
    })
}

proptest! {
    // Each case materializes ~1 MiB of column data and scans it several
    // times; a handful of cases covers the chunk-boundary geometry.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Zone-mapped selection is bit-identical to the plain scan for
    /// every operator shape, and on clustered data the summary path
    /// provably skips *and* fills whole chunks — the soundness +
    /// usefulness contract of the chunk summaries at once.
    #[test]
    fn zone_mapped_selection_is_bit_identical(values in clustered_column(), frac in 0.0..1.0f64) {
        let mut b = TableBuilder::new();
        b.add_numeric("x", values.clone());
        let table = Arc::new(b.build().unwrap());
        let zones = ZoneMaps::new(Arc::clone(&table));
        let finite: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
        let (lo, hi) = (finite.iter().copied().fold(f64::INFINITY, f64::min),
                        finite.iter().copied().fold(f64::NEG_INFINITY, f64::max));
        let cut = lo + frac * (hi - lo);
        let had_nulls = finite.len() < values.len();
        let (blo, bhi) = (lo + 0.25 * (hi - lo), lo + 0.75 * (hi - lo));
        for pred in [
            format!("x >= {cut}"),
            format!("x < {cut}"),
            format!("x > {cut}"),
            format!("x <= {cut}"),
            format!("x = {cut}"),
            format!("x != {cut}"),
            format!("x BETWEEN {blo} AND {bhi}"),
            format!("NOT x BETWEEN {blo} AND {bhi}"),
        ] {
            let plain = eval::select(&table, &pred).unwrap();
            let mapped = eval::select_with(&table, &pred, Some(&zones)).unwrap();
            prop_assert_eq!(&plain, &mapped, "zone-mapped mask diverged for {}", pred);
        }
        // A monotone ramp puts every chunk's range strictly on one side
        // of *some* predicate above: skips must have happened, and —
        // absent NULLs, which veto filling — fills too.
        let (skipped, filled, _scanned) = zones.counters();
        prop_assert!(skipped > 0, "clustered data must skip chunks");
        if !had_nulls {
            prop_assert!(filled > 0, "NULL-free clustered data must fill chunks");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Appending rows one at a time reproduces the full-CSV build bit
    /// for bit: identical CSV bytes back out, identical columns, and
    /// identical whole-table accumulator state through the incremental
    /// `StatsCache::for_appended` chain — the additive-Kahan contract
    /// behind the append fast path. NaNs ride along as empty cells.
    #[test]
    fn row_at_a_time_appends_match_full_ingest(
        base in prop::collection::vec((-1e5..1e5f64, -1e3..1e3f64), 2..16),
        extra in prop::collection::vec((-1e5..1e5f64, -1e3..1e3f64), 1..10)
            .prop_map(|rows| {
                // Re-mapped NULL stripe: every third appended row's
                // second cell becomes NULL (shrinks via the source vec).
                rows.into_iter()
                    .enumerate()
                    .map(|(i, (a, b))| (a, if i % 3 == 2 { f64::NAN } else { b }))
                    .collect::<Vec<_>>()
            }),
    ) {
        let cell = |v: f64| if v.is_nan() { String::new() } else { format!("{v}") };
        let row = |&(a, b): &(f64, f64)| format!("{},{}\n", cell(a), cell(b));
        let base_csv: String =
            std::iter::once("x,y\n".to_string()).chain(base.iter().map(row)).collect();
        let full_csv: String = base_csv.clone() + &extra.iter().map(row).collect::<String>();

        // Incremental: ingest the base, then append one row at a time,
        // threading the stats cache through for_appended at each step.
        let mut table = Arc::new(read_csv_str(&base_csv, &CsvOptions::default()).unwrap());
        let mut cache = StatsCache::shared(Arc::clone(&table));
        cache.uni(0).unwrap(); // warm a seed so inheritance is exercised
        for r in &extra {
            table = Arc::new(append_rows_csv(&table, &row(r), &CsvOptions::default()).unwrap());
            cache = cache.for_appended(Arc::clone(&table));
        }

        // Rebuild: one cold ingest of the combined CSV.
        let full = Arc::new(read_csv_str(&full_csv, &CsvOptions::default()).unwrap());
        let fresh = StatsCache::shared(Arc::clone(&full));

        prop_assert_eq!(table.n_rows(), base.len() + extra.len());
        prop_assert_eq!(
            write_csv_string(&table, ','), write_csv_string(&full, ','),
            "appended table must serialize byte-identically to the rebuild"
        );
        for col in 0..2 {
            let inc = cache.uni(col).unwrap();
            let cold = fresh.uni(col).unwrap();
            prop_assert_eq!(inc.count(), cold.count());
            prop_assert_eq!(inc.sum().to_bits(), cold.sum().to_bits(),
                "column {} sum accumulator diverged", col);
            prop_assert_eq!(inc.sum_sq().to_bits(), cold.sum_sq().to_bits(),
                "column {} sum_sq accumulator diverged", col);
        }
    }
}
