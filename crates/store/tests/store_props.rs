//! Property-based tests for the store: CSV round trips with mixed
//! content, predicate/complement laws, cache subtraction under hostile
//! masks.

use proptest::prelude::*;
use ziggy_store::csv::{read_csv_str, write_csv_string, CsvOptions};
use ziggy_store::{eval, masked_uni, parse_predicate, Bitmask, StatsCache, TableBuilder};

/// Strings that are CSV-hostile: commas, quotes, newlines, unicode.
fn hostile_label() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "plain".to_string(),
        "with,comma".to_string(),
        "with \"quote\"".to_string(),
        "multi\nline".to_string(),
        "ünïcödé".to_string(),
        "  padded  ".to_string(),
        "'single'".to_string(),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// CSV round trip survives hostile categorical content.
    #[test]
    fn csv_round_trip_hostile_labels(
        labels in prop::collection::vec(hostile_label(), 3..25),
        values in prop::collection::vec(-1e5..1e5f64, 3..25)
    ) {
        let n = labels.len().min(values.len());
        let mut b = TableBuilder::new();
        b.add_numeric("v", values[..n].to_vec());
        b.add_categorical("c", labels[..n].iter().map(|s| Some(s.clone())).collect());
        let t = b.build().unwrap();
        let text = write_csv_string(&t, ',');
        let back = read_csv_str(&text, &CsvOptions::default()).unwrap();
        prop_assert_eq!(back.n_rows(), n);
        // Labels round-trip modulo the documented trim of unquoted
        // whitespace; quoted fields preserve exactly, so compare decoded
        // row values trimmed.
        let (codes_a, labels_a) = t.categorical(1).unwrap();
        let (codes_b, labels_b) = back.categorical(1).unwrap();
        for i in 0..n {
            let orig = labels_a[codes_a[i] as usize].trim();
            let got = labels_b[codes_b[i] as usize].trim();
            prop_assert_eq!(orig, got);
        }
    }

    /// Complement law at the predicate level: rows(P) ∪ rows(NOT P) =
    /// all rows, disjointly — for NULL-free columns.
    #[test]
    fn predicate_complement_partition(values in prop::collection::vec(-100.0..100.0f64, 10..80), t in -100.0..100.0f64) {
        let mut b = TableBuilder::new();
        b.add_numeric("x", values.clone());
        let table = b.build().unwrap();
        let p = eval::select(&table, &format!("x <= {t}")).unwrap();
        let np = eval::select(&table, &format!("NOT x <= {t}")).unwrap();
        let mut union = p.clone();
        union.or_assign(&np);
        prop_assert_eq!(union.count_ones(), values.len());
        let mut inter = p.clone();
        inter.and_assign(&np);
        prop_assert_eq!(inter.count_ones(), 0);
    }

    /// BETWEEN equals the conjunction of its bounds.
    #[test]
    fn between_equals_conjunction(values in prop::collection::vec(-100.0..100.0f64, 10..60), a in -100.0..100.0f64, b in -100.0..100.0f64) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let mut builder = TableBuilder::new();
        builder.add_numeric("x", values);
        let table = builder.build().unwrap();
        let between = eval::select(&table, &format!("x BETWEEN {lo} AND {hi}")).unwrap();
        let conj = eval::select(&table, &format!("x >= {lo} AND x <= {hi}")).unwrap();
        prop_assert_eq!(between, conj);
    }

    /// Cache complement subtraction matches a direct scan for arbitrary
    /// masks, including all-set and all-clear.
    #[test]
    fn cache_subtraction_arbitrary_masks(
        values in prop::collection::vec(-1e4..1e4f64, 10..100),
        bits in prop::collection::vec(any::<bool>(), 10..100)
    ) {
        let n = values.len().min(bits.len());
        let mut b = TableBuilder::new();
        b.add_numeric("x", values[..n].to_vec());
        let table = b.build().unwrap();
        let cache = StatsCache::new(&table);
        for mask in [
            Bitmask::from_fn(n, |i| bits[i]),
            Bitmask::zeros(n),
            Bitmask::ones(n),
        ] {
            let inside = masked_uni(&table, 0, &mask).unwrap();
            let derived = cache.uni_complement(0, &inside).unwrap();
            let direct = masked_uni(&table, 0, &mask.complement()).unwrap();
            prop_assert_eq!(derived.count(), direct.count());
            if direct.count() > 0 {
                prop_assert!((derived.mean() - direct.mean()).abs() < 1e-6);
            }
        }
    }

    /// The parser never panics on arbitrary short inputs (fuzz-lite).
    #[test]
    fn parser_never_panics(input in "[ -~]{0,40}") {
        let _ = parse_predicate(&input);
    }
}
