//! The self-healing repair loop: re-materializes under-replicated
//! tables onto healthy backends.
//!
//! A dead process, a drained membership, or a freshly joined (empty)
//! backend all leave some tables with fewer than R **live** replicas.
//! Reads survive that through failover, but capacity and fault
//! tolerance are lost until someone re-materializes the data. This
//! module is that someone: a background thread that each round
//!
//! 1. asks every member backend what tables it holds (`GET /tables`,
//!    per backend — the same endpoint the router scatter-gathers),
//! 2. computes each table's *desired* holders: the first R **healthy**
//!    backends walking the ring clockwise from the table's hash — the
//!    same walk reads fail over along, so a repaired copy lands exactly
//!    where the next failing-over read will look,
//! 3. for each desired holder missing the table, exports the source CSV
//!    from any current holder (`GET /tables/{name}/csv` — the original
//!    upload bytes, verbatim) and replicates it over (`PUT
//!    /tables/{name}`).
//!
//! Every leg is idempotent: the replicate path matches CSV fingerprints,
//! so a repair racing a client retry, another router's repair loop, or a
//! concurrent ingest converges on one copy instead of conflicting —
//! repairing twice is merely wasted bandwidth, never wrong data. The
//! loop therefore needs no coordination, no leases, and no leader.
//!
//! # Tombstones: deletes win over stale rejoiners
//!
//! Step 1 also gathers every member's `GET /tombstones` — the
//! HLC-stamped delete markers the durable registry keeps. Before
//! repairing a table the round compares the fleet-wide **max tombstone
//! timestamp** against the **max live ingest timestamp** across its
//! holders: when the tombstone is strictly newer, the table is
//! *deleted*, and the stale copy (typically a backend that was absent —
//! crashed, partitioned, drained — during the delete and rejoined with
//! its WAL replayed) is itself deleted from every holder instead of
//! being faithfully re-propagated back to R replicas. That closes the
//! resurrection bug the pre-durability loop documented: delete now wins
//! over rejoin, not the other way round. A table re-created *after* its
//! delete has a newer ingest timestamp and replicates normally.
//!
//! # Stray-copy garbage collection
//!
//! Copies stranded on backends outside a table's desired replica set
//! (after the ring shifts under membership churn, or after a repair
//! spilled past a temporarily dead nominal holder) used to accumulate
//! forever. They are now collected, carefully:
//!
//! * only after [`GC_GRACE_ROUNDS`] consecutive *clean* rounds (nothing
//!   under-replicated, no failed legs, no deletes propagated, same
//!   membership epoch) — so a mid-churn or mid-outage snapshot of the
//!   ring never deletes a copy that failover reads still depend on;
//! * only when every desired holder verifiably holds the table this
//!   round;
//! * via `DELETE /tables/{name}?stray=true`, which tombstones the copy
//!   at its **own ingest timestamp** rather than a fresh one, and marks
//!   the tombstone *stray*. A stray tombstone keeps the copy dead
//!   locally (including across its next WAL replay) but is withheld
//!   from `GET /tombstones` — replicated copies stamp independent local
//!   timestamps, so a GC artifact could otherwise carry the fleet-wide
//!   maximum and read, on the next round, as "this table was deleted
//!   everywhere".

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use serde_json::Value;
use ziggy_obs::trace::mint_trace_id;

use crate::backend::Backend;
use crate::router::{forward, FleetState};

/// Default interval between repair rounds.
pub const DEFAULT_REPAIR_INTERVAL: Duration = Duration::from_millis(500);

/// Consecutive clean repair rounds (fully replicated, no failures, no
/// deletes propagated, stable membership) required before stranded
/// copies are garbage-collected. The grace period keeps GC from acting
/// on a mid-churn view of the ring.
pub const GC_GRACE_ROUNDS: u64 = 3;

/// What one repair round observed and did (for logging and tests).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RepairReport {
    /// Distinct tables seen across all member backends.
    pub tables_seen: usize,
    /// Tables that were missing at least one desired live replica at
    /// the start of the round.
    pub under_replicated: usize,
    /// Successful re-materializations (one per table × backend pair).
    pub repaired: usize,
    /// Failed repair legs (source export or replicate refused/errored).
    pub failed: usize,
    /// Stale copies deleted because a strictly newer tombstone proved
    /// the table was deleted fleet-wide (one per table × holder pair).
    pub deletes_propagated: usize,
    /// Stranded copies garbage-collected from backends outside their
    /// table's desired replica set.
    pub strays_collected: usize,
}

/// Runs one repair round against the current membership and returns
/// what it did. Exposed for tests and for callers that want to drive
/// repair synchronously (e.g. right after an admin membership change)
/// instead of waiting out the background interval.
pub fn repair_round(state: &FleetState) -> RepairReport {
    let round_started = std::time::Instant::now();
    // Each round is its own trace in the router's flight recorder: the
    // serialized repair legs (delete propagation, CSV export, replicate
    // PUTs) land under it as `fleet.upstream` children, so a slow or
    // failing round can be read span-by-span at `/debug/traces/{id}`.
    // The `route=repair` attribute keeps rounds filterable apart from
    // (and out of) request-trace listings.
    let trace = mint_trace_id();
    let mut root = state.recorder.root(&trace, None, "fleet.repair_round");
    root.attr("route", "repair");
    let report = repair_round_inner(state);
    root.attr("tables_seen", report.tables_seen.to_string());
    root.attr("under_replicated", report.under_replicated.to_string());
    root.attr("repaired", report.repaired.to_string());
    root.attr("deletes_propagated", report.deletes_propagated.to_string());
    root.attr("strays_collected", report.strays_collected.to_string());
    root.attr("failed", report.failed.to_string());
    root.set_error(report.failed > 0);
    drop(root);
    // A round is *ok* when no repair leg failed; the stats feed the
    // router's `/healthz` (last-round age) and Prometheus exposition.
    state
        .repair_stats
        .record_round(round_started.elapsed(), report.failed == 0);
    report
}

fn repair_round_inner(state: &FleetState) -> RepairReport {
    let view = state.membership();
    let mut report = RepairReport::default();

    // Membership changed since the last round: every streak-based
    // decision (stray GC) starts over against the new ring.
    if state.repair_epoch.swap(view.epoch(), Ordering::Relaxed) != view.epoch() {
        state.repair_clean_streak.store(0, Ordering::Relaxed);
    }
    let gc_armed = state.repair_clean_streak.load(Ordering::Relaxed) >= GC_GRACE_ROUNDS;

    // Who holds what (with each copy's ingest timestamp) and who has
    // buried what (delete tombstones), asking every member — even
    // unhealthy ones: a backend the prober has marked down may still
    // answer and serve as a repair *source*; it just won't be a repair
    // *target*. Scattered in parallel, like the router's own
    // scatter-gather: one wedged member costs the round its own
    // timeout, not a serialized sum that would delay re-materialization
    // of every other table.
    type Gathered = (
        std::io::Result<(u16, String)>,
        std::io::Result<(u16, String)>,
    );
    let listings: Vec<Gathered> = std::thread::scope(|s| {
        let handles: Vec<_> = view
            .backends()
            .iter()
            .map(|b| {
                s.spawn(move || {
                    (
                        forward(state, b, "GET", "/tables", None),
                        forward(state, b, "GET", "/tombstones", None),
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("repair scatter thread panicked"))
            .collect()
    });
    let mut holders: std::collections::HashMap<String, Vec<(Arc<Backend>, u64)>> =
        std::collections::HashMap::new();
    let mut buried: std::collections::HashMap<String, u64> = std::collections::HashMap::new();
    for (backend, (tables_result, tombstones_result)) in view.backends().iter().zip(listings) {
        if let Ok((200, body)) = tables_result {
            if let Ok(v) = serde_json::from_str_value(&body) {
                for t in v
                    .get("tables")
                    .and_then(Value::as_array)
                    .unwrap_or_default()
                {
                    if let Some(name) = t.get("name").and_then(Value::as_str) {
                        let ts = t.get("ts").and_then(Value::as_u64).unwrap_or(0);
                        holders
                            .entry(name.to_string())
                            .or_default()
                            .push((Arc::clone(backend), ts));
                    }
                }
            }
        }
        if let Ok((200, body)) = tombstones_result {
            if let Ok(v) = serde_json::from_str_value(&body) {
                for t in v
                    .get("tombstones")
                    .and_then(Value::as_array)
                    .unwrap_or_default()
                {
                    let (Some(name), Some(ts)) = (
                        t.get("table").and_then(Value::as_str),
                        t.get("ts").and_then(Value::as_u64),
                    ) else {
                        continue;
                    };
                    let slot = buried.entry(name.to_string()).or_insert(ts);
                    *slot = (*slot).max(ts);
                }
            }
        }
    }
    report.tables_seen = holders.len();

    for (table, holding) in &mut holders {
        // Last writer wins, fleet-wide: a delete tombstone strictly
        // newer than every live copy's ingest means the table was
        // deleted and some holder (absent during the delete, rejoined
        // with its WAL replayed) is trying to resurrect it. Propagate
        // the delete to the stale holders instead of re-replicating
        // their copy. A re-create *after* the delete carries a newer
        // ingest timestamp and falls through to normal repair.
        let live_max = holding.iter().map(|(_, ts)| *ts).max().unwrap_or(0);
        if buried.get(table).copied().unwrap_or(0) > live_max {
            let path = format!("/tables/{table}");
            for (stale, _) in holding.iter() {
                match forward(state, stale, "DELETE", &path, None) {
                    Ok((status, _)) if (200..300).contains(&status) || status == 404 => {
                        report.deletes_propagated += 1;
                        state.metrics.deletes_propagated_total.inc();
                    }
                    _ => {
                        report.failed += 1;
                        state.metrics.repair_failures_total.inc();
                    }
                }
            }
            continue;
        }
        // Prefer the newest copy as the repair source (a stale-but-live
        // holder must not win the export race against a fresher one).
        holding.sort_by_key(|h| std::cmp::Reverse(h.1));
        // Desired holders: first R distinct *healthy* backends clockwise
        // from the table's hash. Walking the full ring (not just the
        // nominal replica set) is what makes repair match read failover:
        // with a dead nominal replica, reads spill onto the next healthy
        // backend in ring order, and that is exactly where the copy is
        // re-materialized.
        let walk = view.replicas_for(table, view.backends().len());
        let targets: Vec<&Arc<Backend>> = walk
            .iter()
            .filter(|b| b.is_healthy())
            .take(state.replication())
            .collect();
        let missing: Vec<&Arc<Backend>> = targets
            .iter()
            .copied()
            .filter(|t| !holding.iter().any(|(h, _)| Arc::ptr_eq(h, t)))
            .collect();
        if missing.is_empty() {
            // Fully replicated on its desired set: any other holder is
            // a stray the ring walked away from. Collect it only after
            // the grace streak (see GC_GRACE_ROUNDS), and with the
            // stray-delete variant whose tombstone cannot outrank the
            // live copies.
            if gc_armed {
                let path = format!("/tables/{table}?stray=true");
                for (stray, _) in holding
                    .iter()
                    .filter(|(h, _)| !targets.iter().any(|t| Arc::ptr_eq(h, t)))
                {
                    match forward(state, stray, "DELETE", &path, None) {
                        Ok((status, _)) if (200..300).contains(&status) || status == 404 => {
                            report.strays_collected += 1;
                            state.metrics.strays_collected_total.inc();
                        }
                        _ => {
                            report.failed += 1;
                            state.metrics.repair_failures_total.inc();
                        }
                    }
                }
            }
            continue;
        }
        report.under_replicated += 1;

        // Export the source CSV from the freshest current holder first
        // (the list is sorted newest-first above). Holders without CSV
        // provenance (in-process registrations) answer 404; try the
        // next one.
        let csv_path = format!("/tables/{table}/csv");
        let csv = holding.iter().find_map(|(source, _)| {
            match forward(state, source, "GET", &csv_path, None) {
                Ok((200, body)) => serde_json::from_str_value(&body)
                    .ok()?
                    .get("csv")?
                    .as_str()
                    .map(str::to_string),
                _ => None,
            }
        });
        let Some(csv) = csv else {
            report.failed += missing.len();
            state
                .metrics
                .repair_failures_total
                .add(missing.len() as u64);
            continue;
        };
        let replicate_body =
            serde_json::to_string(&Value::Object(vec![("csv".into(), Value::String(csv))]))
                .expect("replicate bodies always render");
        let put_path = format!("/tables/{table}");
        for target in missing {
            match forward(state, target, "PUT", &put_path, Some(&replicate_body)) {
                Ok((status, _)) if (200..300).contains(&status) => {
                    report.repaired += 1;
                    state.metrics.repairs_total.inc();
                }
                _ => {
                    report.failed += 1;
                    state.metrics.repair_failures_total.inc();
                }
            }
        }
    }

    // Advance (or reset) the clean streak the stray GC is gated on. GC
    // legs themselves don't dirty a round — collecting a stray is
    // steady-state housekeeping, not instability.
    let clean =
        report.under_replicated == 0 && report.failed == 0 && report.deletes_propagated == 0;
    if clean {
        state.repair_clean_streak.fetch_add(1, Ordering::Relaxed);
    } else {
        state.repair_clean_streak.store(0, Ordering::Relaxed);
    }
    report
}

/// A running repair thread; stops (and joins) on [`Repairer::stop`] or
/// drop.
pub struct Repairer {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Repairer {
    /// Starts a repair round against `state` every `interval`.
    pub fn start(state: Arc<FleetState>, interval: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("ziggy-fleet-repair".into())
            .spawn(move || {
                let mut last_report: Option<RepairReport> = None;
                while !stop_flag.load(Ordering::Relaxed) {
                    let report = repair_round(&state);
                    // Log transitions, not steady states: a permanently
                    // unrepairable table (e.g. an R=1 table whose only
                    // holder died) fails identically every round, and
                    // repeating that line twice a second would bury the
                    // supervisor's stderr. The failure counters in
                    // /metrics keep counting either way.
                    let noteworthy = report.repaired > 0
                        || report.failed > 0
                        || report.deletes_propagated > 0
                        || report.strays_collected > 0;
                    if noteworthy && last_report != Some(report) {
                        eprintln!(
                            "fleet repair: {} table(s) under-replicated, {} cop(y/ies) restored, {} delete(s) propagated, {} stray(s) collected, {} leg(s) failed",
                            report.under_replicated,
                            report.repaired,
                            report.deletes_propagated,
                            report.strays_collected,
                            report.failed
                        );
                    }
                    last_report = Some(report);
                    // Sleep in slices so shutdown never waits out a
                    // long repair interval.
                    let deadline = std::time::Instant::now() + interval;
                    while std::time::Instant::now() < deadline {
                        if stop_flag.load(Ordering::Relaxed) {
                            return;
                        }
                        std::thread::sleep(Duration::from_millis(20).min(interval));
                    }
                }
            })
            .expect("spawn repairer");
        Self {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the repair loop and joins its thread.
    pub fn stop(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Repairer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}
