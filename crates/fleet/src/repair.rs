//! The self-healing repair loop: re-materializes under-replicated
//! tables onto healthy backends.
//!
//! A dead process, a drained membership, or a freshly joined (empty)
//! backend all leave some tables with fewer than R **live** replicas.
//! Reads survive that through failover, but capacity and fault
//! tolerance are lost until someone re-materializes the data. This
//! module is that someone: a background thread that each round
//!
//! 1. asks every member backend what tables it holds (`GET /tables`,
//!    per backend — the same endpoint the router scatter-gathers),
//! 2. computes each table's *desired* holders: the first R **healthy**
//!    backends walking the ring clockwise from the table's hash — the
//!    same walk reads fail over along, so a repaired copy lands exactly
//!    where the next failing-over read will look,
//! 3. for each desired holder missing the table, exports the source CSV
//!    from any current holder (`GET /tables/{name}/csv` — the original
//!    upload bytes, verbatim) and replicates it over (`PUT
//!    /tables/{name}`).
//!
//! Every leg is idempotent: the replicate path matches CSV fingerprints,
//! so a repair racing a client retry, another router's repair loop, or a
//! concurrent ingest converges on one copy instead of conflicting —
//! repairing twice is merely wasted bandwidth, never wrong data. The
//! loop therefore needs no coordination, no leases, and no leader.
//!
//! Copies stranded on backends outside a table's replica set (after the
//! ring shifts under membership churn) are left in place: they cost
//! memory but serve correct bytes if the ring ever walks back onto
//! them. Garbage-collecting them is future work (ROADMAP).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use serde_json::Value;

use crate::backend::Backend;
use crate::router::{forward, FleetState};

/// Default interval between repair rounds.
pub const DEFAULT_REPAIR_INTERVAL: Duration = Duration::from_millis(500);

/// What one repair round observed and did (for logging and tests).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RepairReport {
    /// Distinct tables seen across all member backends.
    pub tables_seen: usize,
    /// Tables that were missing at least one desired live replica at
    /// the start of the round.
    pub under_replicated: usize,
    /// Successful re-materializations (one per table × backend pair).
    pub repaired: usize,
    /// Failed repair legs (source export or replicate refused/errored).
    pub failed: usize,
}

/// Runs one repair round against the current membership and returns
/// what it did. Exposed for tests and for callers that want to drive
/// repair synchronously (e.g. right after an admin membership change)
/// instead of waiting out the background interval.
pub fn repair_round(state: &FleetState) -> RepairReport {
    let round_started = std::time::Instant::now();
    let report = repair_round_inner(state);
    // A round is *ok* when no repair leg failed; the stats feed the
    // router's `/healthz` (last-round age) and Prometheus exposition.
    state
        .repair_stats
        .record_round(round_started.elapsed(), report.failed == 0);
    report
}

fn repair_round_inner(state: &FleetState) -> RepairReport {
    let view = state.membership();
    let mut report = RepairReport::default();

    // Who holds what, asking every member (even unhealthy ones — a
    // backend the prober has marked down may still answer and serve as
    // a repair *source*; it just won't be a repair *target*). Scattered
    // in parallel, like the router's own scatter-gather: one wedged
    // member costs the round its own timeout, not a serialized sum that
    // would delay re-materialization of every other table.
    let listings: Vec<std::io::Result<(u16, String)>> = std::thread::scope(|s| {
        let handles: Vec<_> = view
            .backends()
            .iter()
            .map(|b| s.spawn(move || forward(state, b, "GET", "/tables", None)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("repair scatter thread panicked"))
            .collect()
    });
    let mut holders: std::collections::HashMap<String, Vec<Arc<Backend>>> =
        std::collections::HashMap::new();
    for (backend, result) in view.backends().iter().zip(listings) {
        let Ok((200, body)) = result else {
            continue;
        };
        let Ok(v) = serde_json::from_str_value(&body) else {
            continue;
        };
        let Some(tables) = v.get("tables").and_then(Value::as_array) else {
            continue;
        };
        for t in tables {
            if let Some(name) = t.get("name").and_then(Value::as_str) {
                holders
                    .entry(name.to_string())
                    .or_default()
                    .push(Arc::clone(backend));
            }
        }
    }
    report.tables_seen = holders.len();

    for (table, holding) in &holders {
        // Desired holders: first R distinct *healthy* backends clockwise
        // from the table's hash. Walking the full ring (not just the
        // nominal replica set) is what makes repair match read failover:
        // with a dead nominal replica, reads spill onto the next healthy
        // backend in ring order, and that is exactly where the copy is
        // re-materialized.
        let walk = view.replicas_for(table, view.backends().len());
        let targets: Vec<&Arc<Backend>> = walk
            .iter()
            .filter(|b| b.is_healthy())
            .take(state.replication())
            .collect();
        let missing: Vec<&Arc<Backend>> = targets
            .into_iter()
            .filter(|t| !holding.iter().any(|h| Arc::ptr_eq(h, t)))
            .collect();
        if missing.is_empty() {
            continue;
        }
        report.under_replicated += 1;

        // Export the source CSV from any current holder. Holders without
        // CSV provenance (in-process registrations) answer 404; try the
        // next one.
        let csv_path = format!("/tables/{table}/csv");
        let csv = holding.iter().find_map(|source| {
            match forward(state, source, "GET", &csv_path, None) {
                Ok((200, body)) => serde_json::from_str_value(&body)
                    .ok()?
                    .get("csv")?
                    .as_str()
                    .map(str::to_string),
                _ => None,
            }
        });
        let Some(csv) = csv else {
            report.failed += missing.len();
            state
                .metrics
                .repair_failures_total
                .add(missing.len() as u64);
            continue;
        };
        let replicate_body =
            serde_json::to_string(&Value::Object(vec![("csv".into(), Value::String(csv))]))
                .expect("replicate bodies always render");
        let put_path = format!("/tables/{table}");
        for target in missing {
            match forward(state, target, "PUT", &put_path, Some(&replicate_body)) {
                Ok((status, _)) if (200..300).contains(&status) => {
                    report.repaired += 1;
                    state.metrics.repairs_total.inc();
                }
                _ => {
                    report.failed += 1;
                    state.metrics.repair_failures_total.inc();
                }
            }
        }
    }
    report
}

/// A running repair thread; stops (and joins) on [`Repairer::stop`] or
/// drop.
pub struct Repairer {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Repairer {
    /// Starts a repair round against `state` every `interval`.
    pub fn start(state: Arc<FleetState>, interval: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("ziggy-fleet-repair".into())
            .spawn(move || {
                let mut last_report: Option<RepairReport> = None;
                while !stop_flag.load(Ordering::Relaxed) {
                    let report = repair_round(&state);
                    // Log transitions, not steady states: a permanently
                    // unrepairable table (e.g. an R=1 table whose only
                    // holder died) fails identically every round, and
                    // repeating that line twice a second would bury the
                    // supervisor's stderr. The failure counters in
                    // /metrics keep counting either way.
                    let noteworthy = report.repaired > 0 || report.failed > 0;
                    if noteworthy && last_report != Some(report) {
                        eprintln!(
                            "fleet repair: {} table(s) under-replicated, {} cop(y/ies) restored, {} leg(s) failed",
                            report.under_replicated, report.repaired, report.failed
                        );
                    }
                    last_report = Some(report);
                    // Sleep in slices so shutdown never waits out a
                    // long repair interval.
                    let deadline = std::time::Instant::now() + interval;
                    while std::time::Instant::now() < deadline {
                        if stop_flag.load(Ordering::Relaxed) {
                            return;
                        }
                        std::thread::sleep(Duration::from_millis(20).min(interval));
                    }
                }
            })
            .expect("spawn repairer");
        Self {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the repair loop and joins its thread.
    pub fn stop(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Repairer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}
