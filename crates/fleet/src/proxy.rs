//! The keep-alive connection pool the router uses to talk to one
//! backend.
//!
//! Workers check a connection out, run one request, and return it; a
//! request that finds the pool empty pays one TCP connect. For
//! *idempotent* requests, IO errors on a pooled connection are retried
//! once on a *fresh* connection before being reported — a backend
//! restart or keep-alive timeout otherwise shows up as a spurious
//! failure for every connection the pool had cached. Non-idempotent
//! requests skip the pool entirely (see [`BackendPool::request`]).
//! Connect errors are never retried here: that is the router's failover
//! decision (try the next replica), not the pool's.

use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::Mutex;
use ziggy_serve::http::Client;

/// Max idle connections kept per backend; beyond this, returned
/// connections are simply closed.
const POOL_SIZE: usize = 16;

/// Connect budget for one proxy hop. Short: a dead backend must fail
/// over to the next replica within a fraction of a client's patience,
/// not after an OS default connect timeout.
const CONNECT_TIMEOUT: Duration = Duration::from_millis(500);

/// A snapshot of one pool's counters for `/metrics` (the threaded
/// pool's side of the connection-pool gauges; the reactor's mux pools
/// report separately).
#[derive(Debug, Clone, Copy, Default)]
pub struct PoolStats {
    /// Idle connections currently pooled.
    pub idle: u64,
    /// Requests served off a pooled connection.
    pub checkouts: u64,
    /// Requests that paid a TCP connect (pool empty or non-idempotent).
    pub fresh_connects: u64,
    /// Stale pooled sockets retried once on a fresh connection.
    pub retried_reconnects: u64,
}

/// A pool of keep-alive [`Client`] connections to one backend address.
pub struct BackendPool {
    addr: SocketAddr,
    idle: Mutex<Vec<Client>>,
    checkouts: AtomicU64,
    fresh_connects: AtomicU64,
    retried_reconnects: AtomicU64,
}

impl BackendPool {
    /// An empty pool for `addr` (connections are made on demand).
    pub fn new(addr: SocketAddr) -> Self {
        Self {
            addr,
            idle: Mutex::new(Vec::new()),
            checkouts: AtomicU64::new(0),
            fresh_connects: AtomicU64::new(0),
            retried_reconnects: AtomicU64::new(0),
        }
    }

    /// Counter snapshot for `/metrics`.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            idle: self.idle.lock().len() as u64,
            checkouts: self.checkouts.load(Ordering::Relaxed),
            fresh_connects: self.fresh_connects.load(Ordering::Relaxed),
            retried_reconnects: self.retried_reconnects.load(Ordering::Relaxed),
        }
    }

    /// Closes all idle connections (called when the backend trips
    /// unhealthy, so a later recovery starts from fresh sockets).
    pub fn drain(&self) {
        self.idle.lock().clear();
    }

    /// Idle connections currently pooled.
    pub fn idle_len(&self) -> usize {
        self.idle.lock().len()
    }

    /// Sends one request over a pooled (or fresh) connection and returns
    /// the backend's `(status, body)`.
    ///
    /// `idempotent` declares whether the request may be transparently
    /// re-sent: a failure on a pooled connection is ambiguous (the
    /// backend may have already executed the request before the socket
    /// died), so only requests the caller marks idempotent take the
    /// pooled-socket fast path with its retry-on-fresh-connection
    /// recovery. Non-idempotent requests (session create/step) always
    /// use a fresh connection — one connect's latency buys the guarantee
    /// that this layer never executes them twice.
    pub fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
        idempotent: bool,
    ) -> io::Result<(u16, String)> {
        let (status, _, body) = self.request_with_headers(method, path, &[], body, idempotent)?;
        Ok((status, body))
    }

    /// [`BackendPool::request`] carrying extra request headers and
    /// returning the backend's response headers (lower-cased names) —
    /// the conditional-request proxy path: the router forwards the
    /// client's `If-None-Match` and relays the backend's `ETag` (and a
    /// `304`) unchanged.
    pub fn request_with_headers(
        &self,
        method: &str,
        path: &str,
        extra_headers: &[(&str, &str)],
        body: Option<&str>,
        idempotent: bool,
    ) -> io::Result<ziggy_serve::http::FullResponse> {
        if idempotent {
            // Pop in its own statement: an `if let` scrutinee would keep
            // the lock guard alive across the body, and `put_back`
            // re-locks.
            let pooled = self.idle.lock().pop();
            if let Some(mut client) = pooled {
                self.checkouts.fetch_add(1, Ordering::Relaxed);
                // On error the socket was a stale keep-alive (backend
                // restarted, or its idle timeout closed us): fall
                // through to a fresh connection rather than reporting a
                // failure.
                if let Ok(response) = client.request_with_headers(method, path, extra_headers, body)
                {
                    self.put_back(client);
                    return Ok(response);
                }
                self.retried_reconnects.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.fresh_connects.fetch_add(1, Ordering::Relaxed);
        let mut client = Client::connect_with_timeout(self.addr, CONNECT_TIMEOUT)?;
        // `connect` sets TCP_NODELAY already; re-assert it so the
        // no-Nagle contract on upstream hops is explicit here too.
        let _ = client.set_nodelay(true);
        let response = client.request_with_headers(method, path, extra_headers, body)?;
        self.put_back(client);
        Ok(response)
    }

    fn put_back(&self, client: Client) {
        let mut idle = self.idle.lock();
        if idle.len() < POOL_SIZE {
            idle.push(client);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ziggy_serve::{serve, ServeOptions};

    #[test]
    fn pools_reuse_connections() {
        let server = serve("127.0.0.1:0", ServeOptions::default()).unwrap();
        let pool = BackendPool::new(server.local_addr());
        for _ in 0..3 {
            let (status, body) = pool.request("GET", "/healthz", None, true).unwrap();
            assert_eq!(status, 200);
            assert!(body.contains(r#""status":"ok""#), "{body}");
        }
        assert_eq!(pool.idle_len(), 1, "sequential requests share one conn");
        let stats = pool.stats();
        assert_eq!(stats.idle, 1);
        assert_eq!(stats.fresh_connects, 1, "only the first request connects");
        assert_eq!(stats.checkouts, 2, "later requests ride the pooled conn");
        assert_eq!(stats.retried_reconnects, 0);
        server.shutdown();
    }

    #[test]
    fn stale_pooled_connections_retry_on_fresh_socket() {
        // First server dies after priming the pool...
        let server = serve("127.0.0.1:0", ServeOptions::default()).unwrap();
        let addr = server.local_addr();
        let pool = BackendPool::new(addr);
        pool.request("GET", "/healthz", None, true).unwrap();
        assert_eq!(pool.idle_len(), 1);
        server.shutdown();
        // ...and a replacement binds the same port (retry loop: the OS
        // may briefly hold the port).
        let replacement = (0..50).find_map(|_| {
            std::thread::sleep(Duration::from_millis(20));
            serve(addr, ServeOptions::default()).ok()
        });
        let Some(replacement) = replacement else {
            // Port was re-taken by another process: nothing to assert.
            return;
        };
        let (status, _) = pool
            .request("GET", "/healthz", None, true)
            .expect("stale socket must be retried on a fresh connection");
        assert_eq!(status, 200);
        assert_eq!(pool.stats().retried_reconnects, 1);
        replacement.shutdown();
    }

    #[test]
    fn connect_errors_surface_to_the_caller() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let dead = listener.local_addr().unwrap();
        drop(listener);
        let pool = BackendPool::new(dead);
        assert!(pool.request("GET", "/healthz", None, true).is_err());
    }
}
