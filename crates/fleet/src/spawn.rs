//! Local backend process supervision for dev fleets and tests.
//!
//! Spawns a `ziggy serve` child on an ephemeral port and learns the
//! bound address through a `--port-file` handshake: the child writes
//! `host:port` to a temp file once its listener is up, which is both
//! race-free (no guessing free ports) and parser-free (no scraping
//! stdout). Children are killed (and reaped) on drop so a panicking
//! test cannot leak server processes.

use std::io;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// How long to wait for a spawned backend to write its port file.
const SPAWN_DEADLINE: Duration = Duration::from_secs(30);

static SPAWN_SEQ: AtomicU64 = AtomicU64::new(0);

/// A supervised local `ziggy serve` process.
pub struct BackendProcess {
    id: String,
    addr: SocketAddr,
    child: Child,
}

impl std::fmt::Debug for BackendProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BackendProcess")
            .field("id", &self.id)
            .field("addr", &self.addr)
            .field("pid", &self.child.id())
            .finish()
    }
}

impl BackendProcess {
    /// Spawns `binary serve --addr 127.0.0.1:0 --port-file <tmp>` plus
    /// `extra_args`, and waits for the handshake. `id` becomes the
    /// backend's fleet id.
    pub fn spawn(binary: &Path, id: impl Into<String>, extra_args: &[&str]) -> io::Result<Self> {
        let id = id.into();
        let port_file = port_file_path(&id);
        let _ = std::fs::remove_file(&port_file);
        let mut child = Command::new(binary)
            .arg("serve")
            .args(["--addr", "127.0.0.1:0"])
            .args(["--port-file", &port_file.to_string_lossy()])
            .args(extra_args)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()?;
        match wait_for_port_file(&port_file, &mut child) {
            Ok(addr) => {
                let _ = std::fs::remove_file(&port_file);
                Ok(Self { id, addr, child })
            }
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                let _ = std::fs::remove_file(&port_file);
                Err(e)
            }
        }
    }

    /// The backend's fleet id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The child's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The child's OS pid.
    pub fn pid(&self) -> u32 {
        self.child.id()
    }

    /// Whether the process is still running (reaps it if it exited).
    pub fn is_alive(&mut self) -> bool {
        matches!(self.child.try_wait(), Ok(None))
    }

    /// Kills and reaps the process (idempotent).
    pub fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for BackendProcess {
    fn drop(&mut self) {
        self.kill();
    }
}

/// One supervision round with **restart-with-rejoin**: every child that
/// has exited is respawned under its old id on a fresh ephemeral port,
/// the dead incarnation is dropped from the router's membership, and the
/// new one is added (two epoch bumps). The respawned process comes up
/// *empty* (unless spawned onto a `--data-dir`, in which case it
/// replays its WAL — see [`restart_dead_children_with`]); the repair
/// loop then re-ingests its shard — every table whose replica walk
/// lands on it — from the surviving holders, so a crash-restart cycle
/// converges back to R live replicas without any operator action.
/// Returns the ids that were restarted.
///
/// Failures are contained: a child whose respawn fails stays dead in
/// `children` (and out of the membership) and is retried on the next
/// round.
pub fn restart_dead_children(
    binary: &Path,
    children: &mut [BackendProcess],
    state: &crate::router::FleetState,
    extra_args: &[&str],
) -> Vec<String> {
    let owned: Vec<String> = extra_args.iter().map(|s| s.to_string()).collect();
    restart_dead_children_with(binary, children, state, &|_| owned.clone())
}

/// [`restart_dead_children`] with per-child arguments: `extra_args_for`
/// receives each dead child's id and returns the args its replacement
/// is spawned with. This is how a durable fleet restarts a child onto
/// *its own* `--data-dir` (keyed by id), so the replacement replays the
/// dead incarnation's WAL instead of coming up empty.
pub fn restart_dead_children_with(
    binary: &Path,
    children: &mut [BackendProcess],
    state: &crate::router::FleetState,
    extra_args_for: &dyn Fn(&str) -> Vec<String>,
) -> Vec<String> {
    let mut restarted = Vec::new();
    for child in children.iter_mut() {
        if child.is_alive() {
            continue;
        }
        let id = child.id().to_string();
        let args = extra_args_for(&id);
        let arg_refs: Vec<&str> = args.iter().map(String::as_str).collect();
        match BackendProcess::spawn(binary, &id, &arg_refs) {
            Ok(replacement) => {
                // Remove-then-add under the same id: the dead
                // incarnation's ring slots are re-pointed at the new
                // address. (If an admin already removed the id, the
                // remove is a no-op and the add re-joins it.)
                state.remove_backend(&id);
                match state.add_backend(&id, replacement.addr()) {
                    Ok((_, epoch)) => {
                        eprintln!(
                            "backend {id} restarted (pid {}) on {}; rejoined the ring at epoch {epoch}",
                            replacement.pid(),
                            replacement.addr(),
                        );
                        *child = replacement;
                        restarted.push(id);
                    }
                    Err(e) => {
                        // Cannot happen after the remove above, but if
                        // it ever does, don't leak the process.
                        eprintln!("backend {id} restarted but could not rejoin: {e}");
                    }
                }
            }
            Err(e) => eprintln!("backend {id} exited and respawn failed: {e}"),
        }
    }
    restarted
}

fn port_file_path(id: &str) -> PathBuf {
    // pid + sequence makes the name unique across concurrent tests even
    // when they reuse backend ids.
    let seq = SPAWN_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "ziggy-fleet-{}-{seq}-{id}.port",
        std::process::id()
    ))
}

fn wait_for_port_file(path: &Path, child: &mut Child) -> io::Result<SocketAddr> {
    let deadline = Instant::now() + SPAWN_DEADLINE;
    loop {
        if let Ok(text) = std::fs::read_to_string(path) {
            let text = text.trim();
            if !text.is_empty() {
                return text.parse().map_err(|_| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("malformed port file: {text:?}"),
                    )
                });
            }
        }
        if let Ok(Some(status)) = child.try_wait() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("backend exited during startup: {status}"),
            ));
        }
        if Instant::now() >= deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "backend did not write its port file in time",
            ));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}
