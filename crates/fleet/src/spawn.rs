//! Local backend process supervision for dev fleets and tests.
//!
//! Spawns a `ziggy serve` child on an ephemeral port and learns the
//! bound address through a `--port-file` handshake: the child writes
//! `host:port` to a temp file once its listener is up, which is both
//! race-free (no guessing free ports) and parser-free (no scraping
//! stdout). Children are killed (and reaped) on drop so a panicking
//! test cannot leak server processes.

use std::io;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// How long to wait for a spawned backend to write its port file.
const SPAWN_DEADLINE: Duration = Duration::from_secs(30);

static SPAWN_SEQ: AtomicU64 = AtomicU64::new(0);

/// A supervised local `ziggy serve` process.
pub struct BackendProcess {
    id: String,
    addr: SocketAddr,
    child: Child,
}

impl std::fmt::Debug for BackendProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BackendProcess")
            .field("id", &self.id)
            .field("addr", &self.addr)
            .field("pid", &self.child.id())
            .finish()
    }
}

impl BackendProcess {
    /// Spawns `binary serve --addr 127.0.0.1:0 --port-file <tmp>` plus
    /// `extra_args`, and waits for the handshake. `id` becomes the
    /// backend's fleet id.
    pub fn spawn(binary: &Path, id: impl Into<String>, extra_args: &[&str]) -> io::Result<Self> {
        let id = id.into();
        let port_file = port_file_path(&id);
        let _ = std::fs::remove_file(&port_file);
        let mut child = Command::new(binary)
            .arg("serve")
            .args(["--addr", "127.0.0.1:0"])
            .args(["--port-file", &port_file.to_string_lossy()])
            .args(extra_args)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()?;
        match wait_for_port_file(&port_file, &mut child) {
            Ok(addr) => {
                let _ = std::fs::remove_file(&port_file);
                Ok(Self { id, addr, child })
            }
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                let _ = std::fs::remove_file(&port_file);
                Err(e)
            }
        }
    }

    /// The backend's fleet id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The child's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The child's OS pid.
    pub fn pid(&self) -> u32 {
        self.child.id()
    }

    /// Whether the process is still running (reaps it if it exited).
    pub fn is_alive(&mut self) -> bool {
        matches!(self.child.try_wait(), Ok(None))
    }

    /// Kills and reaps the process (idempotent).
    pub fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for BackendProcess {
    fn drop(&mut self) {
        self.kill();
    }
}

fn port_file_path(id: &str) -> PathBuf {
    // pid + sequence makes the name unique across concurrent tests even
    // when they reuse backend ids.
    let seq = SPAWN_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "ziggy-fleet-{}-{seq}-{id}.port",
        std::process::id()
    ))
}

fn wait_for_port_file(path: &Path, child: &mut Child) -> io::Result<SocketAddr> {
    let deadline = Instant::now() + SPAWN_DEADLINE;
    loop {
        if let Ok(text) = std::fs::read_to_string(path) {
            let text = text.trim();
            if !text.is_empty() {
                return text.parse().map_err(|_| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("malformed port file: {text:?}"),
                    )
                });
            }
        }
        if let Ok(Some(status)) = child.try_wait() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("backend exited during startup: {status}"),
            ));
        }
        if Instant::now() >= deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "backend did not write its port file in time",
            ));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}
