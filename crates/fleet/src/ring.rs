//! The consistent-hash ring that places tables on backends.
//!
//! Classic Karger-style construction: every backend contributes
//! [`HashRing::vnodes`] virtual points on a 64-bit ring (finalized
//! FNV-1a of `"{id}\0{vnode}"` — a fixed, documented hash, because
//! placement must agree across router processes and `DefaultHasher`
//! makes no such promise). A key maps to the first point at or after
//! its own hash; its R replicas are the next R *distinct* backends
//! walking clockwise.
//!
//! The properties the fleet depends on (locked down by
//! `tests/ring_props.rs`):
//!
//! * **Determinism** — placement is a pure function of the backend id
//!   set, the vnode count, and the key; routers built independently over
//!   the same membership agree.
//! * **Balance** — with enough virtual nodes, key ownership spreads
//!   across backends within a constant factor of the fair share.
//! * **Bounded remapping** — removing a backend only moves keys that
//!   backend owned (~1/N of them); adding one only moves keys onto the
//!   newcomer. Everything else keeps its placement, which is what makes
//!   membership changes cheap for a cache-heavy workload.

/// Default number of virtual nodes per backend. 128 keeps the expected
/// per-backend load within a few percent of fair for small fleets while
/// the whole ring still fits in a couple of cache lines per backend.
pub const DEFAULT_VNODES: usize = 128;

/// The ring's point/key hash: FNV-1a with a murmur-style 64-bit
/// finalizer. Plain FNV-1a is fine as a fingerprint but avalanches
/// poorly on short, similar strings (`shard-0`, `shard-1`, …), which
/// showed up as >3x load imbalance in the balance property test; the
/// finalizer fixes the bit diffusion while staying deterministic and
/// dependency-free.
fn ring_hash(bytes: &[u8]) -> u64 {
    let mut h = ziggy_serve::fnv1a_64(bytes);
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

/// An immutable consistent-hash ring over backend indices `0..n`.
///
/// Membership is fixed at construction; the fleet treats an unhealthy
/// backend as *present but unavailable* (its keys fail over to the next
/// replica in ring order) rather than rebuilding the ring, so a flapping
/// backend cannot churn placement. Rebalancing on permanent membership
/// change is a deliberate non-goal for now (see ROADMAP).
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point hash, backend index)`, sorted by hash.
    points: Vec<(u64, usize)>,
    n_backends: usize,
    vnodes: usize,
}

impl HashRing {
    /// Builds a ring over `backend_ids` with `vnodes` virtual nodes per
    /// backend (clamped to at least 1).
    pub fn build(backend_ids: &[String], vnodes: usize) -> Self {
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(backend_ids.len() * vnodes);
        for (index, id) in backend_ids.iter().enumerate() {
            for vnode in 0..vnodes {
                let mut label = Vec::with_capacity(id.len() + 9);
                label.extend_from_slice(id.as_bytes());
                label.push(0); // Separator: "ab"+"c" must differ from "a"+"bc".
                label.extend_from_slice(&(vnode as u64).to_le_bytes());
                points.push((ring_hash(&label), index));
            }
        }
        // Ties broken by backend index so construction order cannot make
        // two routers disagree (hash collisions are vanishingly rare but
        // determinism must not depend on that).
        points.sort_unstable();
        Self {
            points,
            n_backends: backend_ids.len(),
            vnodes,
        }
    }

    /// Number of backends on the ring.
    pub fn len(&self) -> usize {
        self.n_backends
    }

    /// True when the ring has no backends.
    pub fn is_empty(&self) -> bool {
        self.n_backends == 0
    }

    /// Virtual nodes per backend.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// The backend owning `key` (the first of its replica list), or
    /// `None` on an empty ring.
    pub fn primary_for(&self, key: &str) -> Option<usize> {
        self.replicas_for(key, 1).first().copied()
    }

    /// The first `r` *distinct* backends clockwise from `key`'s hash —
    /// the key's replica set, in failover order. Returns fewer than `r`
    /// when the ring has fewer backends.
    pub fn replicas_for(&self, key: &str, r: usize) -> Vec<usize> {
        if self.points.is_empty() || r == 0 {
            return Vec::new();
        }
        let want = r.min(self.n_backends);
        let hash = ring_hash(key.as_bytes());
        // First point at or after the key's hash, wrapping at the top.
        let start = self.points.partition_point(|&(h, _)| h < hash) % self.points.len();
        let mut replicas = Vec::with_capacity(want);
        for offset in 0..self.points.len() {
            let (_, backend) = self.points[(start + offset) % self.points.len()];
            if !replicas.contains(&backend) {
                replicas.push(backend);
                if replicas.len() == want {
                    break;
                }
            }
        }
        replicas
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("shard-{i}")).collect()
    }

    #[test]
    fn deterministic_across_builds() {
        let a = HashRing::build(&ids(5), 64);
        let b = HashRing::build(&ids(5), 64);
        for key in ["crime", "boxoffice", "t-42"] {
            assert_eq!(a.replicas_for(key, 3), b.replicas_for(key, 3));
        }
    }

    #[test]
    fn replicas_are_distinct_and_capped() {
        let ring = HashRing::build(&ids(4), 32);
        let reps = ring.replicas_for("crime", 3);
        assert_eq!(reps.len(), 3);
        let mut sorted = reps.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "replicas must be distinct backends");
        // Asking for more replicas than backends returns all of them.
        assert_eq!(ring.replicas_for("crime", 10).len(), 4);
    }

    #[test]
    fn empty_ring_routes_nowhere() {
        let ring = HashRing::build(&[], 64);
        assert!(ring.is_empty());
        assert!(ring.primary_for("x").is_none());
        assert!(ring.replicas_for("x", 2).is_empty());
    }

    #[test]
    fn single_backend_owns_everything() {
        let ring = HashRing::build(&ids(1), 8);
        for key in ["a", "b", "c"] {
            assert_eq!(ring.primary_for(key), Some(0));
        }
    }
}
