//! The router's event-driven data plane.
//!
//! The hot proxy path (`POST /tables/{t}/characterize`) is a pure relay:
//! parse a request head, pick a replica, copy bytes upstream, copy the
//! response back. A thread-per-connection router spends most of its time
//! parked in blocking reads, and under keep-alive benchmark load the
//! thread pool itself becomes the bottleneck (`N` clients need `N`
//! dedicated threads plus one blocked upstream socket each).
//!
//! This module replaces that with a single-threaded epoll reactor
//! (`shims/mio`) driving every socket as a state machine:
//!
//! ```text
//!            ┌────────────────────── reactor thread ───────────────────┐
//!  clients ──▶ accept ─▶ ClientConn {rbuf ─▶ pipeline ─▶ wbuf}         │
//!            │              │ hot (characterize)     │ everything else │
//!            │              ▼                        ▼                 │
//!            │           Relay ─▶ UpstreamConn    mpsc ─▶ worker pool  │
//!            │              (mux keep-alive pool)   (blocking handler) │
//!            └─────────────────────────────────────────────────────────┘
//! ```
//!
//! * **Zero-copy relay** — request and response bodies move as byte
//!   ranges between buffers; the hot path never materializes an
//!   intermediate `String` or re-parses the backend's JSON.
//! * **Multiplexed upstream pools** — each backend gets a small set of
//!   keep-alive connections; multiple client requests pipeline onto one
//!   upstream socket (HTTP/1.1 responses come back in order, so a
//!   per-connection FIFO of relay ids reunites them).
//! * **Keep-alive + pipelining on the client side** — a client may send
//!   many requests on one connection without waiting; responses are
//!   queued per-connection and flushed strictly in request order.
//! * **Threaded control plane** — admin, sessions, scatter-gather,
//!   metrics, and every other route offload to a small worker pool
//!   running the same handler closure the threaded server used; only
//!   the latency-critical relay lives on the event loop.
//!
//! Failover, tracing, metrics, logging, and throttling on the hot path
//! mirror the threaded router exactly (same counters, same span shapes,
//! same fallback rules as [`crate::router`]'s `proxy_read_with_failover`),
//! so observability output is indistinguishable from the threaded path.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use mio::{Events, Interest, Poll, Registry, Token, Waker};
use parking_lot::Mutex;
use serde_json::{Number, Value};
use ziggy_obs::span::{self, Span, SPAN_CONTEXT_HEADER};
use ziggy_obs::trace::{mint_trace_id, sanitize_trace_id, TRACE_HEADER};
use ziggy_serve::http::{
    encode_response, reason, try_parse_request, try_parse_response_head, EdgeObserver, Handler,
    Request, ResponseHead,
};
use ziggy_serve::{AccessLog, RateLimiter, Response};

use crate::backend::Backend;
use crate::router::{fleet_route_key, FleetState};

/// Max concurrent client connections the reactor tracks; beyond this,
/// new connections get an immediate 503 and close (same contract as the
/// threaded server's over-capacity refusal).
const MAX_CONNS: usize = 1024;

/// Max requests a single client connection may have in flight
/// (pipelined) before the reactor stops reading from it. Responses
/// always flush in request order, so this bounds per-connection memory.
const CLIENT_PIPELINE_CAP: usize = 32;

/// Max in-flight requests multiplexed onto one upstream connection
/// before the pool opens another.
const UPSTREAM_DEPTH: usize = 32;

/// Max keep-alive connections per backend.
const UPSTREAM_CONNS_PER_BACKEND: usize = 8;

/// Idle client connections are closed after this long (matches the
/// threaded server's keep-alive timeout).
const CLIENT_IDLE_TIMEOUT: Duration = Duration::from_secs(60);

/// An upstream leg that has made no read progress for this long fails
/// the connection (and the relays on it fail over / retry).
const UPSTREAM_STALL_TIMEOUT: Duration = Duration::from_secs(30);

/// Idle upstream connections are closed before the backend's 60s
/// keep-alive timeout would close them under us mid-request.
const UPSTREAM_IDLE_TIMEOUT: Duration = Duration::from_secs(30);

/// Poll timeout: the reactor wakes at least this often to run sweeps.
const POLL_TIMEOUT: Duration = Duration::from_millis(500);

/// How often idle/stall sweeps run.
const SWEEP_INTERVAL: Duration = Duration::from_secs(1);

const TOKEN_LISTENER: Token = Token(0);
const TOKEN_WAKER: Token = Token(1);

/// Per-backend connection-pool gauge: how many reactor-owned upstream
/// connections exist and whether they are busy.
#[derive(Debug, Default, Clone, Copy)]
pub struct PoolGauge {
    /// Established connections with no request in flight.
    pub idle: u64,
    /// Connections carrying at least one in-flight request (including
    /// connections still completing their nonblocking connect).
    pub in_flight: u64,
}

/// Counters and gauges the event loop exports to `/metrics` (both the
/// JSON document's `dataplane` section and the Prometheus families).
#[derive(Debug, Default)]
pub struct DataPlaneStats {
    /// Reactor loop iterations (poll returns).
    pub loop_iterations: AtomicU64,
    /// Waker-driven wakeups (offload completions ready).
    pub wakeups: AtomicU64,
    /// Requests served on the event loop's zero-copy relay path.
    pub hot_requests: AtomicU64,
    /// Requests offloaded to the threaded control-plane workers.
    pub offloaded_requests: AtomicU64,
    /// Relay legs that rode an existing upstream connection.
    pub pool_checkouts: AtomicU64,
    /// Relay legs that opened a fresh upstream connection.
    pub pool_fresh_connects: AtomicU64,
    /// Relay legs transparently re-sent after a stale keep-alive
    /// connection died under them (same retry-once contract as
    /// [`crate::proxy::BackendPool`]).
    pub pool_retried_reconnects: AtomicU64,
    /// Per-backend connection gauges, refreshed by the reactor.
    pools: Mutex<HashMap<String, PoolGauge>>,
}

impl DataPlaneStats {
    /// Per-backend pool gauges, sorted by backend id.
    pub fn pool_gauges(&self) -> Vec<(String, PoolGauge)> {
        let mut v: Vec<(String, PoolGauge)> = self
            .pools
            .lock()
            .iter()
            .map(|(k, g)| (k.clone(), *g))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    fn set_pool_gauges(&self, gauges: HashMap<String, PoolGauge>) {
        *self.pools.lock() = gauges;
    }

    /// The `dataplane` section of the router's JSON `/metrics`.
    pub fn to_json(&self) -> Value {
        let n = |a: &AtomicU64| Value::Number(Number::U(a.load(Ordering::Relaxed)));
        let pools = self
            .pool_gauges()
            .into_iter()
            .map(|(id, g)| {
                (
                    id,
                    Value::Object(vec![
                        ("idle".into(), Value::Number(Number::U(g.idle))),
                        ("in_flight".into(), Value::Number(Number::U(g.in_flight))),
                    ]),
                )
            })
            .collect();
        Value::Object(vec![
            ("loop_iterations".into(), n(&self.loop_iterations)),
            ("wakeups".into(), n(&self.wakeups)),
            ("hot_requests_total".into(), n(&self.hot_requests)),
            (
                "offloaded_requests_total".into(),
                n(&self.offloaded_requests),
            ),
            ("pool_checkouts_total".into(), n(&self.pool_checkouts)),
            (
                "pool_fresh_connects_total".into(),
                n(&self.pool_fresh_connects),
            ),
            (
                "pool_retried_reconnects_total".into(),
                n(&self.pool_retried_reconnects),
            ),
            ("pools".into(), Value::Object(pools)),
        ])
    }
}

/// Configuration for [`DataPlane::start`].
pub struct DataPlaneConfig {
    /// Control-plane worker threads (for offloaded routes).
    pub threads: usize,
    /// Router-edge rate limiter, shared with the offload handler.
    pub limiter: Option<Arc<RateLimiter>>,
    /// Access log (the reactor writes hot-path lines itself).
    pub log: Arc<AccessLog>,
    /// Observer for edge rejections (over-capacity 503, malformed 400).
    pub edge: Option<EdgeObserver>,
}

/// A running event-loop router front-end: one reactor thread plus a
/// worker pool for the threaded control plane.
pub struct DataPlane {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    waker: Arc<Waker>,
    reactor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl DataPlane {
    /// Binds `addr` and starts the reactor. `handler` serves every
    /// non-hot route on the worker pool (it is the same closure the
    /// threaded server ran, so control-plane behavior is unchanged).
    pub fn start(
        addr: impl ToSocketAddrs,
        state: Arc<FleetState>,
        handler: Handler,
        config: DataPlaneConfig,
    ) -> io::Result<DataPlane> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let poll = Poll::new()?;
        let registry = poll.registry();
        registry.register(&listener, TOKEN_LISTENER, Interest::READABLE)?;
        let waker = Arc::new(Waker::new(&registry, TOKEN_WAKER)?);
        let stop = Arc::new(AtomicBool::new(false));
        let completions: Arc<Mutex<Vec<Completion>>> = Arc::new(Mutex::new(Vec::new()));
        let (jobs_tx, jobs_rx) = channel::<Job>();
        let jobs_rx = Arc::new(std::sync::Mutex::new(jobs_rx));
        let workers = (0..config.threads.max(1))
            .map(|i| {
                let rx = Arc::clone(&jobs_rx);
                let handler = Arc::clone(&handler);
                let completions = Arc::clone(&completions);
                let waker = Arc::clone(&waker);
                let stop = Arc::clone(&stop);
                std::thread::Builder::new()
                    .name(format!("fleet-ctl-{i}"))
                    .spawn(move || control_worker(rx, handler, completions, waker, stop))
            })
            .collect::<io::Result<Vec<_>>>()?;
        let reactor = {
            let stop = Arc::clone(&stop);
            let waker = Arc::clone(&waker);
            let stats = Arc::clone(&state.dataplane);
            std::thread::Builder::new()
                .name("fleet-reactor".into())
                .spawn(move || {
                    let mut reactor = Reactor {
                        poll,
                        listener,
                        state,
                        stats,
                        limiter: config.limiter,
                        log: config.log,
                        edge: config.edge,
                        stop,
                        waker,
                        jobs: jobs_tx,
                        completions,
                        conns: HashMap::new(),
                        next_conn: 1,
                        relays: HashMap::new(),
                        next_relay: 1,
                        upstreams: HashMap::new(),
                        next_upstream: 1,
                        pools: HashMap::new(),
                        last_sweep: Instant::now(),
                    };
                    reactor.run();
                })?
        };
        Ok(DataPlane {
            local_addr,
            stop,
            waker,
            reactor: Some(reactor),
            workers,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops the reactor and the worker pool, joining all threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.waker.wake();
        if let Some(h) = self.reactor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// One offloaded request, executed by a control-plane worker.
struct Job {
    conn: u64,
    seq: u64,
    req: Request,
    close: bool,
}

/// A finished offloaded response, ready to enqueue on its connection.
struct Completion {
    conn: u64,
    seq: u64,
    bytes: Vec<u8>,
    close: bool,
}

fn control_worker(
    rx: Arc<std::sync::Mutex<Receiver<Job>>>,
    handler: Handler,
    completions: Arc<Mutex<Vec<Completion>>>,
    waker: Arc<Waker>,
    stop: Arc<AtomicBool>,
) {
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let job = {
            let guard = match rx.lock() {
                Ok(g) => g,
                Err(_) => return,
            };
            match guard.recv_timeout(Duration::from_millis(100)) {
                Ok(job) => job,
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => continue,
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return,
            }
        };
        let response =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (handler)(&job.req)))
                .unwrap_or_else(|_| Response::new(500, r#"{"error":"internal server error"}"#));
        let bytes = encode_response(&response, job.close);
        completions.lock().push(Completion {
            conn: job.conn,
            seq: job.seq,
            bytes,
            close: job.close,
        });
        let _ = waker.wake();
    }
}

/// A response slot in a client connection's pipeline: filled when the
/// request's response is ready; flushed strictly in request order.
struct Slot {
    seq: u64,
    bytes: Option<Vec<u8>>,
    close: bool,
}

/// One accepted client connection as a state machine.
struct ClientConn {
    stream: TcpStream,
    token: Token,
    peer: Option<SocketAddr>,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    wpos: usize,
    pipeline: VecDeque<Slot>,
    next_seq: u64,
    /// Currently registered interest bits (bit 0 read, bit 1 write);
    /// 0 means deregistered.
    interest: u8,
    close_after_flush: bool,
    peer_closed: bool,
    last_activity: Instant,
}

impl ClientConn {
    fn slot_mut(&mut self, seq: u64) -> Option<&mut Slot> {
        self.pipeline.iter_mut().find(|s| s.seq == seq)
    }
}

/// One keep-alive upstream connection, multiplexing relays.
struct UpstreamConn {
    stream: TcpStream,
    token: Token,
    backend_id: String,
    addr: SocketAddr,
    connected: bool,
    /// At least one response completed on this connection — only then
    /// is a later failure "stale keep-alive" (retryable) rather than a
    /// backend refusing work.
    used: bool,
    wbuf: Vec<u8>,
    wpos: usize,
    rbuf: Vec<u8>,
    /// Relay ids in send order; HTTP/1.1 answers in order, so the front
    /// id owns the next response.
    inflight: VecDeque<u64>,
    interest: u8,
    last_activity: Instant,
}

/// One hot-path request in flight: the client slot it answers, the
/// replica candidates left to try, and the telemetry for its trace.
struct Relay {
    conn: u64,
    seq: u64,
    close: bool,
    table: String,
    path: String,
    body: Vec<u8>,
    if_none_match: Option<String>,
    trace: String,
    remote_parent: Option<String>,
    root_span_id: String,
    started: Instant,
    start_unix_us: u64,
    epoch: u64,
    candidates: Vec<Arc<Backend>>,
    next_candidate: usize,
    attempts: u64,
    reconnect_budget: u32,
    fallback: Option<(u16, Vec<u8>)>,
    backend: Option<Arc<Backend>>,
    leg_span_id: String,
    leg_started: Instant,
    leg_start_unix_us: u64,
}

fn now_unix_us() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

fn interest_bits(bits: u8) -> Interest {
    match bits {
        0b01 => Interest::READABLE,
        0b10 => Interest::WRITABLE,
        _ => Interest::READABLE.add(Interest::WRITABLE),
    }
}

/// Applies a desired-interest change via register/reregister/deregister
/// (0 bits = deregistered). Recomputing desired interest and touching
/// epoll only on change is what keeps level-triggered polling from busy
/// looping on permanently-writable sockets.
fn apply_interest(
    registry: &Registry,
    stream: &TcpStream,
    token: Token,
    current: &mut u8,
    desired: u8,
) {
    if desired == *current {
        return;
    }
    let result = match (*current, desired) {
        (_, 0) => registry.deregister(stream),
        (0, _) => registry.register(stream, token, interest_bits(desired)),
        _ => registry.reregister(stream, token, interest_bits(desired)),
    };
    if result.is_ok() {
        *current = desired;
    }
}

struct Reactor {
    poll: Poll,
    listener: TcpListener,
    state: Arc<FleetState>,
    stats: Arc<DataPlaneStats>,
    limiter: Option<Arc<RateLimiter>>,
    log: Arc<AccessLog>,
    edge: Option<EdgeObserver>,
    stop: Arc<AtomicBool>,
    waker: Arc<Waker>,
    jobs: Sender<Job>,
    completions: Arc<Mutex<Vec<Completion>>>,
    conns: HashMap<u64, ClientConn>,
    next_conn: u64,
    relays: HashMap<u64, Relay>,
    next_relay: u64,
    upstreams: HashMap<u64, UpstreamConn>,
    next_upstream: u64,
    /// Upstream connection ids per backend address.
    pools: HashMap<SocketAddr, Vec<u64>>,
    last_sweep: Instant,
}

/// Tokens 0/1 are the listener and waker; client and upstream tokens
/// encode their map key (`id * 4 + tag`) so no token table is needed.
fn client_token(id: u64) -> Token {
    Token((id as usize) * 4 + 2)
}

fn upstream_token(id: u64) -> Token {
    Token((id as usize) * 4 + 3)
}

impl Reactor {
    fn run(&mut self) {
        let mut events = Events::with_capacity(1024);
        while !self.stop.load(Ordering::SeqCst) {
            if self.poll.poll(&mut events, Some(POLL_TIMEOUT)).is_err() {
                continue;
            }
            self.stats.loop_iterations.fetch_add(1, Ordering::Relaxed);
            for event in &events {
                let token = event.token();
                match token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => {
                        self.stats.wakeups.fetch_add(1, Ordering::Relaxed);
                        self.waker.drain();
                    }
                    Token(raw) => {
                        let id = (raw / 4) as u64;
                        if raw % 4 == 2 {
                            self.on_client_event(id, event.is_readable(), event.is_writable());
                        } else {
                            self.on_upstream_event(
                                id,
                                event.is_readable(),
                                event.is_writable(),
                                event.is_error(),
                            );
                        }
                    }
                }
            }
            self.drain_completions();
            if self.last_sweep.elapsed() >= SWEEP_INTERVAL {
                self.sweep();
                self.last_sweep = Instant::now();
            }
            self.refresh_pool_gauges();
        }
    }

    // ---- accept path ----------------------------------------------

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, peer)) => self.accept_one(stream, Some(peer)),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn accept_one(&mut self, stream: TcpStream, peer: Option<SocketAddr>) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        // No-Nagle on the client edge: responses are single writes and
        // must not wait out a delayed-ACK window.
        let _ = stream.set_nodelay(true);
        let id = self.next_conn;
        self.next_conn += 1;
        let token = client_token(id);
        let over_capacity = self.conns.len() >= MAX_CONNS;
        let mut conn = ClientConn {
            stream,
            token,
            peer,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            pipeline: VecDeque::new(),
            next_seq: 0,
            interest: 0,
            close_after_flush: false,
            peer_closed: false,
            last_activity: Instant::now(),
        };
        if over_capacity {
            // Same contract as the threaded server's refusal: an
            // immediate 503 with a minted trace id, then close.
            let trace = mint_trace_id();
            let resp = Response::new(503, r#"{"error":"server at connection capacity"}"#)
                .with_header(TRACE_HEADER, trace.clone());
            conn.wbuf = encode_response(&resp, true);
            conn.close_after_flush = true;
            conn.peer_closed = true; // never read from it
            if let Some(observe) = &self.edge {
                observe(503, &trace);
            }
        }
        self.conns.insert(id, conn);
        self.update_client_interest(id);
    }

    // ---- client connection state machine --------------------------

    fn on_client_event(&mut self, id: u64, readable: bool, writable: bool) {
        if readable {
            self.read_client(id);
        }
        if writable {
            self.write_client(id);
        }
        self.update_client_interest(id);
    }

    fn read_client(&mut self, id: u64) {
        let mut buf = [0u8; 16 * 1024];
        loop {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            if conn.pipeline.len() >= CLIENT_PIPELINE_CAP {
                break;
            }
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    conn.peer_closed = true;
                    break;
                }
                Ok(n) => {
                    conn.rbuf.extend_from_slice(&buf[..n]);
                    conn.last_activity = Instant::now();
                    // A short read means the socket is (almost surely)
                    // drained; level-triggered epoll re-arms if not, so
                    // skip the confirming WouldBlock read.
                    if n < buf.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_client(id);
                    return;
                }
            }
        }
        self.parse_client_requests(id);
        if let Some(conn) = self.conns.get(&id) {
            // Peer EOF with nothing owed: drop our side too.
            if conn.peer_closed
                && conn.pipeline.is_empty()
                && conn.wpos >= conn.wbuf.len()
                && conn.rbuf.is_empty()
            {
                self.close_client(id);
            }
        }
    }

    fn parse_client_requests(&mut self, id: u64) {
        loop {
            let parsed = {
                let Some(conn) = self.conns.get_mut(&id) else {
                    return;
                };
                if conn.close_after_flush || conn.pipeline.len() >= CLIENT_PIPELINE_CAP {
                    return;
                }
                match try_parse_request(&conn.rbuf) {
                    Ok(None) => return,
                    Ok(Some((mut req, consumed))) => {
                        conn.rbuf.drain(..consumed);
                        req.peer = conn.peer;
                        req
                    }
                    Err(message) => {
                        // Malformed request: answer 400 once, then close
                        // (mirrors the threaded server's edge handling).
                        let trace = mint_trace_id();
                        let resp = Response::new(400, format!("{{\"error\":\"{message}\"}}"))
                            .with_header(TRACE_HEADER, trace.clone());
                        let seq = conn.next_seq;
                        conn.next_seq += 1;
                        conn.pipeline.push_back(Slot {
                            seq,
                            bytes: Some(encode_response(&resp, true)),
                            close: true,
                        });
                        conn.rbuf.clear();
                        if let Some(observe) = &self.edge {
                            observe(400, &trace);
                        }
                        self.flush_client(id);
                        return;
                    }
                }
            };
            self.dispatch(id, parsed);
        }
    }

    fn dispatch(&mut self, id: u64, req: Request) {
        let close = req
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"));
        let seq = {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            let seq = conn.next_seq;
            conn.next_seq += 1;
            conn.pipeline.push_back(Slot {
                seq,
                bytes: None,
                close,
            });
            seq
        };
        if let Some(table) = hot_table(&req) {
            self.stats.hot_requests.fetch_add(1, Ordering::Relaxed);
            self.start_hot(id, seq, close, table, req);
        } else {
            self.stats
                .offloaded_requests
                .fetch_add(1, Ordering::Relaxed);
            // Worker encodes the response (including Connection framing)
            // and posts a completion through the waker.
            let _ = self.jobs.send(Job {
                conn: id,
                seq,
                req,
                close,
            });
        }
    }

    // ---- hot path: zero-copy characterize relay -------------------

    fn start_hot(&mut self, conn: u64, seq: u64, close: bool, table: String, req: Request) {
        let started = Instant::now();
        let start_unix_us = now_unix_us();
        let span_ctx: Option<(String, String)> = req
            .header(SPAN_CONTEXT_HEADER)
            .and_then(span::parse_span_context)
            .map(|(t, p)| (t.to_string(), p.to_string()));
        let trace: String = match &span_ctx {
            Some((t, _)) => t.clone(),
            None => req
                .header(TRACE_HEADER)
                .and_then(sanitize_trace_id)
                .map(str::to_string)
                .unwrap_or_else(mint_trace_id),
        };
        let remote_parent = span_ctx.map(|(_, p)| p);
        self.state.recorder.open_trace(&trace);
        let root_span_id = mint_trace_id();
        let ctx = HotCtx {
            conn,
            seq,
            close,
            path: req.path.clone(),
            trace,
            remote_parent,
            root_span_id,
            started,
            start_unix_us,
        };
        if let Some(resp) = crate::throttle(&self.state, self.limiter.as_deref(), &req) {
            // Throttled: mirrors the threaded path, which records the
            // root span and log line but never reaches the routing
            // counters (`requests_total`/`errors_total` untouched).
            let extra: Vec<(String, String)> = resp.headers.clone();
            self.finish_hot(
                ctx,
                resp.status,
                resp.body.as_bytes().to_vec(),
                extra,
                None,
                None,
            );
            return;
        }
        self.state.metrics.requests_total.inc();
        let view = self.state.membership();
        let epoch = view.epoch();
        let candidates = self.state.read_order(&view, &table);
        if candidates.is_empty() {
            self.state.metrics.errors_total.inc();
            self.finish_hot(
                ctx,
                503,
                br#"{"error":"fleet has no backends"}"#.to_vec(),
                Vec::new(),
                Some(epoch),
                None,
            );
            return;
        }
        let relay_id = self.next_relay;
        self.next_relay += 1;
        let if_none_match = req.header("if-none-match").map(str::to_string);
        self.relays.insert(
            relay_id,
            Relay {
                conn: ctx.conn,
                seq: ctx.seq,
                close: ctx.close,
                table,
                path: ctx.path.clone(),
                body: req.body,
                if_none_match,
                trace: ctx.trace,
                remote_parent: ctx.remote_parent,
                root_span_id: ctx.root_span_id,
                started: ctx.started,
                start_unix_us: ctx.start_unix_us,
                epoch,
                candidates,
                next_candidate: 0,
                attempts: 0,
                reconnect_budget: 0,
                fallback: None,
                backend: None,
                leg_span_id: String::new(),
                leg_started: started,
                leg_start_unix_us: start_unix_us,
            },
        );
        self.start_attempt(relay_id, true);
    }

    /// Starts (or, with `fresh_leg == false`, transparently re-sends)
    /// the current candidate attempt for a relay.
    fn start_attempt(&mut self, relay_id: u64, fresh_leg: bool) {
        let (bytes, backend) = {
            let Some(relay) = self.relays.get_mut(&relay_id) else {
                return;
            };
            if fresh_leg {
                if relay.next_candidate >= relay.candidates.len() {
                    self.finish_relay_exhausted(relay_id);
                    return;
                }
                let backend = Arc::clone(&relay.candidates[relay.next_candidate]);
                if relay.attempts > 0 {
                    self.state.metrics.failovers_total.inc();
                }
                relay.attempts += 1;
                self.state.metrics.proxied_total.inc();
                relay.backend = Some(backend);
                relay.reconnect_budget = 1;
                relay.leg_span_id = mint_trace_id();
                relay.leg_started = Instant::now();
                relay.leg_start_unix_us = now_unix_us();
            }
            let backend = Arc::clone(relay.backend.as_ref().expect("attempt has a backend"));
            let span_ctx = span::encode_span_context(&relay.trace, &relay.leg_span_id);
            let mut head = format!(
                "POST {} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\nConnection: keep-alive\r\n",
                relay.path,
                backend.addr(),
                relay.body.len()
            );
            if let Some(inm) = &relay.if_none_match {
                head.push_str("If-None-Match: ");
                head.push_str(inm);
                head.push_str("\r\n");
            }
            head.push_str(SPAN_CONTEXT_HEADER);
            head.push_str(": ");
            head.push_str(&span_ctx);
            head.push_str("\r\n\r\n");
            let mut bytes = head.into_bytes();
            bytes.extend_from_slice(&relay.body);
            (bytes, backend)
        };
        match self.acquire_upstream(&backend) {
            Some(up_id) => {
                if let Some(up) = self.upstreams.get_mut(&up_id) {
                    up.wbuf.extend_from_slice(&bytes);
                    up.inflight.push_back(relay_id);
                }
                self.flush_upstream(up_id);
            }
            None => self.abandon_candidate(relay_id),
        }
    }

    /// The current candidate failed for real (connect error, transport
    /// error with no retry budget, or the retry itself failed): record
    /// the failed leg, mark the backend, and move to the next replica.
    fn abandon_candidate(&mut self, relay_id: u64) {
        let Some(relay) = self.relays.get_mut(&relay_id) else {
            return;
        };
        if let Some(backend) = relay.backend.take() {
            backend.record_failure();
            let leg = Span {
                trace_id: relay.trace.clone(),
                span_id: relay.leg_span_id.clone(),
                parent_id: Some(relay.root_span_id.clone()),
                name: "fleet.upstream".into(),
                start_unix_us: relay.leg_start_unix_us,
                duration_us: relay.leg_started.elapsed().as_micros() as u64,
                attrs: vec![
                    ("backend".into(), backend.id().to_string()),
                    ("path".into(), relay.path.clone()),
                ],
                error: true,
            };
            self.state.recorder.record_finished(leg);
        }
        relay.next_candidate += 1;
        self.start_attempt(relay_id, true);
    }

    /// Every candidate tried: answer with the best buffered non-404
    /// error (or the 404), else the no-live-replica 503 — exactly the
    /// threaded `proxy_read_with_failover` contract.
    fn finish_relay_exhausted(&mut self, relay_id: u64) {
        let Some(relay) = self.relays.remove(&relay_id) else {
            return;
        };
        let ctx = relay.ctx();
        let (status, body) = match relay.fallback {
            Some((status, body)) => (status, body),
            None => (
                503,
                format!(
                    "{{\"error\":\"no live replica for table `{}`\"}}",
                    relay.table
                )
                .into_bytes(),
            ),
        };
        if status >= 400 {
            self.state.metrics.errors_total.inc();
        }
        self.finish_hot(ctx, status, body, Vec::new(), Some(relay.epoch), None);
    }

    /// A complete response arrived for the front relay on `up_id`.
    fn upstream_response(&mut self, relay_id: u64, head: ResponseHead, body: Vec<u8>) {
        let backend = {
            let Some(relay) = self.relays.get_mut(&relay_id) else {
                return;
            };
            let Some(backend) = relay.backend.take() else {
                return;
            };
            backend.record_upstream(relay.leg_started.elapsed());
            backend.record_success();
            let leg = Span {
                trace_id: relay.trace.clone(),
                span_id: relay.leg_span_id.clone(),
                parent_id: Some(relay.root_span_id.clone()),
                name: "fleet.upstream".into(),
                start_unix_us: relay.leg_start_unix_us,
                duration_us: relay.leg_started.elapsed().as_micros() as u64,
                attrs: vec![
                    ("backend".into(), backend.id().to_string()),
                    ("path".into(), relay.path.clone()),
                ],
                error: false,
            };
            self.state.recorder.record_finished(leg);
            backend
        };
        let status = head.status;
        if status == 404 || status >= 500 {
            // Buffer as fallback (a non-404 error wins over a 404) and
            // try the next replica.
            let Some(relay) = self.relays.get_mut(&relay_id) else {
                return;
            };
            if relay.fallback.is_none() || status != 404 {
                relay.fallback = Some((status, body));
            }
            relay.next_candidate += 1;
            self.start_attempt(relay_id, true);
            return;
        }
        let Some(relay) = self.relays.remove(&relay_id) else {
            return;
        };
        let ctx = relay.ctx();
        if status >= 400 {
            self.state.metrics.errors_total.inc();
        }
        // Relay the validator and timing headers verbatim; everything
        // else is re-framed by the router.
        let mut extra: Vec<(String, String)> = Vec::new();
        for name in ["etag", "server-timing"] {
            if let Some(v) = head.header(name) {
                let canonical = if name == "etag" {
                    "ETag"
                } else {
                    "Server-Timing"
                };
                extra.push((canonical.into(), v.to_string()));
            }
        }
        self.finish_hot(
            ctx,
            status,
            body,
            extra,
            Some(relay.epoch),
            Some(backend.id().to_string()),
        );
    }

    /// Completes a hot request: commits the root span, records edge
    /// latency (with exemplar), writes the slow-query and access-log
    /// lines, frames the response, and queues it on the client conn.
    fn finish_hot(
        &mut self,
        ctx: HotCtx,
        status: u16,
        body: Vec<u8>,
        mut extra: Vec<(String, String)>,
        epoch: Option<u64>,
        backend: Option<String>,
    ) {
        let key = fleet_route_key("POST", &ctx.path);
        let root = Span {
            trace_id: ctx.trace.clone(),
            span_id: ctx.root_span_id.clone(),
            parent_id: ctx.remote_parent.clone(),
            name: "fleet.request".into(),
            start_unix_us: ctx.start_unix_us,
            duration_us: ctx.started.elapsed().as_micros() as u64,
            attrs: vec![
                ("method".into(), "POST".into()),
                ("path".into(), ctx.path.clone()),
                ("route".into(), key.into()),
                ("status".into(), status.to_string()),
            ],
            error: status >= 400,
        };
        self.state.recorder.commit_root(root);
        let elapsed = ctx.started.elapsed();
        let elapsed_us = elapsed.as_micros().min(u64::MAX as u128) as u64;
        self.state
            .route_latency
            .record_us_traced(key, elapsed_us, &ctx.trace);
        if elapsed_us >= self.state.recorder.slow_us() {
            if let Some(entry) = self.state.recorder.trace(&ctx.trace) {
                eprintln!("{}", ziggy_serve::logging::slow_query_line(&entry));
            }
        }
        self.log.log(
            "POST",
            &ctx.path,
            status,
            elapsed.as_secs_f64() * 1e3,
            Some(&ctx.trace),
            backend.as_deref(),
        );
        if let Some(epoch) = epoch {
            extra.push(("X-Fleet-Epoch".into(), epoch.to_string()));
        }
        extra.push((TRACE_HEADER.into(), ctx.trace));
        let mut bytes = hot_response_head(status, body.len(), ctx.close, &extra).into_bytes();
        bytes.extend_from_slice(&body);
        self.deliver(ctx.conn, ctx.seq, bytes, ctx.close);
    }

    // ---- upstream pool --------------------------------------------

    /// Picks the least-loaded existing connection to `backend` with
    /// depth headroom, else opens a new one (up to the per-backend
    /// cap), else overloads the least-loaded connection.
    fn acquire_upstream(&mut self, backend: &Arc<Backend>) -> Option<u64> {
        let addr = backend.addr();
        let pool = self.pools.entry(addr).or_default();
        pool.retain(|id| self.upstreams.contains_key(id));
        let mut best: Option<(u64, usize)> = None;
        for &uid in pool.iter() {
            if let Some(up) = self.upstreams.get(&uid) {
                let load = up.inflight.len();
                if best.is_none_or(|(_, b)| load < b) {
                    best = Some((uid, load));
                }
            }
        }
        if let Some((uid, load)) = best {
            if load < UPSTREAM_DEPTH || pool.len() >= UPSTREAM_CONNS_PER_BACKEND {
                self.stats.pool_checkouts.fetch_add(1, Ordering::Relaxed);
                return Some(uid);
            }
        }
        match mio::net::connect_nonblocking(addr) {
            Ok(stream) => {
                // No-Nagle upstream too: each relay is one write.
                let _ = stream.set_nodelay(true);
                let id = self.next_upstream;
                self.next_upstream += 1;
                let token = upstream_token(id);
                let registered = self.poll.registry().register(
                    &stream,
                    token,
                    Interest::READABLE.add(Interest::WRITABLE),
                );
                if registered.is_err() {
                    return best.map(|(uid, _)| uid);
                }
                self.upstreams.insert(
                    id,
                    UpstreamConn {
                        stream,
                        token,
                        backend_id: backend.id().to_string(),
                        addr,
                        connected: false,
                        used: false,
                        wbuf: Vec::new(),
                        wpos: 0,
                        rbuf: Vec::new(),
                        inflight: VecDeque::new(),
                        interest: 0b11,
                        last_activity: Instant::now(),
                    },
                );
                self.pools.entry(addr).or_default().push(id);
                self.stats
                    .pool_fresh_connects
                    .fetch_add(1, Ordering::Relaxed);
                Some(id)
            }
            Err(_) => best.map(|(uid, _)| {
                self.stats.pool_checkouts.fetch_add(1, Ordering::Relaxed);
                uid
            }),
        }
    }

    fn on_upstream_event(&mut self, id: u64, readable: bool, writable: bool, error: bool) {
        {
            let Some(up) = self.upstreams.get_mut(&id) else {
                return;
            };
            if !up.connected && (writable || error) {
                // Nonblocking connect resolved: take_error distinguishes
                // established from refused.
                match up.stream.take_error() {
                    Ok(None) if !error => up.connected = true,
                    _ => {
                        self.fail_upstream(id);
                        return;
                    }
                }
            } else if error {
                self.fail_upstream(id);
                return;
            }
        }
        if writable {
            self.flush_upstream(id);
        }
        if readable {
            self.read_upstream(id);
        }
        self.update_upstream_interest(id);
    }

    fn flush_upstream(&mut self, id: u64) {
        loop {
            let Some(up) = self.upstreams.get_mut(&id) else {
                return;
            };
            if !up.connected || up.wpos >= up.wbuf.len() {
                break;
            }
            match up.stream.write(&up.wbuf[up.wpos..]) {
                Ok(0) => {
                    self.fail_upstream(id);
                    return;
                }
                Ok(n) => {
                    up.wpos += n;
                    up.last_activity = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.fail_upstream(id);
                    return;
                }
            }
        }
        if let Some(up) = self.upstreams.get_mut(&id) {
            if up.wpos >= up.wbuf.len() {
                up.wbuf.clear();
                up.wpos = 0;
            }
        }
        self.update_upstream_interest(id);
    }

    fn read_upstream(&mut self, id: u64) {
        let mut buf = [0u8; 16 * 1024];
        let mut closed = false;
        loop {
            let Some(up) = self.upstreams.get_mut(&id) else {
                return;
            };
            match up.stream.read(&mut buf) {
                Ok(0) => {
                    closed = true;
                    break;
                }
                Ok(n) => {
                    up.rbuf.extend_from_slice(&buf[..n]);
                    up.last_activity = Instant::now();
                    // Short read ⇒ drained; level-triggered epoll
                    // re-arms if more arrives before we loop again.
                    if n < buf.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.fail_upstream(id);
                    return;
                }
            }
        }
        // Parse as many complete responses as arrived; HTTP/1.1 answers
        // in order, so each one pops the front in-flight relay.
        loop {
            let (head, body, backend_close) = {
                let Some(up) = self.upstreams.get_mut(&id) else {
                    return;
                };
                match try_parse_response_head(&up.rbuf) {
                    Ok(None) => break,
                    Err(_) => {
                        self.fail_upstream(id);
                        return;
                    }
                    Ok(Some(head)) => {
                        let total = head.head_len + head.content_length;
                        if up.rbuf.len() < total {
                            break;
                        }
                        let body = up.rbuf[head.head_len..total].to_vec();
                        up.rbuf.drain(..total);
                        up.used = true;
                        let close = head.close;
                        (head, body, close)
                    }
                }
            };
            let relay_id = {
                let Some(up) = self.upstreams.get_mut(&id) else {
                    return;
                };
                match up.inflight.pop_front() {
                    Some(r) => r,
                    None => {
                        // Response with no request outstanding: protocol
                        // violation, drop the connection.
                        self.fail_upstream(id);
                        return;
                    }
                }
            };
            self.upstream_response(relay_id, head, body);
            if backend_close {
                self.fail_upstream(id);
                return;
            }
        }
        if closed {
            self.fail_upstream(id);
        }
    }

    /// Tears down an upstream connection. In-flight relays either
    /// retry once on a fresh connection (the stale-keep-alive case:
    /// the connection had served a response before) or abandon their
    /// candidate and fail over.
    fn fail_upstream(&mut self, id: u64) {
        let Some(up) = self.upstreams.remove(&id) else {
            return;
        };
        if let Some(pool) = self.pools.get_mut(&up.addr) {
            pool.retain(|&uid| uid != id);
        }
        let _ = self.poll.registry().deregister(&up.stream);
        for relay_id in up.inflight {
            let retry = up.used
                && self
                    .relays
                    .get(&relay_id)
                    .is_some_and(|r| r.reconnect_budget > 0);
            if retry {
                if let Some(relay) = self.relays.get_mut(&relay_id) {
                    relay.reconnect_budget -= 1;
                }
                self.stats
                    .pool_retried_reconnects
                    .fetch_add(1, Ordering::Relaxed);
                self.start_attempt(relay_id, false);
            } else {
                self.abandon_candidate(relay_id);
            }
        }
    }

    fn update_upstream_interest(&mut self, id: u64) {
        let Some(up) = self.upstreams.get_mut(&id) else {
            return;
        };
        // Always reading (response data or backend close); writing only
        // while the connect or a send is outstanding.
        let mut desired = 0b01u8;
        if !up.connected || up.wpos < up.wbuf.len() {
            desired |= 0b10;
        }
        apply_interest(
            &self.poll.registry(),
            &up.stream,
            up.token,
            &mut up.interest,
            desired,
        );
    }

    // ---- response delivery ----------------------------------------

    /// Fills a pipeline slot and flushes whatever is now in order.
    fn deliver(&mut self, conn_id: u64, seq: u64, bytes: Vec<u8>, close: bool) {
        let Some(conn) = self.conns.get_mut(&conn_id) else {
            return; // client went away; response evaporates
        };
        if let Some(slot) = conn.slot_mut(seq) {
            slot.bytes = Some(bytes);
            slot.close = close;
        }
        self.flush_client(conn_id);
        self.update_client_interest(conn_id);
    }

    fn flush_client(&mut self, id: u64) {
        // Drain ready slots straight through the socket; only bytes the
        // kernel refuses synchronously are copied into wbuf. In the
        // common case (small response, empty socket buffer) a response
        // makes exactly one copy: upstream buffer → framed bytes →
        // kernel.
        loop {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            if conn.wpos < conn.wbuf.len() {
                break; // earlier partial write still owed: keep order
            }
            conn.wbuf.clear();
            conn.wpos = 0;
            match conn.pipeline.front() {
                Some(front) if front.bytes.is_some() => {}
                _ => break,
            }
            let slot = conn.pipeline.pop_front().expect("front exists");
            let bytes = slot.bytes.unwrap_or_default();
            let mut written = 0usize;
            let mut dead = false;
            while written < bytes.len() {
                match conn.stream.write(&bytes[written..]) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => written += n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            if dead {
                self.close_client(id);
                return;
            }
            conn.last_activity = Instant::now();
            if written < bytes.len() {
                conn.wbuf.extend_from_slice(&bytes[written..]);
            }
            if slot.close {
                conn.close_after_flush = true;
                conn.pipeline.clear();
                break;
            }
        }
        self.write_client(id);
    }

    fn write_client(&mut self, id: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            if conn.wpos >= conn.wbuf.len() {
                break;
            }
            match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                Ok(0) => {
                    self.close_client(id);
                    return;
                }
                Ok(n) => {
                    conn.wpos += n;
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_client(id);
                    return;
                }
            }
        }
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        if conn.wpos >= conn.wbuf.len() {
            conn.wbuf.clear();
            conn.wpos = 0;
            if conn.close_after_flush {
                self.close_client(id);
            }
        }
    }

    fn update_client_interest(&mut self, id: u64) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        let mut desired = 0u8;
        if !conn.peer_closed && conn.pipeline.len() < CLIENT_PIPELINE_CAP {
            desired |= 0b01;
        }
        if conn.wpos < conn.wbuf.len() {
            desired |= 0b10;
        }
        apply_interest(
            &self.poll.registry(),
            &conn.stream,
            conn.token,
            &mut conn.interest,
            desired,
        );
    }

    fn close_client(&mut self, id: u64) {
        if let Some(conn) = self.conns.remove(&id) {
            let _ = self.poll.registry().deregister(&conn.stream);
        }
    }

    // ---- offload completions, sweeps, gauges ----------------------

    fn drain_completions(&mut self) {
        let batch: Vec<Completion> = std::mem::take(&mut *self.completions.lock());
        for c in batch {
            self.deliver(c.conn, c.seq, c.bytes, c.close);
        }
    }

    fn sweep(&mut self) {
        let now = Instant::now();
        let idle_clients: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                c.pipeline.is_empty()
                    && c.wpos >= c.wbuf.len()
                    && now.duration_since(c.last_activity) >= CLIENT_IDLE_TIMEOUT
            })
            .map(|(&id, _)| id)
            .collect();
        for id in idle_clients {
            self.close_client(id);
        }
        let stalled: Vec<u64> = self
            .upstreams
            .iter()
            .filter(|(_, u)| {
                let idle_for = now.duration_since(u.last_activity);
                if u.inflight.is_empty() {
                    idle_for >= UPSTREAM_IDLE_TIMEOUT
                } else {
                    idle_for >= UPSTREAM_STALL_TIMEOUT
                }
            })
            .map(|(&id, _)| id)
            .collect();
        for id in stalled {
            self.fail_upstream(id);
        }
    }

    fn refresh_pool_gauges(&mut self) {
        let mut gauges: HashMap<String, PoolGauge> = HashMap::new();
        for up in self.upstreams.values() {
            let g = gauges.entry(up.backend_id.clone()).or_default();
            if up.inflight.is_empty() {
                g.idle += 1;
            } else {
                g.in_flight += 1;
            }
        }
        self.stats.set_pool_gauges(gauges);
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        for (_, c) in self.conns.drain() {
            let _ = self.poll.registry().deregister(&c.stream);
        }
        for (_, u) in self.upstreams.drain() {
            let _ = self.poll.registry().deregister(&u.stream);
        }
    }
}

/// The telemetry context a hot request carries from dispatch to
/// completion (relay or local answer).
struct HotCtx {
    conn: u64,
    seq: u64,
    close: bool,
    path: String,
    trace: String,
    remote_parent: Option<String>,
    root_span_id: String,
    started: Instant,
    start_unix_us: u64,
}

impl Relay {
    fn ctx(&self) -> HotCtx {
        HotCtx {
            conn: self.conn,
            seq: self.seq,
            close: self.close,
            path: self.path.clone(),
            trace: self.trace.clone(),
            remote_parent: self.remote_parent.clone(),
            root_span_id: self.root_span_id.clone(),
            started: self.started,
            start_unix_us: self.start_unix_us,
        }
    }
}

/// `Some(table)` when the request is the hot relay path:
/// `POST /tables/{table}/characterize` with a UTF-8 body. (A non-UTF-8
/// body offloads so the control plane can answer its 400 with the
/// standard wording.)
fn hot_table(req: &Request) -> Option<String> {
    if req.method != "POST" {
        return None;
    }
    let table = req
        .path
        .strip_prefix("/tables/")?
        .strip_suffix("/characterize")?;
    if table.is_empty() || table.contains('/') || std::str::from_utf8(&req.body).is_err() {
        return None;
    }
    Some(table.to_string())
}

/// Frames a hot-path response head (same header set and order the
/// threaded router produced, so clients and tests see identical bytes).
fn hot_response_head(
    status: u16,
    content_length: usize,
    close: bool,
    extra: &[(String, String)],
) -> String {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Length: {}\r\nConnection: {}\r\nContent-Type: application/json\r\n",
        status,
        reason(status),
        content_length,
        if close { "close" } else { "keep-alive" },
    );
    for (name, value) in extra {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    head
}
