//! Backend descriptors, health state, and the ring prober.
//!
//! Health is a hybrid of *active* probing (a background thread polling
//! each backend's `GET /healthz` — the endpoint is a constant-time
//! handler precisely so this stays cheap) and *passive* observation
//! (the proxy records connect/IO failures seen while forwarding real
//! traffic). A backend goes unhealthy after
//! [`FAILURE_THRESHOLD`] consecutive failures and recovers on the first
//! successful probe, so a single dropped packet cannot flap the ring
//! while a killed process is detected within one probe interval.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use ziggy_obs::{Histogram, LoopStats};

use crate::proxy::BackendPool;

/// Consecutive failures (probe or proxy) before a backend is marked
/// unhealthy and routed around.
pub const FAILURE_THRESHOLD: u32 = 2;

/// How often the prober polls each backend's `/healthz`.
pub const DEFAULT_PROBE_INTERVAL: Duration = Duration::from_millis(200);

/// Connect/read budget for one probe; a live-but-slow backend keeps its
/// health (requests will just queue), a dead one fails in well under an
/// interval.
const PROBE_TIMEOUT: Duration = Duration::from_millis(500);

/// One `ziggy-serve` process the fleet routes to.
pub struct Backend {
    id: String,
    addr: SocketAddr,
    healthy: AtomicBool,
    consecutive_failures: AtomicU32,
    /// Lifetime failure observations (probe and proxy), for `/metrics`.
    failures_total: AtomicU64,
    /// Latency of proxied request legs to this backend (router-observed
    /// upstream time, connection setup included).
    upstream: Histogram,
    pool: BackendPool,
}

impl std::fmt::Debug for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Backend")
            .field("id", &self.id)
            .field("addr", &self.addr)
            .field("healthy", &self.is_healthy())
            .finish()
    }
}

impl Backend {
    /// A backend assumed healthy until observed otherwise (the fleet
    /// starter waits for readiness before building the router, and an
    /// optimistic start means the first real request never 503s just
    /// because the prober hasn't completed a round yet).
    pub fn new(id: impl Into<String>, addr: SocketAddr) -> Self {
        Self {
            id: id.into(),
            addr,
            healthy: AtomicBool::new(true),
            consecutive_failures: AtomicU32::new(0),
            failures_total: AtomicU64::new(0),
            upstream: Histogram::new(),
            pool: BackendPool::new(addr),
        }
    }

    /// The backend's fleet-unique id (e.g. `shard-2`).
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The backend's listening address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The keep-alive connection pool to this backend.
    pub fn pool(&self) -> &BackendPool {
        &self.pool
    }

    /// Whether the backend is currently considered routable.
    pub fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::Relaxed)
    }

    /// Lifetime failure observations.
    pub fn failures_total(&self) -> u64 {
        self.failures_total.load(Ordering::Relaxed)
    }

    /// The upstream-latency histogram of proxied legs to this backend.
    pub fn upstream_latency(&self) -> &Histogram {
        &self.upstream
    }

    /// Records one proxied leg's upstream duration.
    pub fn record_upstream(&self, d: Duration) {
        self.upstream.record(d);
    }

    /// Records a successful probe or proxied request: one success is
    /// enough to restore health.
    pub fn record_success(&self) {
        self.consecutive_failures.store(0, Ordering::Relaxed);
        self.healthy.store(true, Ordering::Relaxed);
    }

    /// Records a failed probe or proxied request; past
    /// [`FAILURE_THRESHOLD`] consecutive failures the backend goes
    /// unhealthy. The pool is drained so a restarted process is not
    /// greeted with stale keep-alive sockets.
    pub fn record_failure(&self) {
        self.failures_total.fetch_add(1, Ordering::Relaxed);
        let failures = self.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1;
        if failures >= FAILURE_THRESHOLD {
            self.healthy.store(false, Ordering::Relaxed);
            self.pool.drain();
        }
    }

    /// One active health probe: `GET /healthz` under [`PROBE_TIMEOUT`].
    pub fn probe(&self) -> bool {
        let ok = self.probe_inner().is_some();
        if ok {
            self.record_success();
        } else {
            self.record_failure();
        }
        ok
    }

    fn probe_inner(&self) -> Option<()> {
        let mut client =
            ziggy_serve::http::Client::connect_with_timeout(self.addr, PROBE_TIMEOUT).ok()?;
        client.set_read_timeout(PROBE_TIMEOUT).ok()?;
        let (status, _) = client.request("GET", "/healthz", None).ok()?;
        (status == 200).then_some(())
    }
}

/// Supplies the prober (and any other long-lived fleet loop) with the
/// backends of the *current* membership. A plain `Vec` would freeze the
/// prober's world at startup; re-reading through the provider each round
/// means a backend added at runtime is probed within one interval and a
/// removed one stops being probed.
pub type BackendsProvider = Arc<dyn Fn() -> Vec<Arc<Backend>> + Send + Sync>;

/// A running prober thread; stops (and joins) on [`Prober::stop`] or
/// drop.
pub struct Prober {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Prober {
    /// Starts probing the backends returned by `backends` every
    /// `interval` (the provider is re-consulted each round, so dynamic
    /// membership changes take effect without restarting the prober).
    pub fn start(backends: BackendsProvider, interval: Duration) -> Self {
        Self::start_observed(backends, interval, None)
    }

    /// Like [`Prober::start`], recording each round's duration and
    /// outcome (a round is *ok* when every probe succeeded) into
    /// `stats` for `/metrics` exposition.
    pub fn start_observed(
        backends: BackendsProvider,
        interval: Duration,
        stats: Option<Arc<LoopStats>>,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("ziggy-fleet-prober".into())
            .spawn(move || {
                while !stop_flag.load(Ordering::Relaxed) {
                    let round_started = std::time::Instant::now();
                    let mut all_ok = true;
                    for backend in backends() {
                        if stop_flag.load(Ordering::Relaxed) {
                            return;
                        }
                        all_ok &= backend.probe();
                    }
                    if let Some(stats) = &stats {
                        stats.record_round(round_started.elapsed(), all_ok);
                    }
                    // Sleep in slices so shutdown never waits out a
                    // long probe interval.
                    let deadline = std::time::Instant::now() + interval;
                    while std::time::Instant::now() < deadline {
                        if stop_flag.load(Ordering::Relaxed) {
                            return;
                        }
                        std::thread::sleep(Duration::from_millis(20).min(interval));
                    }
                }
            })
            .expect("spawn prober");
        Self {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the prober and joins its thread.
    pub fn stop(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Prober {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dead_addr() -> SocketAddr {
        // Bind-then-drop: the port was just free, so connecting fails
        // fast instead of timing out.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap()
    }

    #[test]
    fn failures_accumulate_then_trip_then_recover() {
        let b = Backend::new("s0", dead_addr());
        assert!(b.is_healthy());
        b.record_failure();
        assert!(b.is_healthy(), "one failure must not trip the breaker");
        b.record_failure();
        assert!(!b.is_healthy());
        assert_eq!(b.failures_total(), 2);
        b.record_success();
        assert!(b.is_healthy());
    }

    #[test]
    fn probing_a_dead_backend_marks_it_down() {
        let b = Arc::new(Backend::new("s0", dead_addr()));
        for _ in 0..FAILURE_THRESHOLD {
            assert!(!b.probe());
        }
        assert!(!b.is_healthy());
    }

    #[test]
    fn prober_detects_live_server() {
        let server =
            ziggy_serve::serve("127.0.0.1:0", ziggy_serve::ServeOptions::default()).unwrap();
        let b = Arc::new(Backend::new("s0", server.local_addr()));
        // Poison the state so only the prober can restore it.
        b.record_failure();
        b.record_failure();
        assert!(!b.is_healthy());
        let provider: BackendsProvider = {
            let b = Arc::clone(&b);
            Arc::new(move || vec![Arc::clone(&b)])
        };
        let prober = Prober::start(provider, Duration::from_millis(10));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !b.is_healthy() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(b.is_healthy(), "prober must restore a live backend");
        prober.stop();
        server.shutdown();
    }
}
