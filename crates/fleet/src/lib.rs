#![warn(missing_docs)]

//! `ziggy-fleet` — consistent-hash sharding and read-replica routing
//! across multiple `ziggy-serve` processes.
//!
//! The characterization workload is embarrassingly partitionable: every
//! table is an independent read-mostly engine. This crate exploits that
//! with the classic storage/serving decomposition — a thin routing
//! front-end over N independent single-node backends:
//!
//! ```text
//!                        ┌──────────────┐
//!             clients ──▶│ fleet router │   consistent-hash ring,
//!                        └──┬───┬───┬───┘   R-way replication
//!              ┌────────────┘   │   └────────────┐
//!              ▼                ▼                ▼
//!        ┌───────────┐   ┌───────────┐   ┌───────────┐
//!        │ serve #0  │   │ serve #1  │   │ serve #2  │  …
//!        └───────────┘   └───────────┘   └───────────┘
//! ```
//!
//! * **Placement** — a table's name hashes onto a [`ring::HashRing`]
//!   (virtual nodes, deterministic across routers); its R replicas are
//!   the next R distinct backends in ring order.
//! * **Ingest** — one client upload fans out as the idempotent
//!   `PUT /tables/{name}` replicate path to all R replicas.
//! * **Reads** — characterize traffic rotates across the healthy
//!   replicas; transport failures mark the backend and fail over to the
//!   next replica transparently ([`router::proxy`-level retry, plus an
//!   active `/healthz` prober]).
//! * **Scatter-gather** — `GET /tables` and `GET /metrics` query every
//!   backend in parallel and merge per-shard sections into one
//!   document.
//! * **Sessions** — sticky to the backend that created them (their
//!   history lives in that process); if that process dies, the router
//!   replays its query ledger onto another replica of the table and the
//!   conversation continues there ([`router`] session failover). A 503
//!   is reserved for the genuinely unrecoverable case: no other live
//!   replica of the table.
//! * **Dynamic membership** — `POST /admin/backends` and `DELETE
//!   /admin/backends/{id}` grow/shrink the ring at runtime under a
//!   versioned epoch ([`router::Membership`]); in-flight requests drain
//!   on the view they started with, and remapping is bounded by the
//!   consistent-hash properties the ring suite pins.
//! * **Self-healing** — a background [`repair::Repairer`] watches live
//!   replica counts and re-materializes under-replicated tables onto
//!   healthy backends via the idempotent replicate path; the `ziggy
//!   fleet` supervisor restarts dead children and rejoins them
//!   ([`spawn::restart_dead_children`]), after which repair re-ingests
//!   their shard. Repair is tombstone-aware: a rejoiner whose WAL
//!   replays a table that was deleted while it was away gets the delete
//!   propagated to it instead of resurrecting the table fleet-wide, and
//!   copies stranded outside their replica set are garbage-collected
//!   after a grace period ([`repair::GC_GRACE_ROUNDS`]).
//!
//! The fleet speaks exactly the single-node API, so a client cannot
//! tell a router from a lone `ziggy serve` — characterize responses are
//! byte-identical (the router forwards backend bytes verbatim).
//!
//! Use [`start_fleet`] over running backends, or `ziggy fleet` from the
//! CLI to spawn N local backends plus the router in one command
//! ([`spawn::BackendProcess`] supervises the children).

pub mod backend;
pub mod dataplane;
pub mod proxy;
pub mod repair;
pub mod ring;
pub mod router;
pub mod spawn;

use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ziggy_obs::span::{self, DEFAULT_TRACE_CAPACITY, SPAN_CONTEXT_HEADER};
use ziggy_obs::trace::{mint_trace_id, sanitize_trace_id, TRACE_HEADER};
use ziggy_obs::FlightRecorder;
use ziggy_serve::http::{EdgeObserver, Request};
use ziggy_serve::{AccessLog, RateLimiter, Response};

pub use backend::{Backend, BackendsProvider, Prober};
pub use dataplane::{DataPlane, DataPlaneConfig, DataPlaneStats};
pub use repair::{repair_round, RepairReport, Repairer};
pub use ring::HashRing;
pub use router::{
    fleet_route_key, route_fleet, route_fleet_traced, FleetState, Membership, FLEET_ROUTE_KEYS,
};
pub use spawn::{restart_dead_children, restart_dead_children_with, BackendProcess};

/// Options for [`start_fleet`].
#[derive(Debug, Clone)]
pub struct FleetOptions {
    /// Replicas per table (clamped to the fleet size). Default 2.
    pub replication: usize,
    /// Virtual nodes per backend on the ring.
    pub vnodes: usize,
    /// Router worker threads.
    pub threads: usize,
    /// Emit one structured JSON access-log line per request (with the
    /// backend id for proxied requests) to stderr.
    pub access_log: bool,
    /// Append access-log lines to this file instead of stderr (implies
    /// logging even when `access_log` is false).
    pub access_log_path: Option<PathBuf>,
    /// Per-client token-bucket rate limit at the router edge;
    /// `None` disables. `GET /healthz` is exempt.
    pub rate_limit: Option<u32>,
    /// How often the prober polls each backend's `/healthz`.
    pub probe_interval: Duration,
    /// Idle TTL for the router's session mappings (backends expire
    /// their own halves independently); `None` disables sweeping.
    /// Defaults to one hour, matching the single-node server.
    pub session_ttl: Option<Duration>,
    /// How often the repair loop re-materializes under-replicated
    /// tables onto healthy backends; `None` disables self-healing.
    pub repair_interval: Option<Duration>,
    /// Slow-query threshold in milliseconds (`--slow-ms`): requests at
    /// or past it are pinned in the router's flight recorder and emit
    /// one slow-query log line with their span breakdown.
    pub slow_ms: u64,
}

impl Default for FleetOptions {
    fn default() -> Self {
        Self {
            replication: 2,
            vnodes: ring::DEFAULT_VNODES,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .max(2),
            access_log: false,
            access_log_path: None,
            rate_limit: None,
            probe_interval: backend::DEFAULT_PROBE_INTERVAL,
            session_ttl: Some(Duration::from_secs(3600)),
            repair_interval: Some(repair::DEFAULT_REPAIR_INTERVAL),
            slow_ms: ziggy_serve::router::DEFAULT_SLOW_US / 1000,
        }
    }
}

/// A running fleet router (plus its health prober and repair loop).
pub struct FleetHandle {
    dataplane: DataPlane,
    state: Arc<FleetState>,
    prober: Option<Prober>,
    repairer: Option<Repairer>,
}

impl FleetHandle {
    /// The router's bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.dataplane.local_addr()
    }

    /// The shared router state, for inspection (tests, benchmarks).
    pub fn state(&self) -> &Arc<FleetState> {
        &self.state
    }

    /// Stops the repair loop, the prober, and the router, joining all
    /// threads. Backend processes are not touched — the router does not
    /// own them.
    pub fn shutdown(mut self) {
        if let Some(r) = self.repairer.take() {
            r.stop();
        }
        if let Some(p) = self.prober.take() {
            p.stop();
        }
        self.dataplane.shutdown();
    }
}

/// Binds `addr` and starts routing over `backends`
/// (`(id, address)` pairs of already-running `ziggy-serve` processes).
pub fn start_fleet(
    addr: impl ToSocketAddrs,
    backends: Vec<(String, SocketAddr)>,
    options: FleetOptions,
) -> io::Result<FleetHandle> {
    let backends: Vec<Arc<Backend>> = backends
        .into_iter()
        .map(|(id, addr)| Arc::new(Backend::new(id, addr)))
        .collect();
    let mut state = FleetState::new(
        backends,
        options.replication,
        options.vnodes,
        options.session_ttl,
    );
    state.recorder = Arc::new(FlightRecorder::new(
        DEFAULT_TRACE_CAPACITY,
        options.slow_ms.saturating_mul(1000),
    ));
    let state = Arc::new(state);
    // The prober reads membership through the state each round, so
    // backends added or removed at runtime are picked up within one
    // interval. It shares the state's LoopStats so `/metrics` sees its
    // round durations and failure streaks.
    let prober = {
        let provider_state = Arc::clone(&state);
        Prober::start_observed(
            Arc::new(move || provider_state.backends()),
            options.probe_interval,
            Some(Arc::clone(&state.probe_stats)),
        )
    };
    let repairer = options
        .repair_interval
        .map(|interval| Repairer::start(Arc::clone(&state), interval));
    let limiter = options.rate_limit.map(|r| Arc::new(RateLimiter::new(r)));
    let log = Arc::new(match &options.access_log_path {
        Some(path) => AccessLog::to_file(path)?,
        None if options.access_log => AccessLog::stderr(),
        None => AccessLog::disabled(),
    });
    let handler_state = Arc::clone(&state);
    let handler_log = Arc::clone(&log);
    // Edge rejections (over-capacity 503, malformed 400) are written
    // below the handler; the observer gets them into the same log.
    let edge_log = Arc::clone(&log);
    let edge: EdgeObserver = Arc::new(move |status: u16, trace: &str| {
        edge_log.log("-", "-", status, 0.0, Some(trace), None);
    });
    // The control-plane handler: every route except the hot
    // characterize relay runs here, on the data plane's worker pool.
    // It is byte-for-byte the closure the threaded server ran, so
    // admin/session/scatter-gather behavior (and its tracing, logging,
    // and throttling) is unchanged by the reactor migration.
    let handler_limiter = limiter.clone();
    let handler = Arc::new(move |req: &Request| {
        let started = Instant::now();
        // An upstream X-Span-Context wins (it names the trace AND
        // the remote parent span — routers can themselves be proxied
        // to); a well-formed caller-supplied X-Request-Id still
        // names the trace (so a client can stitch its own traces);
        // mint one otherwise. The id rides every proxied leg and
        // comes back on the response, the router log line, and each
        // backend log line.
        let span_ctx: Option<(String, String)> = req
            .header(SPAN_CONTEXT_HEADER)
            .and_then(span::parse_span_context)
            .map(|(t, p)| (t.to_string(), p.to_string()));
        let trace: String = match &span_ctx {
            Some((t, _)) => t.clone(),
            None => req
                .header(TRACE_HEADER)
                .and_then(sanitize_trace_id)
                .map(str::to_string)
                .unwrap_or_else(mint_trace_id),
        };
        let parent = span_ctx.as_ref().map(|(_, p)| p.as_str());
        let mut root = handler_state.recorder.root(&trace, parent, "fleet.request");
        root.attr("method", req.method.clone());
        root.attr("path", req.path.clone());
        let key = fleet_route_key(&req.method, &req.path);
        root.attr("route", key);
        let (response, backend) = match throttle(&handler_state, handler_limiter.as_deref(), req) {
            Some(resp) => (resp, None),
            None => route_fleet_traced(&handler_state, req, Some(&trace)),
        };
        root.attr("status", response.status.to_string());
        root.set_error(response.status >= 400);
        drop(root); // Commits the trace to the flight recorder.
        let elapsed = started.elapsed();
        let elapsed_us = elapsed.as_micros().min(u64::MAX as u128) as u64;
        handler_state
            .route_latency
            .record_us_traced(key, elapsed_us, &trace);
        if elapsed_us >= handler_state.recorder.slow_us() {
            if let Some(entry) = handler_state.recorder.trace(&trace) {
                eprintln!("{}", ziggy_serve::logging::slow_query_line(&entry));
            }
        }
        handler_log.log(
            &req.method,
            &req.path,
            response.status,
            elapsed.as_secs_f64() * 1e3,
            Some(&trace),
            backend.as_deref(),
        );
        response.with_header(TRACE_HEADER, trace)
    });
    let dataplane = DataPlane::start(
        addr,
        Arc::clone(&state),
        handler,
        DataPlaneConfig {
            threads: options.threads,
            limiter,
            log,
            edge: Some(edge),
        },
    )?;
    Ok(FleetHandle {
        dataplane,
        state,
        prober: Some(prober),
        repairer,
    })
}

/// The router-edge rate limit (same bucket semantics as the single-node
/// server; health checks exempt). Shared by the control-plane handler
/// and the reactor's hot path.
pub(crate) fn throttle(
    state: &FleetState,
    limiter: Option<&RateLimiter>,
    req: &Request,
) -> Option<Response> {
    let limiter = limiter?;
    if req.path == "/healthz" {
        return None;
    }
    let client = req
        .peer
        .map_or(ziggy_serve::limit::ANONYMOUS_CLIENT, |p| p.ip());
    match limiter.try_acquire(client) {
        Ok(()) => None,
        Err(retry_after) => {
            state.metrics.rate_limited.inc();
            Some(
                Response::new(429, r#"{"error":"rate limit exceeded"}"#)
                    .with_header("Retry-After", retry_after.to_string()),
            )
        }
    }
}
